"""Extension: the full timing-driven routing flow over the STA substrate.

Section 5.1 motivates critical-sink routing with "timing information
obtained during the performance-driven placement phase"; this bench runs
the whole loop that sentence implies — route with MSTs, run STA, extract
per-sink criticalities, re-route critical nets with CSORG-LDRG — on
seeded random placed designs, and reports the critical-path improvement.
"""

from statistics import mean

from repro.timing.design import random_design
from repro.timing.flow import timing_driven_flow


def _flow_study(config):
    improvements = []
    arrivals = []
    for seed in range(5):
        design = random_design(num_stages=6, stage_width=8,
                               seed=config.seed + seed, max_fanout=6,
                               region=config.tech.region)
        flow = timing_driven_flow(design, config.tech, rounds=3)
        improvements.append(flow.improvement)
        arrivals.append((flow.initial_arrival, flow.final_arrival))
    return improvements, arrivals


def test_ext_timing_flow(benchmark, config, save_artifact):
    improvements, arrivals = benchmark.pedantic(
        lambda: _flow_study(config), rounds=1, iterations=1)
    lines = ["Extension: timing-driven flow "
             "(6 stages x 8 gates, MST baseline -> CSORG re-routing)"]
    for i, ((initial, final), improvement) in enumerate(
            zip(arrivals, improvements)):
        lines.append(f"  design {i}: critical path "
                     f"{initial * 1e9:.3f} -> {final * 1e9:.3f} ns "
                     f"({improvement:+.1%})")
    lines.append(f"  mean improvement: {mean(improvements):+.2%}")
    save_artifact("ext_timing_flow", "\n".join(lines))

    # Accept-if-better rounds: no design ever regresses...
    for improvement in improvements:
        assert improvement >= -1e-12
    # ...and the loop finds real improvements somewhere in the batch.
    assert any(improvement > 0 for improvement in improvements)
