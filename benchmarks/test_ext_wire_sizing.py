"""Extension: WSORG — wire sizing (paper Section 5.2).

Measures the greedy wire sizer in the two regimes the delay physics
defines: with the paper's 100 Ω driver (capacitance-dominated: widening
rarely pays) and with a strong 10 Ω driver (wire-resistance-dominated:
widening pays well). Also sizes LDRG's non-tree output, the combination
Section 5.2 actually proposes ("merge added wires into wider wires").
"""

from statistics import mean

from repro.core.ldrg import ldrg
from repro.core.wire_sizing import wsorg
from repro.geometry.random_nets import random_nets

_NET_SIZE = 12


def _sizing_study(config):
    search = config.search_model()
    trials = max(4, min(config.trials, 10))
    paper_driver, strong_driver, combo = [], [], []
    strong_tech = config.tech.with_driver(10.0)
    for net in random_nets(_NET_SIZE, trials, seed=config.seed + 11):
        paper_driver.append(
            wsorg(net, config.tech, delay_model="elmore").delay_ratio)
        strong_driver.append(
            wsorg(net, strong_tech, delay_model="elmore").delay_ratio)
        routed = ldrg(net, strong_tech, delay_model="elmore")
        sized = wsorg(routed.graph, strong_tech, delay_model="elmore")
        # sized.base_delay is the routed graph at uniform width, so the
        # product of the two ratios is the combined ratio vs the MST.
        combo.append(sized.delay_ratio * routed.delay_ratio)
    return mean(paper_driver), mean(strong_driver), mean(combo)


def test_ext_wire_sizing(benchmark, config, save_artifact):
    paper_driver, strong_driver, combo = benchmark.pedantic(
        lambda: _sizing_study(config), rounds=1, iterations=1)
    save_artifact("ext_wire_sizing", "\n".join([
        f"Extension: WSORG delay ratios ({_NET_SIZE}-pin nets, "
        "Elmore objective)",
        f"  sizing the MST, 100-ohm driver (paper)  : {paper_driver:.3f}",
        f"  sizing the MST, 10-ohm driver           : {strong_driver:.3f}",
        f"  LDRG edges + sizing, 10-ohm driver      : {combo:.3f} "
        "(vs plain MST)",
    ]))

    # Greedy sizing never hurts (accept-if-better loop).
    assert paper_driver <= 1.0 + 1e-9
    assert strong_driver <= 1.0 + 1e-9
    # With a strong driver, wire resistance dominates and sizing pays
    # clearly more than in the paper's driver regime.
    assert strong_driver <= paper_driver + 1e-9
    assert strong_driver < 0.95
    # Topology + sizing together beat either alone on average.
    assert combo <= strong_driver + 1e-9
