"""Table 6: the Elmore Routing Tree (Boese et al.) baseline vs MST.

Paper (50 trials): ERT delay ratios fall from 0.94 (5 pins) to 0.71 (30
pins) at 1.21-1.27x MST wirelength, winning 54-97% of nets. This is the
"best existing tree construction" the paper competes against; Table 7
then shows LDRG improving on it further.
"""

from repro.experiments.tables import table6


def test_table6_ert(benchmark, config, save_artifact):
    table = benchmark.pedantic(lambda: table6(config), rounds=1, iterations=1)
    save_artifact("table6", table.render())

    rows = {row.net_size: row for row in table.rows()}
    sizes = sorted(rows)
    for row in rows.values():
        # ERT buys delay with wirelength (paper: +16..27% cost).
        assert row.all_cost >= 1.0 - 1e-9
        assert row.all_cost <= 1.8

    if config.trials >= 5:
        for size in sizes:
            if size >= 10:
                # Paper: ERT wins 78-97% of nets at 10+ pins with 15-29%
                # average delay reduction.
                assert rows[size].percent_winners >= 60.0
                assert rows[size].all_delay <= 0.95
