"""Table 5: heuristics H2 and H3 (no SPICE at all) vs MST.

Paper (50 trials): both add their shortcut *unconditionally*, so small
nets can regress (H2's 5-pin all-cases delay is 1.14); by 30 pins H2
reaches 0.84 and H3 0.77 with 80-90% winners. H3 — which normalizes by
the new edge's length — wins more often than H2 at every size ≥ 10 and
carries less wire.
"""

from repro.experiments.tables import table5


def test_table5_h2_h3(benchmark, config, save_artifact):
    table = benchmark.pedantic(lambda: table5(config), rounds=1, iterations=1)
    save_artifact("table5", table.render())

    rows_h2 = {row.net_size: row for row in table.rows("H2 Heuristic")}
    rows_h3 = {row.net_size: row for row in table.rows("H3 Heuristic")}
    sizes = sorted(rows_h2)

    for rows in (rows_h2, rows_h3):
        for row in rows.values():
            # Unconditional edge addition always pays wirelength...
            assert row.all_cost >= 1.0 - 1e-9
            # ...and may or may not pay off in delay (no <=1 guarantee).
            assert row.all_delay > 0.0

    if config.trials >= 5:
        for size in sizes:
            # H3's length-normalized score adds cheaper wire than H2
            # (paper: 1.59 vs 1.64 at 5 pins through 1.13 vs 1.23 at 30).
            assert rows_h3[size].all_cost <= rows_h2[size].all_cost + 0.05
            if size >= 10:
                # "H3 improves upon the MST more often than does H1" and
                # H2 (paper: 64-92% winners at 10+ pins).
                assert (rows_h3[size].percent_winners
                        >= rows_h2[size].percent_winners - 15.0)
                assert rows_h3[size].percent_winners >= 40.0
                # Paper: for 20 pins H3 gives ~15% all-cases improvement.
                assert rows_h3[size].all_delay <= 1.0
