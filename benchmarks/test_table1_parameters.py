"""Table 1: the SPICE interconnect technology parameters.

Not a measurement — the paper's Table 1 simply states the 0.8µ CMOS
parameters every experiment uses. The "benchmark" renders the table from
:class:`~repro.delay.parameters.Technology` and asserts the values are
exactly the published ones.
"""

from repro.delay.parameters import Technology
from repro.experiments.tables import table1


def test_table1_parameters(benchmark, config, save_artifact):
    text = benchmark.pedantic(lambda: table1(config), rounds=1, iterations=1)
    save_artifact("table1", text)

    tech = Technology.cmos08()
    assert tech.driver_resistance == 100.0
    assert tech.wire_resistance == 0.03
    assert tech.wire_capacitance == 0.352e-15
    assert tech.wire_inductance == 492e-15
    assert tech.sink_capacitance == 15.3e-15
    assert tech.region == 10_000.0
    assert "100 ohm" in text and "15.3 fF" in text and "100 mm^2" in text
