"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures through
the same code path a full reproduction would use; only the trial count is
scaled down by default so the suite finishes in CI time. Environment
overrides:

* ``REPRO_TRIALS`` — trials per net size (paper: 50; bench default: 10)
* ``REPRO_SIZES``  — comma-separated net sizes (paper: 5,10,20,30)
* ``REPRO_SEED``   — master seed (default 1994)

Rendered tables/figure captions are written to ``benchmarks/results/`` so
a ``--benchmark-only`` run leaves the reproduced artifacts on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig

#: Bench-default trials (REPRO_TRIALS=50 regenerates the paper protocol).
BENCH_TRIALS = 10


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig.from_env(default_trials=BENCH_TRIALS)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def save_artifact(results_dir):
    """Write a rendered artifact to benchmarks/results/<name>.txt."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
