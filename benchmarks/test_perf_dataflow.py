"""Performance benchmark: the dataflow analyzer's wall-time budget.

The analyzer runs on every CI push and is meant to be cheap enough to
run locally before each commit, so the acceptance criterion is a hard
ceiling: a full whole-program analysis of ``src/repro`` — parse, call
graph, effect fixpoint, reachability, all rules — must finish in
**< 10 seconds**. Phase timings and model-size counters land in
``benchmarks/results/BENCH_dataflow.json`` so a slowdown can be
attributed (parsing vs fixpoint vs rules) instead of just detected.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import repro
from repro.analysis.dataflow import analyze_dataflow, build_dataflow_model
from repro.analysis.dataflow.callgraph import CallGraph, build_project
from repro.analysis.dataflow.effects import analyze_effects

#: Hard acceptance ceiling for one full analysis of src/repro (seconds).
MAX_ANALYSIS_SECONDS = 10.0
REPEATS = 3

SRC = Path(repro.__file__).resolve().parent


def _best_time(fn):
    """Best-of-N wall time — the standard noise-resistant estimate."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_dataflow_full_repo_analysis(results_dir):
    """End-to-end analysis of the real tree, phase-attributed."""
    parse_time, project = _best_time(lambda: build_project([SRC]))
    graph_time, graph = _best_time(lambda: CallGraph(project))
    effect_time, effects = _best_time(
        lambda: analyze_effects(project, graph))
    total_time, diagnostics = _best_time(lambda: analyze_dataflow([SRC]))

    model = build_dataflow_model([SRC])
    payload = {
        "workload": "analyze_dataflow(src/repro), best of "
                    f"{REPEATS}",
        "seconds": {
            "parse_and_symbols": parse_time,
            "call_graph": graph_time,
            "effect_fixpoint": effect_time,
            "total_analysis": total_time,
        },
        "model": {
            "modules": len(project.modules),
            "functions": len(project.functions),
            "call_edges": sum(len(e) for e in graph.edges.values()),
            "external_calls": sum(len(e) for e in graph.external.values()),
            "effect_sites": len(effects.sites),
            "entry_roots": len(model.entry_roots),
            "entry_reachable": len(model.entry_parents),
        },
        "diagnostics": len(diagnostics),
        "budget_seconds": MAX_ANALYSIS_SECONDS,
    }
    out = results_dir / "BENCH_dataflow.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\ndataflow analysis: {total_time:.3f}s "
          f"({len(project.functions)} functions, "
          f"{len(effects.sites)} effect sites) [saved to {out}]")

    assert diagnostics == [], "\n".join(d.render() for d in diagnostics)
    assert total_time < MAX_ANALYSIS_SECONDS, (
        f"dataflow analysis took {total_time:.2f}s, "
        f"budget is {MAX_ANALYSIS_SECONDS:.0f}s")
