"""Performance benchmark: the contracts analyzer's wall-time budget.

Like the dataflow pass, the contracts pass gates CI on every push and
must stay cheap enough to run locally before each commit: one full
whole-program analysis of ``src/repro`` — parse, call graph, may-raise
fixpoint, lifecycle CFGs, all rules — must finish in **< 10 seconds**.
Phase timings and model-size counters land in
``benchmarks/results/BENCH_contracts.json`` so a slowdown can be
attributed (fixpoint vs CFG vs rules) instead of just detected.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import repro
from repro.analysis.contracts import (
    analyze_contracts,
    analyze_raises,
    build_contracts_model,
)
from repro.analysis.dataflow.callgraph import CallGraph, build_project

#: Hard acceptance ceiling for one full analysis of src/repro (seconds).
MAX_ANALYSIS_SECONDS = 10.0
REPEATS = 3

SRC = Path(repro.__file__).resolve().parent


def _best_time(fn):
    """Best-of-N wall time — the standard noise-resistant estimate."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_contracts_full_repo_analysis(results_dir):
    """End-to-end analysis of the real tree, phase-attributed."""
    parse_time, project = _best_time(lambda: build_project([SRC]))
    graph_time, graph = _best_time(lambda: CallGraph(project))
    raises_time, raises = _best_time(
        lambda: analyze_raises(project, graph))
    total_time, diagnostics = _best_time(lambda: analyze_contracts([SRC]))

    model = build_contracts_model([SRC])
    payload = {
        "workload": "analyze_contracts(src/repro), best of "
                    f"{REPEATS}",
        "seconds": {
            "parse_and_symbols": parse_time,
            "call_graph": graph_time,
            "may_raise_fixpoint": raises_time,
            "total_analysis": total_time,
        },
        "model": {
            "modules": len(project.modules),
            "functions": len(project.functions),
            "call_edges": sum(len(e) for e in graph.edges.values()),
            "escaping_functions": sum(
                1 for qualname in project.functions
                if raises.of(qualname)),
            "escape_types": sum(
                len(raises.of(qualname))
                for qualname in project.functions),
            "declared_boundaries": len(model.boundaries),
            "pool_entries": len(model.pool_entries),
        },
        "diagnostics": len(diagnostics),
        "budget_seconds": MAX_ANALYSIS_SECONDS,
    }
    out = results_dir / "BENCH_contracts.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\ncontracts analysis: {total_time:.3f}s "
          f"({len(project.functions)} functions, "
          f"{payload['model']['escape_types']} escape types, "
          f"{len(model.boundaries)} boundaries) [saved to {out}]")

    assert diagnostics == [], "\n".join(d.render() for d in diagnostics)
    assert total_time < MAX_ANALYSIS_SECONDS, (
        f"contracts analysis took {total_time:.2f}s, "
        f"budget is {MAX_ANALYSIS_SECONDS:.0f}s")
