"""Extension: exact optimality gaps on tiny nets.

The paper argues (via Table 7 + Boese et al.'s 2%-from-optimal ERT
estimate) that non-tree routings beat optimal trees. On nets small
enough to enumerate, this repo can measure the relevant quantities
*exactly*: the optimal routing graph (ORG), the optimal routing tree
(ORT), and the gaps of LDRG and ERT against them.

Two structural facts are asserted:
* ORG ≤ ORT everywhere (graphs subsume trees), and
* at 5 pins the ORG optimum is usually itself a tree — which is exactly
  why the paper's Table 2 shows only ~52% LDRG winners at that size: on
  tiny nets the action is in choosing a better *tree*, not in cycles.
"""

from statistics import mean

from repro.core.ert import ert
from repro.core.exhaustive import optimal_routing_graph, optimal_routing_tree
from repro.core.ldrg import ldrg
from repro.delay.models import ElmoreGraphModel
from repro.geometry.random_nets import random_nets

_NET_SIZE = 5
_TRIALS = 8


def _gap_study(config):
    oracle = ElmoreGraphModel(config.tech)
    ldrg_gaps, ert_gaps, ort_gaps, tree_optima = [], [], [], 0
    for net in random_nets(_NET_SIZE, _TRIALS, seed=config.seed + 3):
        org = optimal_routing_graph(net, config.tech, oracle)
        ort = optimal_routing_tree(net, config.tech, oracle)
        greedy = ldrg(net, config.tech, delay_model=oracle)
        tree = ert(net, config.tech, evaluation_model=oracle)
        ldrg_gaps.append(greedy.delay / org.delay - 1.0)
        ert_gaps.append(tree.delay / org.delay - 1.0)
        ort_gaps.append(ort.delay / org.delay - 1.0)
        tree_optima += org.is_tree
    return (mean(ldrg_gaps), mean(ert_gaps), mean(ort_gaps),
            tree_optima / _TRIALS)


def test_ext_optimality_gap(benchmark, config, save_artifact):
    ldrg_gap, ert_gap, ort_gap, tree_fraction = benchmark.pedantic(
        lambda: _gap_study(config), rounds=1, iterations=1)
    save_artifact("ext_optimality_gap", "\n".join([
        f"Extension: exact optimality gaps on {_NET_SIZE}-pin nets "
        f"({_TRIALS} nets, Elmore objective)",
        f"  LDRG vs optimal routing graph : {ldrg_gap:+.1%}",
        f"  ERT  vs optimal routing graph : {ert_gap:+.1%}",
        f"  optimal tree vs optimal graph : {ort_gap:+.1%}",
        f"  fraction of optima that are trees: {tree_fraction:.0%}",
    ]))

    # Heuristics can never beat the exhaustive optimum.
    assert ldrg_gap >= -1e-9
    assert ert_gap >= -1e-9
    # Trees are a subfamily of graphs.
    assert ort_gap >= -1e-9
    # At 5 pins the optimum is usually a tree (the paper's weak small-net
    # results, explained exactly).
    assert tree_fraction >= 0.5
    # ERT's near-optimality claim (Boese et al.: ~2% from optimal trees)
    # holds loosely at this size against the graph optimum too.
    assert ert_gap <= 0.25
