"""Performance benchmark: the interlock analyzer's wall-time budget.

The interlock pass gates CI on every push alongside the other three
passes, so one full whole-program analysis of ``src/repro`` — parse,
thread-aware call graph, per-function lock scanning, the lockset /
acquisition / blocking fixpoints, thread-root attribution, durability
CFG checks, all rules — must finish in **< 10 seconds**. Phase timings
and model-size counters land in
``benchmarks/results/BENCH_interlock.json`` so a slowdown can be
attributed (scanning vs fixpoints vs CFG) instead of just detected.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import repro
from repro.analysis.dataflow.callgraph import CallGraph, build_project
from repro.analysis.interlock import (
    analyze_interlock,
    build_interlock_model,
)

#: Hard acceptance ceiling for one full analysis of src/repro (seconds).
MAX_ANALYSIS_SECONDS = 10.0
REPEATS = 3

SRC = Path(repro.__file__).resolve().parent


def _best_time(fn):
    """Best-of-N wall time — the standard noise-resistant estimate."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_interlock_full_repo_analysis(results_dir):
    """End-to-end analysis of the real tree, phase-attributed."""
    parse_time, project = _best_time(lambda: build_project([SRC]))
    graph_time, graph = _best_time(lambda: CallGraph(project))
    model_time, model = _best_time(lambda: build_interlock_model([SRC]))
    total_time, diagnostics = _best_time(lambda: analyze_interlock([SRC]))

    payload = {
        "workload": "analyze_interlock(src/repro), best of "
                    f"{REPEATS}",
        "seconds": {
            "parse_and_symbols": parse_time,
            "call_graph": graph_time,
            "model_and_fixpoints": model_time,
            "total_analysis": total_time,
        },
        "model": {
            "modules": len(project.modules),
            "functions": len(project.functions),
            "call_edges": sum(len(e) for e in graph.edges.values()),
            "locks": len(model.tables.locks),
            "thread_spawns": len(graph.thread_spawns),
            "signal_registrations": len(graph.signal_registrations),
            "rooted_functions": len(model.roots),
            "blocking_functions": sum(
                1 for ops in model.blocking.values() if ops),
            "durable_reachers": len(model.durable_closure),
        },
        "diagnostics": len(diagnostics),
        "budget_seconds": MAX_ANALYSIS_SECONDS,
    }
    out = results_dir / "BENCH_interlock.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\ninterlock analysis: {total_time:.3f}s "
          f"({len(project.functions)} functions, "
          f"{len(model.tables.locks)} locks, "
          f"{len(graph.thread_spawns)} spawns) [saved to {out}]")

    assert diagnostics == [], "\n".join(d.render() for d in diagnostics)
    assert total_time < MAX_ANALYSIS_SECONDS, (
        f"interlock analysis took {total_time:.2f}s, "
        f"budget is {MAX_ANALYSIS_SECONDS:.0f}s")
