"""Performance benchmark: fleet-batched vs sequential greedy routing.

ISSUE 8's tentpole claim is quantitative: a 50-net table generation run
as one :func:`~repro.delay.multinet.route_fleet` pipeline must be at
least 3× faster end-to-end than routing the same 50 nets one at a time
through the sequential incremental engine — while choosing the
*identical* edges on every member. This module sweeps the fleet size
(1, 8, 32, 50) and writes the curve to
``benchmarks/results/BENCH_multinet.json``.

The smoke half (``-k smoke``) is a fast fleet-of-8 agreement check for
CI: no timing assertions, just fleet-vs-sequential equivalence through
the full greedy loop.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.ldrg import ldrg
from repro.delay.multinet import route_fleet
from repro.delay.parameters import Technology
from repro.geometry.net import Net

BENCH_SEED = 1994
BENCH_PINS = 10
FLEET_SIZES = (1, 8, 32, 50)
REPEATS = 3
RELATIVE_TOLERANCE = 1e-9
#: The tentpole acceptance floor at fleet size 50.
REQUIRED_SPEEDUP = 3.0

TECH = Technology.cmos08()


def _nets(count):
    return [Net.random(BENCH_PINS, seed=BENCH_SEED + i, name=f"fleet{i}")
            for i in range(count)]


def _best_time(fn):
    """Best-of-N wall time — the standard noise-resistant estimate."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _sequential(nets):
    return [ldrg(net, TECH, delay_model="elmore",
                 candidate_evaluator="incremental") for net in nets]


def test_multinet_smoke():
    """Fleet of 8: identical chosen edges, delays ≤ 1e-9 relative."""
    nets = _nets(8)
    sequential = _sequential(nets)
    fleet = route_fleet(nets, TECH)
    for seq, bat in zip(sequential, fleet):
        assert sorted(seq.graph.edges()) == sorted(bat.graph.edges())
        assert ([r.edge for r in seq.history]
                == [r.edge for r in bat.history])
        for sink, want in seq.delays.items():
            assert bat.delays[sink] == pytest.approx(
                want, rel=RELATIVE_TOLERANCE)


def test_perf_multinet(results_dir):
    """Fleet-size sweep; ≥ 3× at 50 with identical edge choices."""
    sweep = []
    for size in FLEET_SIZES:
        nets = _nets(size)
        seq_time, seq_results = _best_time(lambda n=nets: _sequential(n))
        fleet_time, fleet_results = _best_time(
            lambda n=nets: route_fleet(n, TECH))
        identical = all(
            sorted(s.graph.edges()) == sorted(f.graph.edges())
            for s, f in zip(seq_results, fleet_results))
        assert identical, f"edge choices diverged at fleet size {size}"
        sweep.append({
            "fleet_size": size,
            "sequential_seconds": seq_time,
            "fleet_seconds": fleet_time,
            "speedup": seq_time / fleet_time,
            "identical_chosen_edges": identical,
            "added_edges": sum(r.num_added_edges for r in fleet_results),
        })
    record = {
        "benchmark": "multinet",
        "pins": BENCH_PINS,
        "seed": BENCH_SEED,
        "oracle": "elmore",
        "algorithm": "ldrg",
        "repeats": REPEATS,
        "required_speedup_at_50": REQUIRED_SPEEDUP,
        "sweep": sweep,
    }
    path = results_dir / "BENCH_multinet.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    curve = ", ".join(f"{e['fleet_size']}: {e['speedup']:.2f}x"
                      for e in sweep)
    print(f"\nfleet speedup by size — {curve} [saved to {path}]")

    at_50 = sweep[-1]
    assert at_50["fleet_size"] == 50
    assert at_50["speedup"] >= REQUIRED_SPEEDUP
