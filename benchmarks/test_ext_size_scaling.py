"""Extension: the size-scaling trend of Tables 2–7 as one dense series.

The paper's tables sample net sizes {5, 10, 20, 30}; this sweep fills in
the intermediate sizes and asserts the trend those tables draw — larger
nets benefit more from non-tree edges and win more often — holds as a
*trend* (endpoints), not just at the published sample points.
"""

from repro.experiments.sweeps import format_sweep, size_scaling


def test_ext_size_scaling(benchmark, config, save_artifact):
    points = benchmark.pedantic(
        lambda: size_scaling(config, sizes=(5, 10, 15, 20)),
        rounds=1, iterations=1)
    save_artifact("ext_size_scaling", format_sweep(
        "Extension: LDRG vs MST across net size", "pins", points))

    assert all(point.delay_ratio <= 1.0 + 1e-9 for point in points)
    first, last = points[0], points[-1]
    # The big-net end is at least as good as the small-net end.
    assert last.delay_ratio <= first.delay_ratio + 0.05
    assert last.percent_winners >= first.percent_winners - 10.0
    # At 20 pins the paper (and our Table 2) sees near-universal wins.
    assert last.percent_winners >= 70.0