"""Table 7: LDRG run on top of an ERT, normalized to the ERT.

The paper's punchline table: even near-optimal routing *trees* (ERTs
average within 2% of optimal per Boese et al.) are improved by non-tree
edge addition — 2% average / 4% winners-only delay reduction at 20 pins,
with winner rates rising from 8% (5 pins) to 56% (30 pins). Gains are
small because the baseline is already excellent; what matters is that
they are consistently nonzero, which proves non-tree routings beat
optimal trees.
"""

from repro.experiments.tables import table7


def test_table7_ert_ldrg(benchmark, config, save_artifact):
    table = benchmark.pedantic(lambda: table7(config), rounds=1, iterations=1)
    save_artifact("table7", table.render())

    rows = {row.net_size: row for row in table.rows()}
    sizes = sorted(rows)
    for row in rows.values():
        # Greedy never keeps a worsening edge, so ratios stay <= 1...
        assert row.all_delay <= 1.0 + 1e-9
        assert row.all_cost >= 1.0 - 1e-9
        # ...and gains over a near-optimal tree are modest (paper: 1-3%).
        assert row.all_delay >= 0.5

    if len(sizes) >= 2 and config.trials >= 5:
        # Some nets must demonstrate a strict win (the existence claim).
        assert any(row.percent_winners > 0 for row in rows.values())
        # Win rate rises with net size (paper: 8% -> 56%).
        assert (rows[sizes[-1]].percent_winners
                >= rows[sizes[0]].percent_winners - 10.0)
