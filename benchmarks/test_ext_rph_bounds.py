"""Extension: tightness of the RPH delay bounds (citation [19]).

The Elmore model the paper leans on comes with Rubinstein–Penfield–
Horowitz's provable bounds. This bench measures, on real routing trees,
where the exact 50% crossing sits inside the [lower, upper] sandwich and
how the critical sink's Elmore delay relates to its measured delay — the
"high accuracy and fidelity" claim of Boese et al. that justifies using
Elmore inside routing loops, quantified on this repo's workloads.
"""

from statistics import mean

from repro.delay.bounds import delay_bounds
from repro.delay.elmore_graph import graph_elmore_delays
from repro.delay.spice_delay import SpiceOptions, spice_delays
from repro.graph.mst import prim_mst
from repro.geometry.random_nets import random_nets

_NET_SIZE = 10


def _bound_study(config):
    trials = max(4, min(config.trials, 12))
    positions, elmore_ratios = [], []
    for net in random_nets(_NET_SIZE, trials, seed=config.seed + 13):
        tree = prim_mst(net)
        measured = spice_delays(tree, config.tech, SpiceOptions(segments=1))
        bounds = delay_bounds(tree, config.tech)
        elmore = graph_elmore_delays(tree, config.tech)
        worst = max(measured, key=measured.get)
        lo, hi = bounds[worst]
        positions.append((measured[worst] - lo) / (hi - lo))
        elmore_ratios.append(measured[worst] / elmore[worst])
    return mean(positions), mean(elmore_ratios)


def test_ext_rph_bounds(benchmark, config, save_artifact):
    position, elmore_ratio = benchmark.pedantic(
        lambda: _bound_study(config), rounds=1, iterations=1)
    save_artifact("ext_rph_bounds", "\n".join([
        f"Extension: RPH bound tightness at the critical sink "
        f"({_NET_SIZE}-pin MSTs, 50% threshold)",
        f"  mean position inside [lower, upper]  : {position:.2f} "
        "(0 = at lower bound, 1 = at upper)",
        f"  mean measured / Elmore ratio         : {elmore_ratio:.3f}",
    ]))

    # The sandwich actually contains the measurement...
    assert 0.0 <= position <= 1.0
    # ...with the 50% crossing well below the Markov-style upper bound.
    assert position < 0.6
    # Elmore over-estimates the 50% delay but by a stable, modest factor
    # (this is the fidelity that lets H2/H3 work).
    assert 0.4 <= elmore_ratio <= 1.0