"""Table 4: heuristic H1 (longest-SPICE-delay shortcut) vs MST.

Paper (50 trials): H1 is the heuristic closest to full LDRG — iteration
one improves delay on 20-82% of nets (rising with size) and, because H1
verifies each edge with its one SPICE call before keeping it, all-cases
delay never exceeds 1.0. Iteration two fires rarely (6-24% of nets).
"""

from repro.experiments.tables import table4


def test_table4_h1(benchmark, config, save_artifact):
    table = benchmark.pedantic(lambda: table4(config), rounds=1, iterations=1)
    save_artifact("table4", table.render())

    rows1 = {row.net_size: row for row in table.rows("H1 Iteration One")}
    sizes = sorted(rows1)
    for row in rows1.values():
        assert row.all_delay <= 1.0 + 1e-9  # H1 keeps only verified wins
        assert row.all_cost >= 1.0 - 1e-9

    if config.trials >= 5:
        # H1 finds real wins on a solid fraction of nets at 10+ pins
        # (paper: 48-82%; our parameter realization wins even more often
        # on small nets, so no monotone-in-size claim is asserted).
        for size in sizes:
            if size >= 10:
                assert rows1[size].percent_winners >= 30.0

    for row in table.rows("H1 Iteration Two"):
        if row.not_applicable:
            continue
        assert row.all_delay <= 1.0 + 1e-9
        # Second iterations are rarer than first ones (paper: <= 24%).
        assert (row.percent_winners
                <= rows1[row.net_size].percent_winners + 1e-9)
