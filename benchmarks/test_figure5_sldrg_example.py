"""Figure 5: SLDRG improving an Iterated 1-Steiner tree.

Paper caption: Steiner tree 2.8 ns → SLDRG routing 1.9 ns — a 32%
improvement for +25% wirelength, with Steiner points drawn as small
squares. The driver scans seeds for a 10-pin net with ≥ 20% SLDRG
improvement over its Steiner tree.
"""

from repro.experiments.figures import figure5


def test_figure5_sldrg_example(benchmark, config, results_dir, save_artifact):
    report = benchmark.pedantic(lambda: figure5(config), rounds=1, iterations=1)
    save_artifact("figure5", report.caption())
    report.save_svgs(results_dir)

    assert report.baseline_name == "Steiner tree"
    assert report.before.is_tree()
    assert len(report.added_edges) >= 1
    assert report.delay_improvement_pct >= 20.0
    assert 0.0 < report.wire_penalty_pct < 100.0
