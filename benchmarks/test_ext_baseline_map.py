"""Extension: the delay/cost map of the related-work tree baselines.

Not a paper table — this positions LDRG's non-tree routings against the
tree constructions the paper's introduction cites: Prim–Dijkstra trees
(AHHK [1], c ∈ {0, 0.5, 1}), bounded-radius trees ([8], ε ∈ {0, 0.5}),
the ERT and SERT of Boese et al. [4], and the Iterated 1-Steiner tree.
All delays are SPICE-evaluated and normalized to the MST, as in the
paper's tables.
"""

from statistics import mean

from repro.core.ert import elmore_routing_tree
from repro.core.ldrg import ldrg
from repro.core.sert import steiner_elmore_routing_tree
from repro.graph.baselines import bounded_radius_tree, prim_dijkstra_tree
from repro.graph.mst import prim_mst
from repro.graph.steiner import iterated_one_steiner
from repro.geometry.random_nets import random_nets

_NET_SIZE = 12


def _delay_cost_map(config):
    evaluate = config.eval_model()
    search = config.search_model()
    constructions = {
        "mst": lambda net: prim_mst(net),
        "pd(c=0.5)": lambda net: prim_dijkstra_tree(net, 0.5),
        "pd(c=1.0)": lambda net: prim_dijkstra_tree(net, 1.0),
        "brt(eps=0)": lambda net: bounded_radius_tree(net, 0.0),
        "brt(eps=0.5)": lambda net: bounded_radius_tree(net, 0.5),
        "steiner": iterated_one_steiner,
        "ert": lambda net: elmore_routing_tree(net, config.tech),
        "sert": lambda net: steiner_elmore_routing_tree(net, config.tech),
        "ldrg": lambda net: ldrg(net, config.tech, delay_model=search,
                                 evaluation_model=evaluate).graph,
    }
    trials = max(4, min(config.trials, 10))
    delay_ratios = {name: [] for name in constructions}
    cost_ratios = {name: [] for name in constructions}
    for net in random_nets(_NET_SIZE, trials, seed=config.seed):
        mst = prim_mst(net)
        mst_delay = evaluate.max_delay(mst)
        mst_cost = mst.cost()
        for name, construct in constructions.items():
            graph = construct(net)
            delay_ratios[name].append(evaluate.max_delay(graph) / mst_delay)
            cost_ratios[name].append(graph.cost() / mst_cost)
    return ({name: mean(v) for name, v in delay_ratios.items()},
            {name: mean(v) for name, v in cost_ratios.items()})


def test_ext_baseline_map(benchmark, config, save_artifact):
    delay, cost = benchmark.pedantic(lambda: _delay_cost_map(config),
                                     rounds=1, iterations=1)
    lines = [f"Extension: delay/cost map on {_NET_SIZE}-pin nets "
             "(normalized to MST, SPICE-evaluated)"]
    for name in sorted(delay, key=delay.get):
        lines.append(f"  {name:14s} delay {delay[name]:.3f}  "
                     f"cost {cost[name]:.3f}")
    save_artifact("ext_baseline_map", "\n".join(lines))

    # The MST is the wirelength optimum over the *pins*: every pin-only
    # spanning tree costs >= 1. Cost-minimizing Steiner trees dip below;
    # SERT is delay-driven and may land on either side, so it is only
    # required to be positive.
    for name, value in cost.items():
        if name == "steiner":
            assert 0.5 < value <= 1.0 + 1e-9
        elif name == "sert":
            assert value > 0.5
        else:
            assert value >= 1.0 - 1e-9
    # Normalizations sane.
    assert delay["mst"] == 1.0 and cost["mst"] == 1.0
    # Pure shortest-path trees spend the most wire of the PD family.
    assert cost["pd(c=1.0)"] >= cost["pd(c=0.5)"] - 1e-9
    # The Steiner tree saves wire relative to the MST-as-baseline (== 1).
    assert cost["steiner"] <= 1.0 + 1e-9
    # Delay-driven constructions all beat the MST's delay on average.
    for name in ("ert", "sert", "ldrg"):
        assert delay[name] < 1.0
    # The paper's claim is *competitiveness*: LDRG (which starts from the
    # wire-optimal MST) lands near the best delay-engineered trees — its
    # own Table 6 has ERT slightly ahead of LDRG on delay too.
    assert delay["ldrg"] <= min(delay[n] for n in delay) + 0.15
    assert delay["ldrg"] < 0.85
