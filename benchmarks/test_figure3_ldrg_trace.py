"""Figure 3: an LDRG execution trace over two-plus iterations.

Paper caption: MST 4.4 ns → 4.1 ns after the first added edge (7%
improvement) → 3.9 ns after the second (11.4% total). The driver finds a
10-pin net where LDRG runs at least two iterations and checks the trace
is monotonically improving, exactly as the greedy loop guarantees.
"""

from repro.experiments.figures import figure3


def test_figure3_ldrg_trace(benchmark, config, results_dir, save_artifact):
    report = benchmark.pedantic(lambda: figure3(config), rounds=1, iterations=1)
    trace = " -> ".join(f"{d * 1e9:.2f} ns" for d in
                        [report.before_delay] + report.iteration_delays)
    save_artifact("figure3", f"{report.caption()}\n  trace: {trace}")
    report.save_svgs(results_dir)

    assert len(report.added_edges) >= 2
    # Each greedy iteration improves on the previous routing.
    delays = [report.before_delay] + report.iteration_delays
    for earlier, later in zip(delays, delays[1:]):
        assert later < earlier * 1.001  # eval-oracle jitter tolerance
    assert report.after_delay < report.before_delay
