"""Extension: does the non-tree win survive detailed routing?

The paper evaluates abstract topologies (wires at Manhattan length). A
skeptic's question: once wires are embedded on a real grid and detour
around blockages, does LDRG's advantage persist? This bench embeds MST
and LDRG routings on open and macro-blocked grids (A* maze routing,
citation [17] lineage) and compares SPICE delays of the bend-accurate
embedded nets.
"""

from statistics import mean

from repro.core.ldrg import ldrg
from repro.graph.mst import prim_mst
from repro.geometry.random_nets import random_nets
from repro.route.embed import embed_routing
from repro.route.grid import RoutingGrid

_NET_SIZE = 10


def _embedding_study(config):
    search = config.search_model()
    evaluate = config.eval_model()
    trials = max(4, min(config.trials, 10))
    open_ratios, blocked_ratios, detours = [], [], []
    for net in random_nets(_NET_SIZE, trials, seed=config.seed + 17):
        mst = prim_mst(net)
        routed = ldrg(net, config.tech, delay_model=search,
                      evaluation_model=evaluate)
        for blocked, bucket in ((False, open_ratios),
                                (True, blocked_ratios)):
            def embed(graph):
                grid = RoutingGrid(region=config.tech.region, pitch=200.0)
                if blocked:
                    grid.block_rect(3500.0, 3500.0, 6500.0, 6500.0)
                embedding = embed_routing(graph, grid,
                                          snap_blocked_pins=True)
                return embedding

            mst_embedded = embed(mst).to_routing_graph()
            ldrg_embedding = embed(routed.graph)
            ldrg_embedded = ldrg_embedding.to_routing_graph()
            bucket.append(evaluate.max_delay(ldrg_embedded)
                          / evaluate.max_delay(mst_embedded))
            if blocked:
                detours.append(ldrg_embedding.detour_factor())
    return mean(open_ratios), mean(blocked_ratios), mean(detours)


def test_ext_embedding(benchmark, config, save_artifact):
    open_ratio, blocked_ratio, detour = benchmark.pedantic(
        lambda: _embedding_study(config), rounds=1, iterations=1)
    save_artifact("ext_embedding", "\n".join([
        f"Extension: LDRG vs MST after grid embedding ({_NET_SIZE}-pin "
        "nets, SPICE-evaluated)",
        f"  open die          : LDRG/MST delay ratio {open_ratio:.3f}",
        f"  3x3 mm macro      : LDRG/MST delay ratio {blocked_ratio:.3f} "
        f"(mean detour {detour:.3f}x)",
    ]))

    # The non-tree advantage survives embedding, with and without the
    # macro (ratios well below 1 on average).
    assert open_ratio < 0.97
    assert blocked_ratio < 0.97
    # Detours are real but moderate for a 9% blocked die.
    assert 1.0 <= detour < 1.5