"""Performance benchmark: the guard layer's overhead budget.

The sentinels are sold as "cheap enough to leave on": the acceptance
criterion is **< 5% overhead** for ``sentinel`` mode on the |N| = 30
Elmore-oracle LDRG candidate-evaluation workload, measured against the
same run with the guard off. Audit mode is *expected* to cost real time
(each sampled batch pays a full naive re-score); its numbers are
reported for the record, not asserted. Results land in
``benchmarks/results/BENCH_guard.json``.

The smoke half (``-k smoke``) is a fast |N| = 10 run for CI: full-rate
audit, zero divergences, identical routing to the unguarded run.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.ldrg import ldrg
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.guard.policy import GuardPolicy, OFF, guard_scope

BENCH_SEED = 7
BENCH_PINS = 30
SMOKE_PINS = 10
REPEATS = 3
#: Acceptance ceiling for sentinel-mode overhead on the candidate-eval
#: workload (relative to guard-off wall time).
MAX_SENTINEL_OVERHEAD = 0.05


def _best_time(fn):
    """Best-of-N wall time — the standard noise-resistant estimate."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run(net, policy):
    with guard_scope(policy):
        return ldrg(net, Technology.cmos08(), delay_model="elmore")


def test_guard_smoke():
    """|N| = 10 full-rate audit: clean, and identical to the plain run."""
    net = Net.random(SMOKE_PINS, seed=BENCH_SEED)
    plain = _run(net, OFF)
    audited = _run(net, GuardPolicy(mode="audit", audit_rate=1.0))
    assert [r.edge for r in audited.history] \
        == [r.edge for r in plain.history]
    assert audited.delay == pytest.approx(plain.delay, rel=1e-9)


def test_perf_guard_overhead(results_dir):
    """|N| = 30 LDRG: sentinel mode must cost < 5% over guard-off."""
    net = Net.random(BENCH_PINS, seed=BENCH_SEED)

    # Warm-up outside the timed region (imports, caches, allocator).
    _run(net, OFF)

    off_time, off_result = _best_time(lambda: _run(net, OFF))
    sentinel_time, sentinel_result = _best_time(
        lambda: _run(net, GuardPolicy(mode="sentinel")))
    audit_time, audit_result = _best_time(
        lambda: _run(net, GuardPolicy(mode="audit", audit_rate=1.0)))

    for guarded in (sentinel_result, audit_result):
        assert [r.edge for r in guarded.history] \
            == [r.edge for r in off_result.history]

    overhead = sentinel_time / off_time - 1.0
    record = {
        "benchmark": "guard_overhead",
        "pins": BENCH_PINS,
        "seed": BENCH_SEED,
        "oracle": "elmore",
        "off_seconds": off_time,
        "sentinel_seconds": sentinel_time,
        "audit_full_rate_seconds": audit_time,
        "sentinel_overhead": overhead,
        "audit_overhead": audit_time / off_time - 1.0,
        "max_sentinel_overhead": MAX_SENTINEL_OVERHEAD,
    }
    path = results_dir / "BENCH_guard.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"\nsentinel overhead {overhead * 100.0:+.2f}%, full-rate audit "
          f"{record['audit_overhead'] * 100.0:+.1f}% [saved to {path}]")

    assert overhead < MAX_SENTINEL_OVERHEAD
