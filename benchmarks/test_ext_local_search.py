"""Extension: local search (add/remove/swap) vs add-only LDRG.

The exhaustive results show the ORG optimum often abandons MST edges —
a move LDRG (add-only, Figure 4) cannot make. This bench quantifies what
the richer move set buys on mid-size nets, with everything scored by the
evaluation oracle. It is the natural "what the paper's formulation
invites next" experiment.
"""

from statistics import mean

from repro.core.ldrg import ldrg
from repro.core.local_search import local_search_org
from repro.delay.models import ElmoreGraphModel
from repro.geometry.random_nets import random_nets

_NET_SIZE = 10


def _search_comparison(config):
    evaluate = config.eval_model()
    oracle = ElmoreGraphModel(config.tech)
    trials = max(4, min(config.trials, 10))
    ldrg_ratios, rich_ratios, departures = [], [], 0
    for net in random_nets(_NET_SIZE, trials, seed=config.seed + 5):
        addonly = ldrg(net, config.tech, delay_model=oracle,
                       evaluation_model=evaluate)
        rich = local_search_org(net, config.tech, delay_model=oracle,
                                evaluation_model=evaluate)
        ldrg_ratios.append(addonly.delay_ratio)
        rich_ratios.append(rich.delay / addonly.base_delay)
        from repro.graph.mst import prim_mst

        mst_edges = set(prim_mst(net).edges())
        departures += not (mst_edges <= set(rich.graph.edges()))
    return mean(ldrg_ratios), mean(rich_ratios), departures / trials


def test_ext_local_search(benchmark, config, save_artifact):
    addonly, rich, departure_rate = benchmark.pedantic(
        lambda: _search_comparison(config), rounds=1, iterations=1)
    save_artifact("ext_local_search", "\n".join([
        f"Extension: ORG search strategies vs MST ({_NET_SIZE}-pin nets, "
        "SPICE-evaluated)",
        f"  LDRG (add-only greedy)          : {addonly:.3f}",
        f"  local search (add/remove/swap)  : {rich:.3f}",
        f"  fraction abandoning an MST edge : {departure_rate:.0%}",
    ]))

    # The richer move set never loses on average...
    assert rich <= addonly + 0.01
    # ...and its advantage comes from real topology changes.
    assert departure_rate > 0.0