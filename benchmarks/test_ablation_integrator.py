"""Ablation: transient integrator vs the exact analytic RC solution.

The MNA engine offers trapezoidal (SPICE's default) and backward-Euler
integration. On a pure-RC routing circuit the eigendecomposition engine
is exact, giving a ground truth to measure both against: trapezoidal's
2nd-order accuracy should beat backward Euler's 1st order at equal step
counts, and both should converge as steps increase.
"""

from repro.delay.spice_delay import SpiceOptions, spice_delays
from repro.graph.mst import prim_mst
from repro.geometry.random_nets import random_net


def _integrator_errors(config):
    net = random_net(10, seed=9100, region=config.tech.region)
    graph = prim_mst(net)
    exact = spice_delays(graph, config.tech, SpiceOptions(segments=3))

    def worst_error(method: str, steps: int) -> float:
        opts = SpiceOptions(engine="transient", segments=3,
                            num_steps=steps, method=method)
        measured = spice_delays(graph, config.tech, opts)
        return max(abs(measured[s] - exact[s]) / exact[s] for s in exact)

    return {
        ("trapezoidal", 300): worst_error("trapezoidal", 300),
        ("trapezoidal", 3000): worst_error("trapezoidal", 3000),
        ("backward-euler", 300): worst_error("backward-euler", 300),
        ("backward-euler", 3000): worst_error("backward-euler", 3000),
    }


def test_ablation_integrator(benchmark, config, save_artifact):
    errors = benchmark.pedantic(lambda: _integrator_errors(config),
                                rounds=1, iterations=1)
    lines = ["Ablation: transient integrator error vs exact analytic RC"]
    lines += [f"  {method:15s} steps={steps:5d}: worst-sink error {err:.4%}"
              for (method, steps), err in sorted(errors.items())]
    save_artifact("ablation_integrator", "\n".join(lines))

    # Refining the step always helps, for both methods.
    assert errors[("trapezoidal", 3000)] <= errors[("trapezoidal", 300)] + 1e-9
    assert (errors[("backward-euler", 3000)]
            <= errors[("backward-euler", 300)] + 1e-9)
    # 2nd-order trapezoidal beats 1st-order BE at the fine step count.
    assert (errors[("trapezoidal", 3000)]
            <= errors[("backward-euler", 3000)] + 1e-9)
    # At SPICE-typical resolution the trapezoidal answer is sub-percent.
    assert errors[("trapezoidal", 3000)] < 0.01
