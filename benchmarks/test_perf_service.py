"""Performance benchmark: routing-daemon throughput and latency.

Drives the in-process daemon (stdio loop, serial executor) with a batch
of distinct small nets plus a duplicate tail, and reports throughput
and per-request latency percentiles to
``benchmarks/results/BENCH_service.json``. The acceptance bar is
deliberately loose — this benchmark exists to make service-layer
regressions *visible* (a dispatch-path slowdown shows up as p50 drift,
a lost warm-cache hit as a duplicate-speedup collapse), not to gate on
machine-dependent absolute numbers.
"""

from __future__ import annotations

import io
import json
import time

from repro.geometry.random_nets import random_net
from repro.service import RoutingDaemon, ServiceConfig, SessionConfig
from repro.service.faults import net_frame

BENCH_SEED = 1994
BENCH_REQUESTS = 60
BENCH_PINS = 4
#: Every request is re-sent once: the duplicate tail measures the warm
#: cache (and would regress if caching or coalescing broke).
DUPLICATE_FACTOR = 2


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def test_perf_service_throughput(results_dir):
    nets = [random_net(BENCH_PINS, seed=BENCH_SEED + i)
            for i in range(BENCH_REQUESTS)]
    frames = []
    for index, net in enumerate(nets):
        frames.append(json.dumps({
            "op": "route", "id": f"b{index}", "algorithm": "ldrg",
            "net": net_frame(net)}))
    duplicates = [json.dumps(dict(json.loads(f), id=f"{i}-dup"))
                  for i, f in enumerate(frames)] * (DUPLICATE_FACTOR - 1)

    daemon = RoutingDaemon(ServiceConfig(queue_capacity=4096,
                                         session=SessionConfig()))
    out = io.StringIO()
    payload = "\n".join(frames + duplicates) + "\n"
    start = time.perf_counter()
    rc = daemon.serve(io.StringIO(payload), out)
    wall = time.perf_counter() - start
    assert rc == 0

    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    total = BENCH_REQUESTS * DUPLICATE_FACTOR
    assert len(responses) == total
    ok = [r for r in responses if r["status"] == "ok"]
    assert len(ok) == total, "benchmark stream must route cleanly"
    warm = [r for r in ok if r.get("cached") or r.get("coalesced")]
    assert warm, "duplicate tail must be served warm"

    cold_latency = [r["elapsed"] for r in ok
                    if not r.get("cached") and r.get("elapsed")]
    record = {
        "benchmark": "service_throughput",
        "requests": total,
        "distinct_nets": BENCH_REQUESTS,
        "pins": BENCH_PINS,
        "seed": BENCH_SEED,
        "wall_seconds": wall,
        "throughput_rps": total / wall,
        "warm_responses": len(warm),
        "latency_p50": _percentile(cold_latency, 0.50),
        "latency_p95": _percentile(cold_latency, 0.95),
        "latency_p99": _percentile(cold_latency, 0.99),
    }
    path = results_dir / "BENCH_service.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"\n{record['throughput_rps']:.1f} req/s over {total} requests "
          f"(p50 {record['latency_p50'] * 1e3:.1f} ms, "
          f"p95 {record['latency_p95'] * 1e3:.1f} ms, "
          f"{len(warm)} warm) [saved to {path}]")
