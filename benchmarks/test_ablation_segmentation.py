"""Ablation: wire segmentation depth vs 50%-delay accuracy.

The simulator discretizes each wire into π-sections. One section already
matches the distributed line's first moment exactly, but the 50% crossing
needs a few sections to converge. This ablation sweeps the section count
on real routing nets against a 16-section reference and backs the
harness's (search=1, eval=3) choice. Two error views matter:

* the *critical* sink (the max-delay sink, the quantity t(G) the tables
  report and the greedy loop ranks on) — segments=1 is already ~1% here;
* the *worst* sink (dominated by electrically short sinks whose tiny
  delays amplify relative error) — harmless for ranking, and the reason
  the evaluation oracle uses segments=3.
"""

from statistics import mean

from repro.delay.spice_delay import SpiceOptions, spice_delays
from repro.graph.mst import prim_mst
from repro.geometry.random_nets import random_net

_SWEEP = (1, 2, 3, 5, 8)
_REFERENCE = 16


def _errors(config):
    critical: dict[int, list[float]] = {s: [] for s in _SWEEP}
    worst: dict[int, list[float]] = {s: [] for s in _SWEEP}
    for seed in range(5):
        net = random_net(12, seed=9000 + seed, region=config.tech.region)
        graph = prim_mst(net)
        reference = spice_delays(graph, config.tech,
                                 SpiceOptions(segments=_REFERENCE))
        t_ref = max(reference.values())
        for segments in _SWEEP:
            measured = spice_delays(graph, config.tech,
                                    SpiceOptions(segments=segments))
            worst[segments].append(
                max(abs(measured[s] - reference[s]) / reference[s]
                    for s in reference))
            critical[segments].append(
                abs(max(measured.values()) - t_ref) / t_ref)
    return ({s: mean(v) for s, v in critical.items()},
            {s: mean(v) for s, v in worst.items()})


def test_ablation_segmentation(benchmark, config, save_artifact):
    critical, worst = benchmark.pedantic(lambda: _errors(config),
                                         rounds=1, iterations=1)
    lines = ["Ablation: pi-sections per wire vs 50%-delay error "
             f"(reference: {_REFERENCE} sections)"]
    lines += [f"  segments={s}: critical-sink error {critical[s]:.4%}, "
              f"worst-sink error {worst[s]:.4%}"
              for s in _SWEEP]
    save_artifact("ablation_segmentation", "\n".join(lines))

    # Discretization error shrinks monotonically (up to tiny noise)...
    assert worst[1] >= worst[3] - 1e-6
    assert worst[3] >= worst[8] - 1e-6
    # ...the search oracle ranks t(G) with ~1% fidelity at segments=1...
    assert critical[1] < 0.03
    # ...and the evaluation oracle reports it to reporting-grade accuracy.
    assert critical[3] < 0.005
    assert worst[3] < 0.01
