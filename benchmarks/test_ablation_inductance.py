"""Ablation: does the 492 fH/µm wire inductance matter?

Table 1 lists a wire inductance, but at 0.8µ process speeds RC dominates:
a 10 mm wire has L ≈ 4.9 nH against R = 300 Ω and C = 3.5 pF, so
L/R ≈ 16 ps — two orders below the nanosecond-scale RC delays. This
ablation simulates real routing circuits with and without the series
inductance (RLC needs the MNA transient engine) and confirms the 50%
delays shift well under a percent, justifying the RC-only default and
the analytic fast path.
"""

from repro.delay.spice_delay import SpiceOptions, spice_delays
from repro.graph.mst import prim_mst
from repro.geometry.random_nets import random_net


def _inductance_shift(config):
    shifts = []
    for seed in range(3):
        net = random_net(8, seed=9300 + seed, region=config.tech.region)
        graph = prim_mst(net)
        rc = spice_delays(graph, config.tech, SpiceOptions(
            engine="transient", segments=3, num_steps=4000))
        rlc = spice_delays(graph, config.tech, SpiceOptions(
            engine="transient", segments=3, num_steps=4000,
            include_inductance=True))
        shifts.append(max(abs(rlc[s] - rc[s]) / rc[s] for s in rc))
    return shifts


def test_ablation_inductance(benchmark, config, save_artifact):
    shifts = benchmark.pedantic(lambda: _inductance_shift(config),
                                rounds=1, iterations=1)
    lines = ["Ablation: 50%-delay shift when adding the 492 fH/um wire "
             "inductance (RLC vs RC)"]
    lines += [f"  net {i}: worst-sink shift {shift:.4%}"
              for i, shift in enumerate(shifts)]
    save_artifact("ablation_inductance", "\n".join(lines))

    # Inductance is present and simulable, but negligible at this node.
    for shift in shifts:
        assert shift < 0.02
