"""Performance benchmark: incremental vs naive candidate evaluation.

The tentpole claim of the incremental engine is quantitative: on the
|N| = 30 Elmore-oracle LDRG run the Sherman–Morrison evaluator must be
at least 10× faster end-to-end than per-candidate re-evaluation while
choosing the *identical* edge sequence. This module measures both and
writes the numbers to ``benchmarks/results/BENCH_candidate_eval.json``.

The smoke half (``-k smoke``) is a fast |N| = 10 agreement check meant
for CI: no timing assertions, just incremental-vs-naive equivalence
through the full greedy loop.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.ldrg import ldrg
from repro.delay.incremental import (
    IncrementalElmoreEvaluator,
    NaiveCandidateEvaluator,
)
from repro.delay.models import ElmoreGraphModel
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.mst import prim_mst

BENCH_SEED = 7
BENCH_PINS = 30
SMOKE_PINS = 10
REPEATS = 3
RELATIVE_TOLERANCE = 1e-9
#: The tentpole acceptance floor for the |N| = 30 end-to-end run.
REQUIRED_SPEEDUP = 10.0


def _best_time(fn):
    """Best-of-N wall time — the standard noise-resistant estimate."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_candidate_eval_smoke():
    """|N| = 10 agreement: same edges, same delay, ≤ 1e-9 relative."""
    tech = Technology.cmos08()
    net = Net.random(SMOKE_PINS, seed=BENCH_SEED)
    incremental = ldrg(net, tech, delay_model="elmore",
                       candidate_evaluator="incremental")
    naive = ldrg(net, tech, delay_model="elmore",
                 candidate_evaluator="naive")
    assert ([r.edge for r in incremental.history]
            == [r.edge for r in naive.history])
    assert incremental.delay == pytest.approx(
        naive.delay, rel=RELATIVE_TOLERANCE)
    for sink, delay in naive.delays.items():
        assert incremental.delays[sink] == pytest.approx(
            delay, rel=RELATIVE_TOLERANCE)


def test_perf_candidate_eval(results_dir):
    """|N| = 30 end-to-end LDRG: ≥ 10× faster, identical edge choices."""
    tech = Technology.cmos08()
    net = Net.random(BENCH_PINS, seed=BENCH_SEED)

    def run(mode):
        return ldrg(net, tech, delay_model="elmore",
                    candidate_evaluator=mode)

    naive_time, naive_result = _best_time(lambda: run("naive"))
    incremental_time, incremental_result = _best_time(
        lambda: run("incremental"))

    naive_edges = [r.edge for r in naive_result.history]
    incremental_edges = [r.edge for r in incremental_result.history]
    assert incremental_edges == naive_edges
    assert incremental_result.delay == pytest.approx(
        naive_result.delay, rel=RELATIVE_TOLERANCE)

    # The scoring batch alone, without the greedy loop around it.
    graph = prim_mst(net)
    candidates = graph.candidate_edges()
    naive_eval = NaiveCandidateEvaluator(ElmoreGraphModel(tech))
    incremental_eval = IncrementalElmoreEvaluator(tech)
    naive_batch, naive_scores = _best_time(
        lambda: naive_eval.score_additions(graph, candidates))
    incremental_batch, incremental_scores = _best_time(
        lambda: incremental_eval.score_additions(graph, candidates))
    for got, want in zip(incremental_scores, naive_scores):
        assert got == pytest.approx(want, rel=RELATIVE_TOLERANCE)

    speedup = naive_time / incremental_time
    batch_speedup = naive_batch / incremental_batch
    record = {
        "benchmark": "candidate_eval",
        "pins": BENCH_PINS,
        "seed": BENCH_SEED,
        "oracle": "elmore",
        "candidates_per_batch": len(candidates),
        "added_edges": len(incremental_edges),
        "identical_chosen_edges": incremental_edges == naive_edges,
        "naive_ldrg_seconds": naive_time,
        "incremental_ldrg_seconds": incremental_time,
        "speedup": speedup,
        "naive_batch_seconds": naive_batch,
        "incremental_batch_seconds": incremental_batch,
        "batch_speedup": batch_speedup,
        "required_speedup": REQUIRED_SPEEDUP,
    }
    path = results_dir / "BENCH_candidate_eval.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"\nLDRG speedup {speedup:.1f}x, batch speedup "
          f"{batch_speedup:.1f}x [saved to {path}]")

    assert speedup >= REQUIRED_SPEEDUP
