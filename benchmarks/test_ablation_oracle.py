"""Ablation: which delay oracle drives LDRG's greedy loop?

The paper runs SPICE inside LDRG (quadratically many calls) and motivates
H2/H3 by its cost. This ablation runs the *same* greedy loop under three
oracles — circuit-level "spice", graph Elmore (one linear solve), and the
two-pole AWE estimate — then scores every final routing with the
reference evaluation oracle. It quantifies how much routing quality each
cheaper oracle gives up (typically very little: Elmore has high fidelity,
as Boese et al. observed).
"""

from statistics import mean

from repro.core.ldrg import ldrg
from repro.delay.models import ElmoreGraphModel, SpiceDelayModel, TwoPoleModel
from repro.geometry.random_nets import random_net

_NUM_NETS = 6
_NET_SIZE = 12


def _oracle_quality(config):
    evaluate = config.eval_model()
    oracles = {
        "spice": config.search_model(),
        "elmore": ElmoreGraphModel(config.tech),
        "two-pole": TwoPoleModel(config.tech),
    }
    ratios = {name: [] for name in oracles}
    for seed in range(_NUM_NETS):
        net = random_net(_NET_SIZE, seed=9200 + seed,
                         region=config.tech.region)
        for name, oracle in oracles.items():
            result = ldrg(net, config.tech, delay_model=oracle,
                          evaluation_model=evaluate)
            ratios[name].append(result.delay_ratio)
    return {name: mean(values) for name, values in ratios.items()}


def test_ablation_oracle(benchmark, config, save_artifact):
    quality = benchmark.pedantic(lambda: _oracle_quality(config),
                                 rounds=1, iterations=1)
    lines = ["Ablation: LDRG search oracle vs final SPICE-evaluated delay "
             "ratio (lower is better)"]
    lines += [f"  {name:9s}: mean delay ratio {value:.4f}"
              for name, value in sorted(quality.items())]
    save_artifact("ablation_oracle", "\n".join(lines))

    # Every oracle still finds real improvements on average...
    for value in quality.values():
        assert value < 1.0
    # ...and searching with the measurement oracle itself is never much
    # worse than the cheap estimators it exists to replace.
    cheapest_best = min(quality["elmore"], quality["two-pole"])
    assert quality["spice"] <= cheapest_best + 0.05
