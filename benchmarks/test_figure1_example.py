"""Figure 1: a 4-pin net where one extra edge visibly cuts delay.

Paper caption: MST 1.3 ns → non-tree 1.0 ns — a 23% delay improvement
for a 9% wirelength penalty. The driver scans deterministic seeds for a
4-pin net exhibiting ≥ 15% single-edge improvement and renders the
before/after pair as SVGs next to the table artifacts.
"""

from repro.experiments.figures import figure1


def test_figure1_example(benchmark, config, results_dir, save_artifact):
    report = benchmark.pedantic(lambda: figure1(config), rounds=1, iterations=1)
    save_artifact("figure1", report.caption())
    report.save_svgs(results_dir)

    assert report.before.is_tree()
    assert not report.after.is_tree()
    assert len(report.added_edges) == 1
    # The existence claim of the figure: a single wire buys real delay.
    assert report.delay_improvement_pct >= 15.0
    assert report.wire_penalty_pct > 0.0
    # Delays land in the paper's nanosecond regime (order of magnitude).
    assert 0.05e-9 < report.after_delay < report.before_delay < 50e-9
