"""Extension: the non-tree win as a function of driver strength.

The capacitance/resistance tradeoff at the heart of the paper predicts a
driver dependence: with a strong driver the extra wire's capacitance is
cheap and its resistance shortcut valuable, so LDRG improves more and
wins more often; with a weak driver ``r_d·C_total`` dominates and extra
wires cannot pay. This sweep makes that mechanism measurable — it is the
clearest internal evidence that the reproduction captures the *physics*
the paper argues from, not just its numbers.
"""

from repro.experiments.sweeps import driver_sweep, format_sweep


def test_ext_driver_sweep(benchmark, config, save_artifact):
    points = benchmark.pedantic(lambda: driver_sweep(config),
                                rounds=1, iterations=1)
    save_artifact("ext_driver_sweep", format_sweep(
        "Extension: LDRG vs MST across driver strength (10-pin nets)",
        "driver(ohm)", points))

    by_driver = {point.x: point for point in points}
    drivers = sorted(by_driver)
    # Greedy never hurts at any drive strength.
    for point in points:
        assert point.delay_ratio <= 1.0 + 1e-9
    # The strongest driver end improves at least as deeply as the
    # weakest end — the paper's tradeoff, made monotone at the extremes.
    assert (by_driver[drivers[0]].delay_ratio
            <= by_driver[drivers[-1]].delay_ratio + 0.02)
    # And wins at least as often.
    assert (by_driver[drivers[0]].percent_winners
            >= by_driver[drivers[-1]].percent_winners - 10.0)
