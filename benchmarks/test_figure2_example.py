"""Figure 2: a random 10-pin net with a dramatic single-edge improvement.

Paper caption: MST 5.4 ns → 3.6 ns (33.3% improvement) for +21.5%
wirelength. The driver scans seeds for a 10-pin net with ≥ 25%
single-edge improvement and renders the before/after SVGs.
"""

from repro.experiments.figures import figure2


def test_figure2_example(benchmark, config, results_dir, save_artifact):
    report = benchmark.pedantic(lambda: figure2(config), rounds=1, iterations=1)
    save_artifact("figure2", report.caption())
    report.save_svgs(results_dir)

    assert report.net.num_pins == 10
    assert report.before.is_tree()
    assert len(report.added_edges) == 1
    assert report.delay_improvement_pct >= 25.0
    # The paper's example pays ~21.5% wire; ours must stay commensurate.
    assert 0.0 < report.wire_penalty_pct < 100.0
