"""Table 2: LDRG vs MST, iterations one and two.

Paper (50 trials): iteration-one delay ratios fall from 0.94 (5 pins) to
0.76 (30 pins) while percent-winners climbs from 52% to 100%; iteration
two only fires on a minority of nets. The shape assertions below encode
those qualitative claims with bands loose enough for the reduced default
trial count.
"""

from repro.experiments.tables import table2


def test_table2_ldrg(benchmark, config, save_artifact):
    table = benchmark.pedantic(lambda: table2(config), rounds=1, iterations=1)
    save_artifact("table2", table.render())

    rows1 = {row.net_size: row for row in table.rows("LDRG Iteration One")}
    sizes = sorted(rows1)
    for row in rows1.values():
        # Iteration one either improves on the MST or leaves it alone.
        assert row.all_delay <= 1.0 + 1e-9
        assert row.all_cost >= 1.0 - 1e-9
        if row.win_delay is not None:
            assert row.win_delay < 1.0
            assert row.win_cost > 1.0

    if len(sizes) >= 2 and config.trials >= 5:
        # Bigger nets benefit at least comparably and win at least as
        # often (paper: 52% -> 100% winners, 0.94 -> 0.76 delay).
        assert rows1[sizes[-1]].all_delay <= rows1[sizes[0]].all_delay + 0.1
        assert (rows1[sizes[-1]].percent_winners
                >= rows1[sizes[0]].percent_winners - 25.0)
        # At 20+ pins the paper sees >= 90% winners and >= 15% improvement.
        large = [rows1[s] for s in sizes if s >= 20]
        for row in large:
            assert row.percent_winners >= 70.0
            assert row.all_delay <= 0.95

    rows2 = {row.net_size: row for row in table.rows("LDRG Iteration Two")}
    for row in rows2.values():
        if row.not_applicable:
            continue
        # Marginal second-iteration gains are smaller than the first's.
        assert row.all_delay <= 1.0 + 1e-9
        assert row.all_delay >= rows1[row.net_size].all_delay - 0.05
