"""Extension: CSORG — the critical-sink variant (paper Section 5.1).

The paper poses CSORG as future work; this repo implements it. The bench
measures, over a batch of nets with the STA-style "slowest MST sink is
critical" assignment, how much the targeted objective improves the
critical sink versus (a) the MST and (b) plain max-delay LDRG.
"""

from statistics import mean

from repro.core.critical_sink import csorg_ldrg
from repro.core.ldrg import ldrg
from repro.graph.mst import prim_mst
from repro.geometry.random_nets import random_nets

_NET_SIZE = 12


def _critical_sink_study(config):
    evaluate = config.eval_model()
    search = config.search_model()
    trials = max(4, min(config.trials, 12))
    targeted, generic = [], []
    for net in random_nets(_NET_SIZE, trials, seed=config.seed + 7):
        base = evaluate.delays(prim_mst(net))
        critical = max(base, key=base.get)
        cs = csorg_ldrg(net, config.tech, critical_sink=critical,
                        delay_model=search)
        md = ldrg(net, config.tech, delay_model=search,
                  evaluation_model=evaluate)
        targeted.append(
            evaluate.delays(cs.graph)[critical] / base[critical])
        generic.append(md.delays[critical] / base[critical])
    return mean(targeted), mean(generic)


def test_ext_critical_sink(benchmark, config, save_artifact):
    targeted, generic = benchmark.pedantic(
        lambda: _critical_sink_study(config), rounds=1, iterations=1)
    save_artifact("ext_critical_sink", "\n".join([
        "Extension: critical-sink delay ratio vs MST "
        f"({_NET_SIZE}-pin nets, slowest MST sink flagged critical)",
        f"  CSORG-LDRG (targeted) : {targeted:.3f}",
        f"  LDRG (max-delay)      : {generic:.3f}",
    ]))

    # Targeting the critical sink helps it, on average...
    assert targeted < 1.0
    # ...at least as much as the untargeted objective does.
    assert targeted <= generic + 0.03
