"""Table 3: SLDRG vs the Steiner tree it starts from.

Paper (50 trials): all-cases delay ratio falls from 0.99 (5 pins) to 0.77
(30 pins) and percent-winners rises from 4% to 100% — on small nets a
good Steiner tree is hard to beat, on large nets extra edges always pay.
"""

from repro.experiments.tables import table3


def test_table3_sldrg(benchmark, config, save_artifact):
    table = benchmark.pedantic(lambda: table3(config), rounds=1, iterations=1)
    save_artifact("table3", table.render())

    rows = {row.net_size: row for row in table.rows()}
    sizes = sorted(rows)
    for row in rows.values():
        assert row.all_delay <= 1.0 + 1e-9   # greedy only keeps improvements
        assert row.all_cost >= 1.0 - 1e-9
        if row.win_delay is not None:
            assert row.win_delay < 1.0

    if config.trials >= 5:
        # Paper: 94-100% winners at 20+ pins with >= 20% improvement; our
        # bands stay loose for the reduced default trial count.
        large = [rows[s] for s in sizes if s >= 20]
        for row in large:
            assert row.percent_winners >= 60.0
            assert row.all_delay <= 0.97
