"""Bounded retry with exponential backoff and deterministic jitter.

Transient simulator faults (a flaky ngspice subprocess, an injected
chaos fault) deserve a few more chances before a trial is declared
failed. The policy here is the standard one — capped exponential
backoff with jitter so parallel workers don't retry in lockstep — with
one repro-specific twist: the jitter stream is seeded, so a retried run
is reproducible end to end.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

from repro.runtime.errors import RetryExhausted

T = TypeVar("T")

#: Sleep function signature, injectable for tests.
SleepFn = Callable[[float], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the retry loop.

    Attributes:
        max_attempts: total tries, including the first (1 = no retries).
        base_delay: backoff before the first retry (seconds).
        multiplier: backoff growth factor per retry.
        max_delay: backoff cap (seconds).
        jitter: extra random fraction of each delay, in ``[0, jitter)``.
        seed: seed of the jitter stream (determinism across reruns).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def backoff_delays(self) -> Iterator[float]:
        """The sleep before retry 1, 2, ... (``max_attempts - 1`` values)."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            jittered = delay * (1.0 + self.jitter * rng.random())
            yield min(jittered, self.max_delay)
            delay = min(delay * self.multiplier, self.max_delay)


def call_with_retries(
    fn: Callable[[], T],
    policy: RetryPolicy,
    transient: tuple[type[BaseException], ...],
    on_retry: Callable[[int, BaseException], None] | None = None,
    sleep: SleepFn = time.sleep,
) -> T:
    """Call ``fn`` up to ``policy.max_attempts`` times.

    Only exceptions in ``transient`` are retried; anything else
    propagates immediately (a programming error is not a flake). After
    the final attempt the last transient error is re-raised as
    :class:`~repro.runtime.errors.RetryExhausted` with the original as
    ``__cause__``. ``on_retry(attempt, error)`` fires before each
    backoff sleep — attempt numbering starts at 1 for the first failure.
    """
    delays = policy.backoff_delays()
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except transient as exc:
            if attempt == policy.max_attempts:
                raise RetryExhausted(
                    f"{policy.max_attempts} attempt(s) failed; last error: "
                    f"{type(exc).__name__}: {exc}") from exc
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(next(delays))
    raise AssertionError("unreachable")  # pragma: no cover
