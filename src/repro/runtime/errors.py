"""Exception taxonomy of the fault-tolerant execution layer.

Every error the runtime can *handle* (retry, degrade, record as a trial
failure) derives from :class:`ReproRuntimeError`, so callers can separate
"a trial went wrong" from genuine bugs. The CLI maps these (plus the
simulator/IO errors from other packages) to clean exit codes instead of
tracebacks.
"""

from __future__ import annotations


class ReproRuntimeError(Exception):
    """Base class for errors raised by the execution runtime."""


class ConfigError(ReproRuntimeError):
    """A malformed configuration value (CLI flag or environment variable).

    Carries enough context to tell the user *which* knob was bad::

        ConfigError.for_env("REPRO_TRIALS", "ten", "an integer")
    """

    @classmethod
    def for_env(cls, var: str, value: str, expected: str) -> "ConfigError":
        return cls(f"environment variable {var}={value!r} is invalid: "
                   f"expected {expected}")


class TrialTimeout(ReproRuntimeError):
    """A single trial exceeded its wall-clock budget."""


class FaultInjected(ReproRuntimeError):
    """A fault deliberately raised by :mod:`repro.runtime.chaos`.

    Classified as *transient* by the resilience layer, so retry/degrade
    machinery treats injected faults exactly like real simulator flakes.
    """


class NonFiniteDelay(ReproRuntimeError):
    """A delay oracle returned NaN or infinity.

    Non-finite delays would silently poison table statistics (NaN
    propagates through every mean), so the runtime converts them into a
    hard, attributable failure at the oracle boundary.
    """


class RetryExhausted(ReproRuntimeError):
    """All retry attempts (and all degradation rungs) failed.

    The original final error is available as ``__cause__``.
    """
