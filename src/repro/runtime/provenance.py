"""Provenance events: an auditable trail of what actually computed a number.

The resilience layer may retry a flaky oracle call or degrade to a
cheaper engine mid-trial. Reported numbers must never silently come from
a different engine than the one configured, so every such decision is
recorded as a :class:`ProvenanceEvent` and journaled with the trial.

Recording is context-based so the machinery stays decoupled: the trial
executor opens a :func:`collecting` scope around the whole trial, and any
wrapper deep inside the call stack (retry loops, degradation ladders,
chaos injectors) calls :func:`record` without threading a collector
through every signature. Outside a scope, :func:`record` is a no-op.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

#: Event kinds with defined semantics (free-form kinds are allowed too).
KIND_RETRY = "retry"
KIND_DEGRADE = "degrade"
KIND_FAULT = "fault-injected"


@dataclass(frozen=True)
class ProvenanceEvent:
    """One recorded runtime decision.

    Attributes:
        kind: event class — ``"retry"``, ``"degrade"``, ``"fault-injected"``,
            or a guard kind (``"audit"``, ``"diverge"``, ``"quarantine"``,
            ``"numerical-incident"``).
        source: the model/engine the event happened in (e.g. ``"ngspice"``).
        target: for degradations, the engine control fell back to.
        detail: human-readable cause (usually the triggering error).
        count: how many occurrences this event stands for — batched
            recorders (the shadow auditor re-scoring a whole candidate
            batch) emit one event with a count instead of hundreds.
    """

    kind: str
    source: str = ""
    target: str = ""
    detail: str = ""
    count: int = 1

    def to_json_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "source": self.source,
                "target": self.target, "detail": self.detail,
                "count": self.count}

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ProvenanceEvent":
        return cls(kind=str(data.get("kind", "")),
                   source=str(data.get("source", "")),
                   target=str(data.get("target", "")),
                   detail=str(data.get("detail", "")),
                   count=int(data.get("count", 1)))


_collector: ContextVar[list[ProvenanceEvent] | None] = ContextVar(
    "repro_runtime_provenance", default=None)


def record(event: ProvenanceEvent) -> None:
    """Append ``event`` to the active collector, if any."""
    events = _collector.get()
    if events is not None:
        events.append(event)


@contextmanager
def collecting() -> Iterator[list[ProvenanceEvent]]:
    """Scope within which :func:`record` accumulates into the yielded list.

    Scopes nest: the innermost active scope receives the events.
    """
    events: list[ProvenanceEvent] = []
    token = _collector.set(events)
    try:
        yield events
    finally:
        _collector.reset(token)
