"""Journalable trial outcomes: results and structured failures.

A sweep is a grid of trials keyed by ``(net size, trial index)``. Each
trial either produces a :class:`TrialResult` — a compact, JSON-safe
projection of a :class:`~repro.core.result.RoutingResult` carrying
everything the table statistics need (ratios, per-iteration history,
provenance) — or a :class:`TrialFailure` recording *how* it died
(exception, timeout, worker crash) without taking the sweep down.

Results deliberately exclude the routing graph itself: journal records
must stay small, and the statistics never look at geometry. Floats
round-trip exactly through JSON (``repr`` serialization), so rows
aggregated from journaled results are bit-identical to an in-memory run.
"""

from __future__ import annotations

import math
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Union

from repro.core.result import WIN_TOLERANCE
from repro.guard.incidents import KIND_AUDIT, KIND_DIVERGE
from repro.runtime.errors import NonFiniteDelay, TrialTimeout
from repro.runtime.provenance import KIND_DEGRADE, ProvenanceEvent

if TYPE_CHECKING:
    from repro.core.result import RoutingResult

#: A trial's grid coordinates: (net size, trial index).
TrialKey = tuple[int, int]

FAILURE_EXCEPTION = "exception"
FAILURE_TIMEOUT = "timeout"
FAILURE_CRASH = "crash"
FAILURE_DRAINED = "drained"


@dataclass(frozen=True)
class TrialResult:
    """A completed trial, reduced to what the statistics consume.

    Mirrors the ratio interface of
    :class:`~repro.core.result.RoutingResult` (``delay_ratio``,
    ``cost_ratio``, ``improved``, ``num_added_edges``, ``at_iteration``)
    so the harness's extract functions accept either.
    """

    algorithm: str
    model: str
    delay: float
    cost: float
    base_delay: float
    base_cost: float
    #: (delay, cost) after each greedy edge addition, in order.
    history: tuple[tuple[float, float], ...] = ()
    provenance: tuple[ProvenanceEvent, ...] = ()
    elapsed: float = 0.0

    @property
    def delay_ratio(self) -> float:
        return self.delay / self.base_delay

    @property
    def cost_ratio(self) -> float:
        return self.cost / self.base_cost

    @property
    def improved(self) -> bool:
        return self.delay < self.base_delay * (1.0 - WIN_TOLERANCE)

    @property
    def num_added_edges(self) -> int:
        return len(self.history)

    @property
    def degraded(self) -> bool:
        """Whether any delay came from a degraded (fallback) engine."""
        return any(e.kind == KIND_DEGRADE for e in self.provenance)

    @property
    def audited(self) -> int:
        """Candidate scores shadow re-checked by the guard layer."""
        return sum(e.count for e in self.provenance if e.kind == KIND_AUDIT)

    @property
    def diverged(self) -> int:
        """Audited scores that disagreed with the naive reference."""
        return sum(e.count for e in self.provenance if e.kind == KIND_DIVERGE)

    def at_iteration(self, k: int) -> tuple[float, float]:
        """(delay, cost) after the first ``k`` edge additions (0 = base)."""
        if k == 0:
            return (self.base_delay, self.base_cost)
        if k > len(self.history):
            raise IndexError(
                f"iteration {k} requested but only {len(self.history)} "
                f"edges were added")
        return self.history[k - 1]

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "model": self.model,
            "delay": self.delay,
            "cost": self.cost,
            "base_delay": self.base_delay,
            "base_cost": self.base_cost,
            "history": [list(step) for step in self.history],
            "provenance": [e.to_json_dict() for e in self.provenance],
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "TrialResult":
        try:
            return cls(
                algorithm=str(data["algorithm"]),
                model=str(data["model"]),
                delay=float(data["delay"]),
                cost=float(data["cost"]),
                base_delay=float(data["base_delay"]),
                base_cost=float(data["base_cost"]),
                history=tuple((float(d), float(c))
                              for d, c in data.get("history", [])),
                provenance=tuple(ProvenanceEvent.from_json_dict(e)
                                 for e in data.get("provenance", [])),
                elapsed=float(data.get("elapsed", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed trial result record: {exc}") from exc

    @classmethod
    def from_routing(cls, result: "RoutingResult",
                     provenance: tuple[ProvenanceEvent, ...] = (),
                     elapsed: float = 0.0) -> "TrialResult":
        """Project a routing result, refusing non-finite delays.

        NaN would propagate silently through every table mean, so a
        non-finite objective is converted into a hard
        :class:`~repro.runtime.errors.NonFiniteDelay` here, at the
        boundary where it is still attributable to one trial.
        """
        for label, value in (("delay", result.delay),
                             ("base delay", result.base_delay)):
            if not math.isfinite(value):
                raise NonFiniteDelay(
                    f"{result.algorithm} on {result.graph.net.name}: "
                    f"{label} is {value!r}")
        return cls(
            algorithm=result.algorithm,
            model=result.model,
            delay=result.delay,
            cost=result.cost,
            base_delay=result.base_delay,
            base_cost=result.base_cost,
            history=tuple((rec.delay, rec.cost) for rec in result.history),
            provenance=provenance,
            elapsed=elapsed,
        )


@dataclass(frozen=True)
class TrialFailure:
    """A trial that did not produce a result — and why.

    Attributes:
        kind: ``"exception"``, ``"timeout"``, ``"crash"`` (worker died),
            or ``"drained"`` (abandoned by a graceful shutdown).
        error_type: exception class name, for grouping.
        message: one-line cause.
        traceback: full formatted traceback where one exists.
        elapsed: wall time spent before the failure (seconds).
        provenance: events recorded before the trial died.
    """

    kind: str
    error_type: str
    message: str
    traceback: str = ""
    elapsed: float = 0.0
    provenance: tuple[ProvenanceEvent, ...] = field(default=())

    @classmethod
    def from_exception(cls, exc: BaseException, elapsed: float = 0.0,
                       provenance: tuple[ProvenanceEvent, ...] = ()
                       ) -> "TrialFailure":
        kind = (FAILURE_TIMEOUT if isinstance(exc, TrialTimeout)
                else FAILURE_EXCEPTION)
        return cls(
            kind=kind,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(traceback_module.format_exception(exc)),
            elapsed=elapsed,
            provenance=provenance,
        )

    def summary(self) -> str:
        return f"[{self.kind}] {self.error_type}: {self.message}"

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "elapsed": self.elapsed,
            "provenance": [e.to_json_dict() for e in self.provenance],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "TrialFailure":
        try:
            return cls(
                kind=str(data["kind"]),
                error_type=str(data["error_type"]),
                message=str(data["message"]),
                traceback=str(data.get("traceback", "")),
                elapsed=float(data.get("elapsed", 0.0)),
                provenance=tuple(ProvenanceEvent.from_json_dict(e)
                                 for e in data.get("provenance", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed trial failure record: {exc}") from exc


#: What one trial yields: a result, or a structured failure.
TrialOutcome = Union[TrialResult, TrialFailure]


def outcome_to_json_dict(key: TrialKey, outcome: TrialOutcome
                         ) -> dict[str, Any]:
    """The journal-record form of one keyed outcome."""
    size, trial = key
    status = "ok" if isinstance(outcome, TrialResult) else "failed"
    body_key = "result" if status == "ok" else "failure"
    return {"key": [size, trial], "status": status,
            body_key: outcome.to_json_dict()}


def outcome_from_json_dict(data: Mapping[str, Any]
                           ) -> tuple[TrialKey, TrialOutcome]:
    """Inverse of :func:`outcome_to_json_dict`; raises ``ValueError``."""
    try:
        size, trial = (int(v) for v in data["key"])
        status = data["status"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed journal record: {exc}") from exc
    if status == "ok":
        return (size, trial), TrialResult.from_json_dict(data["result"])
    if status == "failed":
        return (size, trial), TrialFailure.from_json_dict(data["failure"])
    raise ValueError(f"malformed journal record: unknown status {status!r}")
