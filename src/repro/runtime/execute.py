"""Orchestration: journal + resume + pool, behind one policy object.

This is the layer every sweep entry point runs through. A
:class:`RuntimePolicy` says *how* to execute (worker count, per-trial
budget, journal directory, resume semantics); :func:`run_trials` applies
it to a keyed task list: already-journaled trials are skipped on resume,
fresh outcomes are journaled the moment they complete (atomic writes, so
a kill at any instant loses at most the in-flight trial), and the
returned mapping is keyed by ``(size, trial)`` regardless of execution
order or worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.core.result import RoutingResult
from repro.geometry.net import Net
from repro.runtime import provenance
from repro.runtime.journal import RunJournal, fingerprint
from repro.runtime.pool import PoolTask, run_tasks
from repro.runtime.trial import (
    TrialKey,
    TrialOutcome,
    TrialResult,
)

#: A per-net trial runner, as the harness passes it around.
TrialFn = Callable[[Net], RoutingResult]


@dataclass(frozen=True)
class RuntimePolicy:
    """How a sweep executes — fault tolerance, parallelism, durability.

    Attributes:
        workers: 0 runs trials in-process; N >= 1 uses N isolated worker
            processes (results are identical either way).
        trial_timeout: per-trial wall-clock budget in seconds (``None``
            disables); overruns become structured timeout failures.
        run_root: journal root directory; ``None`` disables journaling.
        resume: skip trials already recorded in the journal (requires
            ``run_root``).
        retry_failures: on resume, re-run journaled *failures* (completed
            results are always kept).
        strict: abort on the first trial error instead of recording it —
            the historical in-memory semantics, used when no fault
            tolerance was requested. Serial only.
    """

    workers: int = 0
    trial_timeout: float | None = None
    run_root: Path | None = None
    resume: bool = False
    retry_failures: bool = False
    strict: bool = False

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ValueError("trial_timeout must be positive")
        if self.resume and self.run_root is None:
            raise ValueError("resume requires a journal (run_root)")
        if self.strict and self.workers > 0:
            raise ValueError("strict mode is serial-only (workers=0)")

    @classmethod
    def tolerant(cls) -> "RuntimePolicy":
        """In-process execution that records failures instead of aborting."""
        return cls(strict=False)


#: The legacy abort-on-first-error behavior, used when callers pass no
#: policy — existing call sites keep their exact semantics.
LEGACY_POLICY = RuntimePolicy(strict=True)


def open_journal(policy: RuntimePolicy,
                 manifest: Mapping[str, Any]) -> RunJournal | None:
    """The policy's journal, keyed by a fingerprint of ``manifest``."""
    if policy.run_root is None:
        return None
    return RunJournal(policy.run_root, fingerprint(manifest),
                      manifest=manifest)


def run_trials(tasks: Sequence[PoolTask], policy: RuntimePolicy,
               journal: RunJournal | None = None
               ) -> dict[TrialKey, TrialOutcome]:
    """Execute (or resume) a keyed task list under ``policy``."""
    outcomes: dict[TrialKey, TrialOutcome] = {}
    todo = list(tasks)
    if journal is not None and policy.resume:
        recorded = journal.load()
        todo = []
        for task in tasks:
            previous = recorded.get(task.key)
            keep = previous is not None and (
                isinstance(previous, TrialResult)
                or not policy.retry_failures)
            if keep and previous is not None:
                outcomes[task.key] = previous
            else:
                todo.append(task)
    on_outcome = None if journal is None else journal.record
    fresh = run_tasks(todo, workers=policy.workers,
                      timeout=policy.trial_timeout, strict=policy.strict,
                      on_outcome=on_outcome)
    outcomes.update(fresh)
    return outcomes


def run_trial(run_one: TrialFn, net: Net) -> TrialResult:
    """Run one net through a runner, collecting provenance and timing.

    This is the function that actually executes inside pool workers; it
    is module-level (hence picklable) and converts the heavyweight
    :class:`~repro.core.result.RoutingResult` into its journalable
    projection before anything crosses a process boundary.
    """
    start = time.perf_counter()
    with provenance.collecting() as events:
        result = run_one(net)
    return TrialResult.from_routing(
        result, provenance=tuple(events),
        elapsed=time.perf_counter() - start)


def sweep_tasks(nets_by_size: Mapping[int, Sequence[Net]],
                run_one: TrialFn) -> list[PoolTask]:
    """The keyed task grid for a sweep: one task per (size, trial) net."""
    return [PoolTask(key=(size, index), fn=run_trial, args=(run_one, net))
            for size, nets in nets_by_size.items()
            for index, net in enumerate(nets)]


def describe_runner(run_one: TrialFn) -> str:
    """A stable identity string for a runner, for journal fingerprints.

    ``functools.partial`` of a module-level function (the picklable form
    the table drivers use) is unwrapped to the underlying function.
    """
    fn: object = run_one
    while isinstance(fn, partial):
        fn = fn.func
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", repr(fn))
    return f"{module}:{qualname}"
