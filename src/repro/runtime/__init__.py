"""Fault-tolerant sweep execution: journal, workers, retries, chaos.

The paper's evaluation is thousands of oracle-driven trials; at that
scale something always goes wrong eventually. This package makes the
sweep layer survive it:

* :mod:`repro.runtime.journal` — crash-safe per-trial journal with
  atomic writes and config-fingerprinted run directories (resume);
* :mod:`repro.runtime.pool` — isolated serial/parallel trial execution
  where crashes, hangs, and exceptions become structured failures;
* :mod:`repro.runtime.retry` / :mod:`repro.runtime.resilience` —
  backoff-retries around transient oracle faults and an engine
  degradation ladder (ngspice → transient → analytic) with provenance;
* :mod:`repro.runtime.chaos` — deterministic fault injection used to
  prove all of the above actually works.

See ``docs/robustness.md`` for the journal format and semantics.
"""

from repro.runtime.chaos import ChaosDelayModel, ChaosPolicy
from repro.runtime.errors import (
    ConfigError,
    FaultInjected,
    NonFiniteDelay,
    ReproRuntimeError,
    RetryExhausted,
    TrialTimeout,
)
from repro.runtime.execute import (
    LEGACY_POLICY,
    RuntimePolicy,
    describe_runner,
    open_journal,
    run_trial,
    run_trials,
    sweep_tasks,
)
from repro.runtime.journal import (
    ResultCache,
    RunJournal,
    atomic_write_text,
    canonical_journal_bytes,
    canonical_record,
    fingerprint,
)
from repro.runtime.pool import (
    PoolTask,
    WorkerPool,
    run_tasks,
    trial_deadline,
)
from repro.runtime.provenance import ProvenanceEvent, collecting, record
from repro.runtime.resilience import (
    DEFAULT_TRANSIENT,
    ResilientDelayModel,
    build_engine_ladder,
    resilient_spice_model,
)
from repro.runtime.retry import RetryPolicy, call_with_retries
from repro.runtime.trial import (
    TrialFailure,
    TrialKey,
    TrialOutcome,
    TrialResult,
)

__all__ = [
    "ChaosDelayModel",
    "ChaosPolicy",
    "ConfigError",
    "DEFAULT_TRANSIENT",
    "FaultInjected",
    "LEGACY_POLICY",
    "NonFiniteDelay",
    "PoolTask",
    "ProvenanceEvent",
    "ReproRuntimeError",
    "ResilientDelayModel",
    "ResultCache",
    "RetryExhausted",
    "RetryPolicy",
    "RunJournal",
    "RuntimePolicy",
    "WorkerPool",
    "TrialFailure",
    "TrialKey",
    "TrialOutcome",
    "TrialResult",
    "TrialTimeout",
    "atomic_write_text",
    "build_engine_ladder",
    "call_with_retries",
    "canonical_journal_bytes",
    "canonical_record",
    "collecting",
    "describe_runner",
    "fingerprint",
    "open_journal",
    "record",
    "resilient_spice_model",
    "run_tasks",
    "run_trial",
    "run_trials",
    "sweep_tasks",
    "trial_deadline",
]
