"""Crash-safe trial journal: atomic per-trial records keyed by config.

A run directory is ``<root>/<fingerprint>/`` where the fingerprint
digests everything that determines trial outcomes (sizes, trials, seed,
oracle segmentation, technology, chaos policy, runner identity). Each
completed trial is one JSON file written atomically — tmp file in the
same directory, ``fsync``, ``os.replace``, directory ``fsync`` — so a
run killed at any instant (including SIGKILL) loses at most the trial
that was in flight, and a partially-written record can never be
observed under the final name.

Resuming is therefore trivial: load every record whose key belongs to
the current grid and skip those trials. Because trials are keyed by
``(size, trial index)`` and aggregation sorts by key, a resumed run's
table rows are byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Mapping

from repro.contracts import boundary
from repro.runtime.provenance import ProvenanceEvent, record
from repro.runtime.trial import (
    TrialKey,
    TrialOutcome,
    outcome_from_json_dict,
    outcome_to_json_dict,
)

#: Journal format version, bumped on incompatible record changes.
JOURNAL_VERSION = 1

#: Record fields fed by the wall clock — the only nondeterminism the
#: runtime knowingly journals (``repro.runtime`` is the one place the
#: dataflow analyzer sanctions wall-clock reads, and they land here).
#: :func:`canonical_record` strips these so byte comparison of two
#: journals checks everything that is *supposed* to be deterministic.
VOLATILE_FIELDS = frozenset({"elapsed"})


def canonical_record(data: Any) -> Any:
    """``data`` with every volatile field removed, at any nesting depth."""
    if isinstance(data, dict):
        return {key: canonical_record(value) for key, value in data.items()
                if key not in VOLATILE_FIELDS}
    if isinstance(data, list):
        return [canonical_record(item) for item in data]
    return data


def canonical_journal_bytes(directory: Path) -> bytes:
    """The journal's trial records as canonical bytes for comparison.

    Records are read in sorted filename order (the key order), volatile
    fields stripped, and re-serialized with sorted keys — two runs of
    the same fingerprinted config must produce identical output here
    whether they ran serially, in a worker pool, or across a
    kill/resume boundary. Malformed records are kept verbatim so a
    corrupt journal can never masquerade as a match.
    """
    chunks: list[bytes] = []
    for path in sorted(Path(directory).glob("trial_*.json")):
        raw = path.read_text(encoding="utf-8")
        try:
            data = json.loads(raw)
        except ValueError:
            chunks.append(f"{path.name}\t{raw}".encode("utf-8"))
            continue
        canonical = json.dumps(canonical_record(data), sort_keys=True,
                               separators=(",", ":"))
        chunks.append(f"{path.name}\t{canonical}".encode("utf-8"))
    return b"\n".join(chunks)


def fingerprint(payload: Mapping[str, Any]) -> str:
    """Stable hex digest of a JSON-serializable config description."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@boundary(raises=(OSError,))
def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` so a crash never leaves a partial file.

    tmp file in the same directory (same filesystem, so ``os.replace``
    is atomic) → flush → fsync → rename → fsync the directory entry.
    """
    # pid *and* thread id: two threads writing the same path must not
    # share a sidecar, or the first replace deletes the second's tmp.
    tmp = path.with_name(
        path.name + f".tmp{os.getpid()}.{threading.get_ident()}")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # repro: allow=contracts-broad-catch-swallow — cleanup of the tmp file must not mask the original write failure re-raised below
            pass
        raise
    _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # repro: allow=contracts-broad-catch-swallow — platforms without directory opens fall back to no dir fsync; the data file itself is already synced
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # repro: allow=contracts-broad-catch-swallow — some filesystems reject directory fsync (EINVAL); best-effort durability by design
        pass
    finally:
        os.close(dir_fd)


def _record_name(key: TrialKey) -> str:
    size, trial = key
    return f"trial_s{size:04d}_t{trial:05d}.json"


class RunJournal:
    """Per-trial append-only journal for one fingerprinted run.

    Args:
        root: journal root directory (one subdirectory per fingerprint).
        run_fingerprint: digest from :func:`fingerprint`.
        manifest: human-readable description of the run configuration,
            written once as ``manifest.json`` for later inspection.
    """

    def __init__(self, root: Path, run_fingerprint: str,
                 manifest: Mapping[str, Any] | None = None):
        self.root = Path(root)
        self.fingerprint = run_fingerprint
        self.directory = self.root / run_fingerprint
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / "manifest.json"
        if manifest is not None and not manifest_path.exists():
            atomic_write_text(manifest_path, json.dumps(
                {"version": JOURNAL_VERSION, "fingerprint": run_fingerprint,
                 "config": dict(manifest)},
                indent=2, sort_keys=True) + "\n")

    def record(self, key: TrialKey, outcome: TrialOutcome) -> None:
        """Durably record one trial outcome (atomic, idempotent)."""
        path = self.directory / _record_name(key)
        atomic_write_text(path, json.dumps(
            outcome_to_json_dict(key, outcome), sort_keys=True) + "\n")

    def load(self) -> dict[TrialKey, TrialOutcome]:
        """Every readable trial record in the journal.

        Unreadable or malformed files (e.g. alien files dropped into the
        directory) are skipped: the worst case is re-running a trial.
        """
        outcomes: dict[TrialKey, TrialOutcome] = {}
        for path in sorted(self.directory.glob("trial_*.json")):
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                key, outcome = outcome_from_json_dict(data)
            except (OSError, ValueError):  # repro: allow=contracts-broad-catch-swallow — alien/corrupt records are skipped so resume re-runs those trials; byte-compare surfaces them verbatim
                continue
            outcomes[key] = outcome
        return outcomes

    def completed_keys(self) -> set[TrialKey]:
        return set(self.load())

    def __repr__(self) -> str:
        return f"RunJournal({str(self.directory)!r})"


#: Default capacity of a result cache's in-memory tier.
DEFAULT_CACHE_CAPACITY = 4096


class ResultCache:
    """A fingerprint-keyed warm-result cache with journal durability.

    This is the public lookup surface the routing service uses: one
    JSON-safe payload per request fingerprint, served from a bounded
    in-memory tier and (when a directory is given) durably journaled
    with the same atomic-write discipline as trial records — so a
    restarted daemon warm-starts from disk instead of re-routing.

    Callers interact only through :meth:`store`,
    :meth:`lookup_cached`, and :meth:`stats_snapshot`; the on-disk
    record layout is private to this class.

    The in-memory tier and the hit/miss/corrupt counters are guarded by
    an internal lock: the daemon's reader and connection threads read
    the counters for stats frames while the executor thread serves
    lookups. Disk reads and the atomic write happen *outside* the lock
    (blocking I/O under a lock would stall the stats path on a slow
    disk).

    Args:
        directory: cache directory, or ``None`` for memory-only.
        capacity: bound of the in-memory tier (LRU eviction; disk
            records are never evicted).
    """

    def __init__(self, directory: Path | None = None,
                 capacity: int = DEFAULT_CACHE_CAPACITY):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.directory = None if directory is None else Path(directory)
        self.capacity = capacity
        self._entries: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.corrupt_records = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_snapshot(self) -> dict[str, int]:
        """A consistent counters snapshot for stats frames."""
        with self._lock:
            return {"entries": len(self._entries), "hits": self.hits,
                    "misses": self.misses,
                    "corrupt_records": self.corrupt_records}

    def _path(self, cache_fingerprint: str) -> Path:
        assert self.directory is not None
        return self.directory / f"result_{cache_fingerprint}.json"

    @boundary(raises=(OSError,))
    def store(self, cache_fingerprint: str,
              payload: Mapping[str, Any]) -> None:
        """Durably record one result payload under its fingerprint."""
        entry = dict(payload)
        with self._lock:
            self._entries[cache_fingerprint] = entry
            self._entries.move_to_end(cache_fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        if self.directory is not None:
            atomic_write_text(self._path(cache_fingerprint), json.dumps(
                {"version": JOURNAL_VERSION,
                 "fingerprint": cache_fingerprint,
                 "payload": entry}, sort_keys=True) + "\n")

    def lookup_cached(self, cache_fingerprint: str
                      ) -> dict[str, Any] | None:
        """The cached payload for ``cache_fingerprint``, or ``None``.

        Checks the in-memory tier first, then the journal directory.
        A *missing* disk record is a plain miss; a *corrupt or
        truncated* record (the tail a crash can leave despite atomic
        writes — e.g. filesystem damage or an alien file) is also
        served as a miss, but additionally counted in
        :attr:`corrupt_records` and reported as a structured
        ``cache-corrupt`` provenance event, never raised — the worst
        case is recomputing one result.
        """
        with self._lock:
            entry = self._entries.get(cache_fingerprint)
            if entry is not None:
                self._entries.move_to_end(cache_fingerprint)
                self.hits += 1
                return dict(entry)
        if self.directory is not None:
            try:
                raw = self._path(cache_fingerprint).read_text(
                    encoding="utf-8")
            except OSError:  # no disk record (or unreadable): a plain cache miss by design
                raw = None
            if raw is not None:
                try:
                    data = json.loads(raw)
                    payload = data["payload"]
                    if not isinstance(payload, dict):
                        raise ValueError("'payload' is not an object")
                    if data.get("fingerprint") != cache_fingerprint:
                        raise ValueError("fingerprint mismatch")
                except (ValueError, KeyError, TypeError) as exc:  # corrupt/truncated record: degrade to a recompute, counted and reported below
                    with self._lock:
                        self.corrupt_records += 1
                    record(ProvenanceEvent(
                        kind="cache-corrupt",
                        source=f"result_{cache_fingerprint}.json",
                        detail=f"{type(exc).__name__}: {exc}"))
                else:
                    with self._lock:
                        self._entries[cache_fingerprint] = dict(payload)
                        while len(self._entries) > self.capacity:
                            self._entries.popitem(last=False)
                        self.hits += 1
                    return dict(payload)
        with self._lock:
            self.misses += 1
        return None
