"""Resilient delay oracles: retry transient faults, then degrade engines.

The oracle ladder mirrors the fidelity ladder of the repo's engines:
an external ``ngspice`` binary (most faithful, least reliable — it is a
subprocess that can hang, crash, or be missing), then the in-process
``transient`` integrator, then the ``analytic`` RC solution. A
:class:`ResilientDelayModel` tries each rung with bounded
backoff-retries and only then falls to the next, recording every retry
and every degradation as provenance — so a journal row can never
contain a degraded-engine number without saying so.

Non-finite oracle output (NaN/inf) is treated as a transient fault at
this boundary: it is either a simulator flake or injected chaos, and in
both cases silently averaging it into a table would be worse than
retrying.
"""

from __future__ import annotations

import math
import time
from typing import Sequence

from repro.circuit.ngspice import NgspiceError
from repro.delay.models import DelayModel, NgspiceDelayModel, SpiceDelayModel
from repro.delay.parameters import Technology
from repro.delay.rc_builder import EdgeWidths
from repro.delay.spice_delay import SpiceOptions
from repro.graph.routing_graph import RoutingGraph
from repro.runtime.errors import (
    FaultInjected,
    NonFiniteDelay,
    RetryExhausted,
)
from repro.runtime.provenance import (
    KIND_DEGRADE,
    KIND_RETRY,
    ProvenanceEvent,
    record,
)
from repro.runtime.retry import RetryPolicy, SleepFn, call_with_retries

#: Errors worth retrying: simulator subprocess trouble and injected chaos.
DEFAULT_TRANSIENT: tuple[type[BaseException], ...] = (
    FaultInjected, NonFiniteDelay, NgspiceError, OSError)


class ResilientDelayModel(DelayModel):
    """A delay oracle hardened by retries and an engine-degradation ladder.

    Args:
        ladder: oracles in decreasing fidelity order; the first is the
            engine of record, later rungs are fallbacks.
        retry: backoff policy applied *per rung*.
        transient: exception types treated as retryable/degradable.
        sleep: injectable sleep for the backoff (tests pass a stub).
    """

    name = "resilient"

    #: Records provenance events and may degrade between engines per call;
    #: memoizing would silently replay a possibly-degraded answer.
    cacheable = False

    def __init__(self, ladder: Sequence[DelayModel],
                 retry: RetryPolicy | None = None,
                 transient: tuple[type[BaseException], ...]
                 = DEFAULT_TRANSIENT,
                 sleep: SleepFn = time.sleep):
        if not ladder:
            raise ValueError("need at least one delay model in the ladder")
        super().__init__(ladder[0].tech)
        self.ladder = tuple(ladder)
        self.retry = retry or RetryPolicy()
        self.transient = transient
        self.name = f"resilient({ladder[0].name})"
        self._sleep = sleep

    def delays(self, graph: RoutingGraph,
               widths: EdgeWidths | None = None) -> dict[int, float]:
        last_error: BaseException | None = None
        for rung, model in enumerate(self.ladder):
            try:
                return self._attempt_rung(model, graph, widths)
            except RetryExhausted as exc:
                last_error = exc.__cause__ or exc
                if rung + 1 < len(self.ladder):
                    record(ProvenanceEvent(
                        kind=KIND_DEGRADE, source=model.name,
                        target=self.ladder[rung + 1].name,
                        detail=f"{type(last_error).__name__}: {last_error}"))
        raise RetryExhausted(
            f"all {len(self.ladder)} engine(s) failed; last error: "
            f"{type(last_error).__name__}: {last_error}") from last_error

    def _attempt_rung(self, model: DelayModel, graph: RoutingGraph,
                      widths: EdgeWidths | None) -> dict[int, float]:
        def on_retry(attempt: int, exc: BaseException) -> None:
            record(ProvenanceEvent(
                kind=KIND_RETRY, source=model.name,
                detail=f"attempt {attempt}: {type(exc).__name__}: {exc}"))

        def run_once() -> dict[int, float]:
            return _checked_delays(model, graph, widths)

        return call_with_retries(run_once, self.retry, self.transient,
                                 on_retry=on_retry, sleep=self._sleep)


def _checked_delays(model: DelayModel, graph: RoutingGraph,
                    widths: EdgeWidths | None) -> dict[int, float]:
    """The model's delays, with non-finite output promoted to a fault."""
    delays = model.delays(graph, widths)
    bad = {sink: value for sink, value in delays.items()
           if not math.isfinite(value)}
    if bad:
        raise NonFiniteDelay(
            f"{model.name} returned non-finite delay(s): {bad}")
    return delays


def build_engine_ladder(
    tech: Technology,
    options: SpiceOptions | None = None,
    engines: Sequence[str] = ("ngspice", "transient", "analytic"),
) -> list[DelayModel]:
    """One oracle per engine name, in decreasing fidelity order.

    ``engines`` names the rungs; each becomes an oracle bound to the
    same technology and segmentation. This is the ladder
    :func:`resilient_spice_model` assembles — exposed separately so the
    routing service can wrap individual rungs (chaos injection on the
    engine of record) before handing them to
    :class:`ResilientDelayModel`.
    """
    opts = options or SpiceOptions()
    ladder: list[DelayModel] = []
    for engine in engines:
        if engine == "ngspice":
            ladder.append(NgspiceDelayModel(tech, opts))
        elif engine in ("transient", "analytic"):
            base = opts if opts.engine == engine else SpiceOptions(
                segments=opts.segments, threshold=opts.threshold,
                engine=engine)
            model: DelayModel = SpiceDelayModel(tech, base)
            model.name = f"spice-{engine}"
            ladder.append(model)
        else:
            raise ValueError(
                f"unknown resilience engine {engine!r}; expected "
                f"'ngspice', 'transient' or 'analytic'")
    return ladder


def resilient_spice_model(
    tech: Technology,
    options: SpiceOptions | None = None,
    engines: Sequence[str] = ("ngspice", "transient", "analytic"),
    retry: RetryPolicy | None = None,
    sleep: SleepFn = time.sleep,
) -> ResilientDelayModel:
    """The standard degradation ladder over the repo's SPICE engines.

    ``engines`` names the rungs in order (see
    :func:`build_engine_ladder`). ``"ngspice"`` requires an external
    binary at call time — with the default ladder its absence simply
    degrades (with provenance) to the in-process engines.
    """
    return ResilientDelayModel(build_engine_ladder(tech, options, engines),
                               retry=retry, sleep=sleep)
