"""Deterministic fault injection for the execution layer's own tests.

Claims like "the pool survives a hung oracle" are only credible if a
test can actually hang an oracle on demand. :class:`ChaosDelayModel`
wraps any :class:`~repro.delay.models.DelayModel` and makes each
``delays()`` call raise, hang, or return NaN at configured rates, from a
seeded stream — so every fault pattern is reproducible bit-for-bit,
independent of worker count or scheduling.

Determinism model: the injector's RNG is seeded from
``(policy.seed, salt)`` where the salt is normally the trial net's name.
A fresh model is built per trial (the table runners already do this), so
trial *k* sees the same fault sequence no matter which worker runs it or
in what order trials complete.
"""

from __future__ import annotations

import math
import random
import time
import zlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.delay.models import DelayModel
from repro.delay.rc_builder import EdgeWidths
from repro.graph.routing_graph import RoutingGraph
from repro.runtime.errors import FaultInjected
from repro.runtime.provenance import KIND_FAULT, ProvenanceEvent, record
from repro.runtime.retry import SleepFn


@dataclass(frozen=True)
class ChaosPolicy:
    """Fault rates and determinism knobs of the injector.

    Each oracle call draws once; the outcome is *raise* with probability
    ``raise_rate``, *hang* with ``hang_rate``, *NaN* with ``nan_rate``,
    otherwise the call passes through untouched.
    """

    seed: int = 0
    raise_rate: float = 0.0
    hang_rate: float = 0.0
    nan_rate: float = 0.0
    #: How long a "hang" sleeps — long enough that only a timeout ends it.
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        for label, rate in (("raise_rate", self.raise_rate),
                            ("hang_rate", self.hang_rate),
                            ("nan_rate", self.nan_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must lie in [0, 1], got {rate}")
        if self.raise_rate + self.hang_rate + self.nan_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be non-negative")

    @property
    def fault_rate(self) -> float:
        return self.raise_rate + self.hang_rate + self.nan_rate

    def to_json_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "raise_rate": self.raise_rate,
                "hang_rate": self.hang_rate, "nan_rate": self.nan_rate,
                "hang_seconds": self.hang_seconds}

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ChaosPolicy":
        return cls(seed=int(data.get("seed", 0)),
                   raise_rate=float(data.get("raise_rate", 0.0)),
                   hang_rate=float(data.get("hang_rate", 0.0)),
                   nan_rate=float(data.get("nan_rate", 0.0)),
                   hang_seconds=float(data.get("hang_seconds", 3600.0)))


def chaos_seed(policy: ChaosPolicy, salt: str) -> int:
    """Stable per-(policy, salt) RNG seed."""
    return policy.seed ^ zlib.crc32(salt.encode("utf-8"))


class ChaosDelayModel(DelayModel):
    """A delay oracle that fails on purpose, reproducibly.

    Args:
        inner: the real oracle to wrap.
        policy: fault rates and seed.
        salt: extra seed material — pass the trial net's name so
            different trials see different (but stable) fault patterns.
        sleep: injectable sleep, so tests can observe "hangs" instantly.
    """

    name = "chaos"
    #: The fault RNG advances per call: a memo hit would skip a draw and
    #: shift every later fault, so this oracle must never be cached.
    cacheable = False

    def __init__(self, inner: DelayModel, policy: ChaosPolicy,
                 salt: str = "", sleep: SleepFn = time.sleep):
        super().__init__(inner.tech)
        self.inner = inner
        self.policy = policy
        self.salt = salt
        self.name = f"chaos({inner.name})"
        self._sleep = sleep
        self._rng = random.Random(chaos_seed(policy, salt))

    def delays(self, graph: RoutingGraph,
               widths: EdgeWidths | None = None) -> dict[int, float]:
        roll = self._rng.random()
        policy = self.policy
        if roll < policy.raise_rate:
            record(ProvenanceEvent(
                kind=KIND_FAULT, source=self.inner.name, detail="raise"))
            raise FaultInjected(
                f"injected oracle fault (salt={self.salt!r})")
        if roll < policy.raise_rate + policy.hang_rate:
            record(ProvenanceEvent(
                kind=KIND_FAULT, source=self.inner.name, detail="hang"))
            self._sleep(policy.hang_seconds)
            raise FaultInjected(
                f"injected hang elapsed after {policy.hang_seconds}s "
                f"(salt={self.salt!r})")
        if roll < policy.fault_rate:
            record(ProvenanceEvent(
                kind=KIND_FAULT, source=self.inner.name, detail="nan"))
            return {sink: math.nan
                    for sink in self.inner.delays(graph, widths)}
        return self.inner.delays(graph, widths)
