"""Isolated trial execution: serial fault containment and a process pool.

One crashed, hung, or exception-raising trial must never take down a
sweep. Two execution paths provide that guarantee:

* **serial** (``workers=0``) — trials run in-process; exceptions are
  caught and converted to :class:`~repro.runtime.trial.TrialFailure`,
  and a per-trial wall-clock budget is enforced with ``SIGALRM`` where
  the platform allows.
* **parallel** (``workers >= 1``) — each worker is its own OS process
  with a dedicated pipe; the parent hands out one task at a time, so it
  always knows exactly which trial a worker holds. A worker that dies
  (segfault, ``os._exit``, OOM-kill) yields a ``"crash"`` failure for
  its in-flight trial and is replaced; one that overruns its deadline
  past a grace period is killed and replaced (``"timeout"``).

Results are keyed by trial, never by completion order, so aggregation
is bit-identical for any worker count.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as connection_wait
from multiprocessing.context import BaseContext
from multiprocessing.process import BaseProcess
from typing import Any, Callable, Iterator, Sequence

from repro.runtime.errors import TrialTimeout
from repro.runtime.trial import (
    FAILURE_CRASH,
    FAILURE_TIMEOUT,
    TrialFailure,
    TrialKey,
    TrialOutcome,
    TrialResult,
)

#: Extra seconds past the in-worker alarm before the parent hard-kills.
PARENT_KILL_GRACE = 2.0

#: Parent poll tick while waiting on worker pipes (seconds).
_WAIT_TICK = 0.25

#: Callback fired as each outcome lands (journaling hook).
OutcomeHook = Callable[[TrialKey, TrialOutcome], None]


@dataclass(frozen=True)
class PoolTask:
    """One unit of work: ``fn(*args)`` must return a journalable payload.

    For parallel execution ``fn`` and every element of ``args`` must be
    picklable (module-level functions and ``functools.partial`` of them
    qualify; closures and lambdas do not).
    """

    key: TrialKey
    fn: Callable[..., TrialResult]
    args: tuple[Any, ...] = ()


@contextmanager
def trial_deadline(seconds: float | None) -> Iterator[None]:
    """Raise :class:`TrialTimeout` in the current frame after ``seconds``.

    Uses ``SIGALRM``, so it only arms on the main thread of a Unix
    process (worker processes qualify); elsewhere it is a no-op and the
    parent-side kill remains the only enforcement.
    """
    if (seconds is None or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise TrialTimeout(f"trial exceeded its {seconds:g}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_tasks(tasks: Sequence[PoolTask], *,
              workers: int = 0,
              timeout: float | None = None,
              strict: bool = False,
              on_outcome: OutcomeHook | None = None
              ) -> dict[TrialKey, TrialOutcome]:
    """Execute every task, converting failures into structured records.

    Args:
        tasks: the work list (keys must be unique).
        workers: 0 = in-process serial; N >= 1 = N isolated processes.
        timeout: per-trial wall-clock budget (seconds), or ``None``.
        strict: serial only — re-raise the first trial exception instead
            of recording it (the historical abort-on-error semantics).
        on_outcome: called with each ``(key, outcome)`` as it completes,
            before the next trial starts — the journaling hook.
    """
    if len({task.key for task in tasks}) != len(tasks):
        raise ValueError("pool task keys must be unique")
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if strict and workers > 0:
        raise ValueError("strict mode is serial-only (workers=0)")
    if workers == 0:
        return _run_serial(tasks, timeout=timeout, strict=strict,
                           on_outcome=on_outcome)
    return _run_parallel(tasks, workers=workers, timeout=timeout,
                         on_outcome=on_outcome)


def _run_serial(tasks: Sequence[PoolTask], *, timeout: float | None,
                strict: bool, on_outcome: OutcomeHook | None
                ) -> dict[TrialKey, TrialOutcome]:
    outcomes: dict[TrialKey, TrialOutcome] = {}
    for task in tasks:
        start = time.perf_counter()
        outcome: TrialOutcome
        try:
            with trial_deadline(timeout):
                outcome = task.fn(*task.args)
        except Exception as exc:
            if strict:
                raise
            outcome = TrialFailure.from_exception(
                exc, elapsed=time.perf_counter() - start)
        outcomes[task.key] = outcome
        if on_outcome is not None:
            on_outcome(task.key, outcome)
    return outcomes


# ---------------------------------------------------------------------------
# Parallel pool
# ---------------------------------------------------------------------------

_STOP = ("stop",)


def _worker_main(conn: Connection) -> None:
    """Worker loop: receive one task, run it, send one outcome, repeat."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns Ctrl-C
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # repro: allow=contracts-broad-catch-swallow — parent closed the pipe: normal shutdown, nothing to report
            return
        if message[0] == "stop":
            return
        _tag, key, fn, args, timeout = message
        start = time.perf_counter()
        outcome: TrialOutcome
        try:
            with trial_deadline(timeout):
                outcome = fn(*args)
        except Exception as exc:
            outcome = TrialFailure.from_exception(
                exc, elapsed=time.perf_counter() - start)
        try:
            conn.send((key, outcome))
        except Exception as send_exc:
            # Unpicklable payload: report a structured failure instead
            # of dying — with the original error preserved, on stderr
            # (the parent cannot see it otherwise) and in the failure
            # message itself.
            detail = f"{type(send_exc).__name__}: {send_exc}"
            print(f"repro.runtime.pool worker: could not send outcome "
                  f"for {key!r}: {detail}", file=sys.stderr)
            try:
                conn.send((key, TrialFailure(
                    kind="exception", error_type="PicklingError",
                    message=f"trial payload could not be pickled "
                            f"({detail})",
                    elapsed=time.perf_counter() - start)))
            except Exception:  # repro: allow=contracts-broad-catch-swallow — even the fallback failed: the pipe is dead and the stderr line above is the last reachable channel, so all that is left is to die loudly enough for the parent's crash detection
                os._exit(1)


class _Worker:
    """Parent-side handle: process, pipe, and the in-flight assignment."""

    def __init__(self, context: BaseContext):
        parent_conn, child_conn = multiprocessing.Pipe()
        process = context.Process(target=_worker_main, args=(child_conn,),
                                  daemon=True)
        process.start()
        child_conn.close()  # parent copy — close so worker death gives EOF
        self.process: BaseProcess = process
        self.conn: Connection = parent_conn
        self.task: PoolTask | None = None
        self.started_at = 0.0

    def assign(self, task: PoolTask, timeout: float | None) -> None:
        self.conn.send(("task", task.key, task.fn, task.args, timeout))
        self.task = task
        self.started_at = time.monotonic()

    def overdue(self, timeout: float | None) -> bool:
        if self.task is None or timeout is None:
            return False
        return time.monotonic() - self.started_at > timeout + PARENT_KILL_GRACE

    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):  # repro: allow=contracts-broad-catch-swallow — the process already exited; kill is best-effort by design
            pass
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # repro: allow=contracts-broad-catch-swallow — double-close of an already-broken pipe during teardown is harmless
            pass

    def stop(self) -> None:
        try:
            self.conn.send(_STOP)
            self.conn.close()
        except (OSError, ValueError, BrokenPipeError):  # repro: allow=contracts-broad-catch-swallow — worker already gone at shutdown; stop is best-effort and kill() follows
            pass


def _run_parallel(tasks: Sequence[PoolTask], *, workers: int,
                  timeout: float | None, on_outcome: OutcomeHook | None
                  ) -> dict[TrialKey, TrialOutcome]:
    context = _pool_context()
    pending = list(reversed(tasks))  # pop() serves tasks in given order
    outcomes: dict[TrialKey, TrialOutcome] = {}
    live: list[_Worker] = [_Worker(context)
                           for _ in range(min(workers, len(tasks)))]
    idle = list(live)

    def settle(key: TrialKey, outcome: TrialOutcome) -> None:
        outcomes[key] = outcome
        if on_outcome is not None:
            on_outcome(key, outcome)

    try:
        while len(outcomes) < len(tasks):
            while idle and pending:
                worker, task = idle.pop(), pending.pop()
                try:
                    worker.assign(task, timeout)
                except Exception as exc:  # unpicklable task
                    settle(task.key, TrialFailure.from_exception(exc))
                    idle.append(worker)
            busy = [w for w in live if w.task is not None]
            if not busy:
                continue
            ready = connection_wait([w.conn for w in busy],
                                    timeout=_WAIT_TICK)
            for worker in [w for w in busy if w.conn in ready]:
                task = worker.task
                assert task is not None
                try:
                    key, outcome = worker.conn.recv()
                except (EOFError, OSError):
                    settle(task.key, _crash_failure(worker))
                    live.remove(worker)
                    worker.kill()
                    if pending:
                        replacement = _Worker(context)
                        live.append(replacement)
                        idle.append(replacement)
                    continue
                worker.task = None
                settle(key, outcome)
                idle.append(worker)
            for worker in [w for w in live if w.overdue(timeout)]:
                task = worker.task
                assert task is not None
                settle(task.key, TrialFailure(
                    kind=FAILURE_TIMEOUT, error_type="TrialTimeout",
                    message=f"worker exceeded the {timeout:g}s trial budget "
                            f"(hard-killed after grace period)",
                    elapsed=worker.elapsed()))
                live.remove(worker)
                worker.kill()
                if pending:
                    replacement = _Worker(context)
                    live.append(replacement)
                    idle.append(replacement)
    finally:
        for worker in live:
            if worker.task is None:
                worker.stop()
            else:
                worker.kill()
        for worker in live:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.kill()
    return outcomes


def _crash_failure(worker: _Worker) -> TrialFailure:
    worker.process.join(timeout=5.0)  # reap, so the exit code is readable
    exitcode = worker.process.exitcode
    return TrialFailure(
        kind=FAILURE_CRASH, error_type="WorkerCrash",
        message=f"worker process died mid-trial (exit code {exitcode})",
        elapsed=worker.elapsed())


def _pool_context() -> BaseContext:
    """Prefer fork (fast, inherits imports); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)
