"""Isolated trial execution: serial fault containment and a process pool.

One crashed, hung, or exception-raising trial must never take down a
sweep. Two execution paths provide that guarantee:

* **serial** (``workers=0``) — trials run in-process; exceptions are
  caught and converted to :class:`~repro.runtime.trial.TrialFailure`,
  and a per-trial wall-clock budget is enforced with ``SIGALRM`` where
  the platform allows.
* **parallel** (``workers >= 1``) — each worker is its own OS process
  with a dedicated pipe; the parent hands out one task at a time, so it
  always knows exactly which trial a worker holds. A worker that dies
  (segfault, ``os._exit``, OOM-kill) yields a ``"crash"`` failure for
  its in-flight trial and is replaced; one that overruns its deadline
  past a grace period is killed and replaced (``"timeout"``).

Results are keyed by trial, never by completion order, so aggregation
is bit-identical for any worker count.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as connection_wait
from multiprocessing.context import BaseContext
from multiprocessing.process import BaseProcess
from typing import Any, Callable, Iterator, Sequence

from repro.runtime.errors import TrialTimeout
from repro.runtime.trial import (
    FAILURE_CRASH,
    FAILURE_DRAINED,
    FAILURE_TIMEOUT,
    TrialFailure,
    TrialKey,
    TrialOutcome,
    TrialResult,
)

#: Extra seconds past the in-worker alarm before the parent hard-kills.
PARENT_KILL_GRACE = 2.0

#: Parent poll tick while waiting on worker pipes (seconds).
_WAIT_TICK = 0.25

#: Callback fired as each outcome lands (journaling hook).
OutcomeHook = Callable[[TrialKey, TrialOutcome], None]


@dataclass(frozen=True)
class PoolTask:
    """One unit of work: ``fn(*args)`` must return a journalable payload.

    For parallel execution ``fn`` and every element of ``args`` must be
    picklable (module-level functions and ``functools.partial`` of them
    qualify; closures and lambdas do not).
    """

    key: TrialKey
    fn: Callable[..., TrialResult]
    args: tuple[Any, ...] = ()


@contextmanager
def trial_deadline(seconds: float | None) -> Iterator[None]:
    """Raise :class:`TrialTimeout` in the current frame after ``seconds``.

    Uses ``SIGALRM``, so it only arms on the main thread of a Unix
    process (worker processes qualify); elsewhere it is a no-op and the
    parent-side kill remains the only enforcement.
    """
    if (seconds is None or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise TrialTimeout(f"trial exceeded its {seconds:g}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_tasks(tasks: Sequence[PoolTask], *,
              workers: int = 0,
              timeout: float | None = None,
              strict: bool = False,
              on_outcome: OutcomeHook | None = None
              ) -> dict[TrialKey, TrialOutcome]:
    """Execute every task, converting failures into structured records.

    Args:
        tasks: the work list (keys must be unique).
        workers: 0 = in-process serial; N >= 1 = N isolated processes.
        timeout: per-trial wall-clock budget (seconds), or ``None``.
        strict: serial only — re-raise the first trial exception instead
            of recording it (the historical abort-on-error semantics).
        on_outcome: called with each ``(key, outcome)`` as it completes,
            before the next trial starts — the journaling hook.
    """
    if len({task.key for task in tasks}) != len(tasks):
        raise ValueError("pool task keys must be unique")
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if strict and workers > 0:
        raise ValueError("strict mode is serial-only (workers=0)")
    if workers == 0:
        return _run_serial(tasks, timeout=timeout, strict=strict,
                           on_outcome=on_outcome)
    return _run_parallel(tasks, workers=workers, timeout=timeout,
                         on_outcome=on_outcome)


def _run_serial(tasks: Sequence[PoolTask], *, timeout: float | None,
                strict: bool, on_outcome: OutcomeHook | None
                ) -> dict[TrialKey, TrialOutcome]:
    outcomes: dict[TrialKey, TrialOutcome] = {}
    for task in tasks:
        start = time.perf_counter()
        outcome: TrialOutcome
        try:
            with trial_deadline(timeout):
                outcome = task.fn(*task.args)
        except Exception as exc:
            if strict:
                raise
            outcome = TrialFailure.from_exception(
                exc, elapsed=time.perf_counter() - start)
        outcomes[task.key] = outcome
        if on_outcome is not None:
            on_outcome(task.key, outcome)
    return outcomes


# ---------------------------------------------------------------------------
# Parallel pool
# ---------------------------------------------------------------------------

_STOP = ("stop",)


def _worker_main(conn: Connection) -> None:
    """Worker loop: receive one task, run it, send one outcome, repeat."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns Ctrl-C
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # repro: allow=contracts-broad-catch-swallow — parent closed the pipe: normal shutdown, nothing to report
            return
        if message[0] == "stop":
            return
        _tag, key, fn, args, timeout = message
        start = time.perf_counter()
        outcome: TrialOutcome
        try:
            with trial_deadline(timeout):
                outcome = fn(*args)
        except Exception as exc:
            outcome = TrialFailure.from_exception(
                exc, elapsed=time.perf_counter() - start)
        try:
            conn.send((key, outcome))
        except Exception as send_exc:
            # Unpicklable payload: report a structured failure instead
            # of dying — with the original error preserved, on stderr
            # (the parent cannot see it otherwise) and in the failure
            # message itself.
            detail = f"{type(send_exc).__name__}: {send_exc}"
            print(f"repro.runtime.pool worker: could not send outcome "
                  f"for {key!r}: {detail}", file=sys.stderr)
            try:
                conn.send((key, TrialFailure(
                    kind="exception", error_type="PicklingError",
                    message=f"trial payload could not be pickled "
                            f"({detail})",
                    elapsed=time.perf_counter() - start)))
            except Exception:  # repro: allow=contracts-broad-catch-swallow — even the fallback failed: the pipe is dead and the stderr line above is the last reachable channel, so all that is left is to die loudly enough for the parent's crash detection
                os._exit(1)


class _Worker:
    """Parent-side handle: process, pipe, and the in-flight assignment."""

    def __init__(self, context: BaseContext):
        parent_conn, child_conn = multiprocessing.Pipe()
        process = context.Process(target=_worker_main, args=(child_conn,),
                                  daemon=True)
        process.start()
        child_conn.close()  # parent copy — close so worker death gives EOF
        self.process: BaseProcess = process
        self.conn: Connection = parent_conn
        self.task: PoolTask | None = None
        self.timeout: float | None = None
        self.started_at = 0.0

    def assign(self, task: PoolTask, timeout: float | None) -> None:
        self.conn.send(("task", task.key, task.fn, task.args, timeout))
        self.task = task
        self.timeout = timeout
        self.started_at = time.monotonic()

    def overdue(self, timeout: float | None) -> bool:
        if self.task is None or timeout is None:
            return False
        return time.monotonic() - self.started_at > timeout + PARENT_KILL_GRACE

    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):  # repro: allow=contracts-broad-catch-swallow — the process already exited; kill is best-effort by design
            pass
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # repro: allow=contracts-broad-catch-swallow — double-close of an already-broken pipe during teardown is harmless
            pass

    def stop(self) -> None:
        try:
            self.conn.send(_STOP)
            self.conn.close()
        except (OSError, ValueError, BrokenPipeError):  # repro: allow=contracts-broad-catch-swallow — worker already gone at shutdown; stop is best-effort and kill() follows
            pass


class WorkerPool:
    """A persistent pool of isolated worker processes.

    :func:`run_tasks` owns a fixed task list and returns when it is
    done; a ``WorkerPool`` is long-lived — callers (the routing
    service's request loop) submit tasks as they arrive, :meth:`poll`
    for completions, and eventually :meth:`drain`: stop dispatching,
    await in-flight work up to a deadline, and convert stragglers to
    structured ``"drained"`` failures instead of hard-killing silently.

    Workers are spawned lazily up to ``workers``; a worker that crashes
    or overruns its per-task deadline is killed and simply not counted
    against capacity anymore, so the next :meth:`submit` replaces it.

    Args:
        workers: maximum concurrent worker processes (values below 1
            are treated as 1 — callers validate their own flags).
        context: multiprocessing context (defaults to fork where
            available).
    """

    def __init__(self, workers: int, context: BaseContext | None = None):
        self.target = max(1, workers)
        self._context = context if context is not None else _pool_context()
        self._live: list[_Worker] = []
        self._idle: list[_Worker] = []
        self._draining = False
        self._closed = False

    # -- capacity -----------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def in_flight(self) -> int:
        """Tasks currently assigned to a live worker."""
        return sum(1 for w in self._live if w.task is not None)

    def in_flight_keys(self) -> list[TrialKey]:
        return [w.task.key for w in self._live if w.task is not None]

    def can_accept(self) -> bool:
        """Whether :meth:`submit` would dispatch immediately."""
        return (not self._draining and not self._closed
                and (bool(self._idle) or len(self._live) < self.target))

    # -- dispatch -----------------------------------------------------

    def submit(self, task: PoolTask,
               timeout: float | None = None) -> TrialFailure | None:
        """Dispatch one task to an idle (or freshly spawned) worker.

        Returns ``None`` on successful dispatch, or an immediate
        :class:`TrialFailure` when the task could not cross the process
        boundary (unpicklable function or arguments) — the worker stays
        usable either way.

        Args:
            task: the unit of work.
            timeout: per-task wall-clock budget in seconds; overruns are
                hard-killed after :data:`PARENT_KILL_GRACE` and surface
                from :meth:`poll` as structured timeout failures.
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        if self._draining:
            raise RuntimeError("pool is draining; no new tasks")
        while True:
            worker = self._checkout()
            try:
                worker.assign(task, timeout)
            except OSError:
                # The worker died while idle (crash between tasks): the
                # pipe is broken, not the task. Replace the casualty and
                # dispatch the same task to a fresh worker — capacity
                # must never shrink below target because of dead slots.
                self._discard(worker)
                continue
            except Exception as exc:  # unpicklable task
                self._idle.append(worker)
                return TrialFailure.from_exception(exc)
            return None

    def _checkout(self) -> _Worker:
        """An idle live worker, or a fresh one (dead idles are culled)."""
        while self._idle:
            worker = self._idle.pop()
            if worker.process.is_alive():
                return worker
            self._discard(worker)
        if len(self._live) >= self.target:
            raise RuntimeError("no idle worker (check can_accept first)")
        worker = _Worker(self._context)
        self._live.append(worker)
        return worker

    def poll(self, timeout: float = _WAIT_TICK
             ) -> list[tuple[TrialKey, TrialOutcome]]:
        """Completed (or failed) assignments since the last poll.

        Blocks up to ``timeout`` seconds waiting for worker pipes.
        Crashed workers yield a ``"crash"`` failure, deadline overruns a
        ``"timeout"`` failure; both kinds of casualty are killed and
        reaped here, freeing their capacity slot.
        """
        settled: list[tuple[TrialKey, TrialOutcome]] = []
        busy = [w for w in self._live if w.task is not None]
        if busy:
            ready = connection_wait([w.conn for w in busy], timeout=timeout)
            for worker in [w for w in busy if w.conn in ready]:
                task = worker.task
                assert task is not None
                try:
                    key, outcome = worker.conn.recv()
                except (EOFError, OSError):
                    settled.append((task.key, _crash_failure(worker)))
                    self._discard(worker)
                    continue
                worker.task = None
                settled.append((key, outcome))
                self._idle.append(worker)
        for worker in list(self._live):
            if worker.task is not None and worker.overdue(worker.timeout):
                budget = worker.timeout
                assert budget is not None
                settled.append((worker.task.key, TrialFailure(
                    kind=FAILURE_TIMEOUT, error_type="TrialTimeout",
                    message=f"worker exceeded the {budget:g}s trial budget "
                            f"(hard-killed after grace period)",
                    elapsed=worker.elapsed())))
                self._discard(worker)
        return settled

    # -- lifecycle ----------------------------------------------------

    def drain(self, grace: float = 30.0
              ) -> dict[TrialKey, TrialOutcome]:
        """Graceful shutdown: finish in-flight work, then close.

        Stops dispatching (``submit`` refuses from this point on),
        awaits in-flight tasks for up to ``grace`` seconds, and converts
        any straggler still running at the deadline into a structured
        :class:`TrialFailure` with ``kind="drained"`` before killing its
        worker. Always leaves the pool fully shut down.

        Returns:
            Every outcome that landed during the drain, keyed by trial
            (completions, crashes, timeouts, and drained stragglers).
        """
        self._draining = True
        outcomes: dict[TrialKey, TrialOutcome] = {}
        deadline = time.monotonic() + max(grace, 0.0)
        while self.in_flight() and time.monotonic() < deadline:
            tick = min(_WAIT_TICK, max(deadline - time.monotonic(), 0.0))
            for key, outcome in self.poll(timeout=tick):
                outcomes[key] = outcome
        for worker in list(self._live):
            if worker.task is None:
                continue
            outcomes[worker.task.key] = TrialFailure(
                kind=FAILURE_DRAINED, error_type="TrialDrained",
                message=f"trial abandoned by graceful drain after its "
                        f"{grace:g}s grace period",
                elapsed=worker.elapsed())
            self._discard(worker)
        self.shutdown()
        return outcomes

    def shutdown(self) -> None:
        """Immediate teardown: stop idle workers, kill busy ones."""
        self._closed = True
        for worker in list(self._live):
            if worker.task is None:
                worker.stop()
            else:
                worker.kill()
        for worker in self._live:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.kill()
        self._live.clear()
        self._idle.clear()

    def _discard(self, worker: _Worker) -> None:
        """Kill and forget one worker (its capacity slot frees up)."""
        if worker in self._live:
            self._live.remove(worker)
        if worker in self._idle:
            self._idle.remove(worker)
        worker.kill()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def _run_parallel(tasks: Sequence[PoolTask], *, workers: int,
                  timeout: float | None, on_outcome: OutcomeHook | None
                  ) -> dict[TrialKey, TrialOutcome]:
    pending = list(reversed(tasks))  # pop() serves tasks in given order
    outcomes: dict[TrialKey, TrialOutcome] = {}
    pool = WorkerPool(min(workers, len(tasks)) or 1)

    def settle(key: TrialKey, outcome: TrialOutcome) -> None:
        outcomes[key] = outcome
        if on_outcome is not None:
            on_outcome(key, outcome)

    try:
        while len(outcomes) < len(tasks):
            while pending and pool.can_accept():
                task = pending.pop()
                immediate = pool.submit(task, timeout)
                if immediate is not None:
                    settle(task.key, immediate)
            for key, outcome in pool.poll(_WAIT_TICK):
                settle(key, outcome)
    finally:
        pool.shutdown()
    return outcomes


def _crash_failure(worker: _Worker) -> TrialFailure:
    worker.process.join(timeout=5.0)  # reap, so the exit code is readable
    exitcode = worker.process.exitcode
    return TrialFailure(
        kind=FAILURE_CRASH, error_type="WorkerCrash",
        message=f"worker process died mid-trial (exit code {exitcode})",
        elapsed=worker.elapsed())


def _pool_context() -> BaseContext:
    """Prefer fork (fast, inherits imports); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)
