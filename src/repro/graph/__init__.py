"""Routing-graph substrate: graphs with cycles, spanning trees, Steiner trees.

The paper's central move is to allow routing topologies that are arbitrary
graphs rather than trees. :class:`~repro.graph.routing_graph.RoutingGraph`
is the shared data structure: an undirected geometric graph over a net's
pins (plus optional Steiner points) whose edge weights are Manhattan
lengths.
"""

from repro.graph.routing_graph import RoutingGraph, RoutingGraphError
from repro.graph.mst import kruskal_mst, prim_mst, prim_mst_indices
from repro.graph.steiner import batched_one_steiner, iterated_one_steiner
from repro.graph.baselines import bounded_radius_tree, prim_dijkstra_tree
from repro.graph.paths import dijkstra_lengths, graph_radius, tree_path
from repro.graph.validation import (
    check_connected,
    check_spanning,
    check_tree,
)

__all__ = [
    "RoutingGraph",
    "RoutingGraphError",
    "batched_one_steiner",
    "bounded_radius_tree",
    "check_connected",
    "check_spanning",
    "check_tree",
    "dijkstra_lengths",
    "graph_radius",
    "iterated_one_steiner",
    "kruskal_mst",
    "prim_dijkstra_tree",
    "prim_mst",
    "prim_mst_indices",
    "tree_path",
]
