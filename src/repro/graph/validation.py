"""Structural validation helpers for routing graphs.

Algorithms in :mod:`repro.core` call these at their boundaries so that a
malformed routing fails loudly at the point of construction rather than
producing a silently wrong delay number downstream.

Since the static-analysis subsystem landed, the checks are thin raising
wrappers over the :mod:`repro.analysis.graph_rules` lint rules: each
``check_*`` runs the corresponding rule, and raises
:class:`~repro.graph.routing_graph.RoutingGraphError` carrying the
rule's diagnostic when it fires. The ``*_diagnostics`` functions expose
the non-raising form for callers (CLI lint, JSON loading) that want to
collect findings instead of aborting on the first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.routing_graph import RoutingGraph, RoutingGraphError

if TYPE_CHECKING:
    from repro.analysis.diagnostics import Diagnostic


def connectivity_diagnostics(graph: RoutingGraph) -> list[Diagnostic]:
    """Diagnostics from the ``graph-disconnected`` rule (empty = connected)."""
    from repro.analysis.diagnostics import registry

    import repro.analysis.graph_rules  # noqa: F401  (registers the rules)
    return list(registry.get("graph-disconnected").check(graph))


def spanning_diagnostics(graph: RoutingGraph) -> list[Diagnostic]:
    """Diagnostics from the ``graph-nonspanning`` rule (empty = spanning)."""
    from repro.analysis.diagnostics import registry

    import repro.analysis.graph_rules  # noqa: F401
    return list(registry.get("graph-nonspanning").check(graph))


def tree_diagnostics(graph: RoutingGraph) -> list[Diagnostic]:
    """Connectivity diagnostics plus a finding when the graph has cycles.

    Being a non-tree is *not* a lint rule — cycles are the entire point
    of the paper — so the cycle finding is built here, only for callers
    that explicitly demand a tree (Elmore recursion, parent maps).
    """
    from repro.analysis.diagnostics import Diagnostic, Location, Severity

    diagnostics = connectivity_diagnostics(graph)
    if graph.num_edges != graph.num_nodes - 1:
        diagnostics.append(Diagnostic(
            rule="graph-not-a-tree", severity=Severity.ERROR,
            message=f"{graph.num_edges} edges over {graph.num_nodes} nodes",
            location=Location(obj=f"net {graph.net.name!r}"),
            hint="tree-only consumers (Elmore recursion, parent maps) "
                 "cannot accept routing graphs with cycles"))
    return diagnostics


def check_connected(graph: RoutingGraph) -> None:
    """Raise unless every node is reachable from the source."""
    diagnostics = connectivity_diagnostics(graph)
    if diagnostics:
        raise RoutingGraphError(
            f"routing over net {graph.net.name!r} is disconnected: "
            f"{diagnostics[0].message}")


def check_spanning(graph: RoutingGraph) -> None:
    """Raise unless every *pin* of the net is reachable from the source."""
    diagnostics = spanning_diagnostics(graph)
    if diagnostics:
        raise RoutingGraphError(
            f"routing over net {graph.net.name!r} does not span all pins: "
            f"{diagnostics[0].message}")


def check_tree(graph: RoutingGraph) -> None:
    """Raise unless the routing is a tree (connected, |E| = |V| - 1)."""
    check_connected(graph)
    if graph.num_edges != graph.num_nodes - 1:
        raise RoutingGraphError(
            f"routing over net {graph.net.name!r} has cycles: "
            f"{graph.num_edges} edges over {graph.num_nodes} nodes")
