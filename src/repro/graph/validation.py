"""Structural validation helpers for routing graphs.

Algorithms in :mod:`repro.core` call these at their boundaries so that a
malformed routing fails loudly at the point of construction rather than
producing a silently wrong delay number downstream.
"""

from __future__ import annotations

from repro.graph.routing_graph import RoutingGraph, RoutingGraphError


def check_connected(graph: RoutingGraph) -> None:
    """Raise unless every node is reachable from the source."""
    if not graph.is_connected():
        raise RoutingGraphError(
            f"routing over net {graph.net.name!r} is disconnected")


def check_spanning(graph: RoutingGraph) -> None:
    """Raise unless every *pin* of the net is reachable from the source."""
    if not graph.spans_net():
        raise RoutingGraphError(
            f"routing over net {graph.net.name!r} does not span all pins")


def check_tree(graph: RoutingGraph) -> None:
    """Raise unless the routing is a tree (connected, |E| = |V| - 1)."""
    check_connected(graph)
    if graph.num_edges != graph.num_nodes - 1:
        raise RoutingGraphError(
            f"routing over net {graph.net.name!r} has cycles: "
            f"{graph.num_edges} edges over {graph.num_nodes} nodes")
