"""Minimum spanning trees in the Manhattan metric.

Every heuristic in the paper starts from an MST (or a Steiner tree whose
construction itself leans on MSTs), so these routines are the workhorses of
the whole library. Two implementations are provided: Prim's algorithm on a
dense numpy distance matrix (O(n²), fastest for the complete geometric
graphs used here) and Kruskal's algorithm (used by the incremental Steiner
machinery and as a cross-check in tests).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.routing_graph import RoutingGraph


def manhattan_matrix(points: Sequence[Point]) -> np.ndarray:
    """Dense pairwise Manhattan distance matrix of ``points``."""
    coords = np.array([(p.x, p.y) for p in points], dtype=float)
    dx = np.abs(coords[:, 0:1] - coords[:, 0:1].T)
    dy = np.abs(coords[:, 1:2] - coords[:, 1:2].T)
    return dx + dy


def prim_mst_indices(points: Sequence[Point],
                     dist: np.ndarray | None = None) -> list[tuple[int, int]]:
    """MST edge list over ``points`` by Prim's algorithm (O(n²)).

    Ties are broken deterministically toward the lower-indexed attachment
    node, so the same point set always yields the same tree.
    """
    n = len(points)
    if n < 2:
        return []
    if dist is None:
        dist = manhattan_matrix(points)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    best_dist = dist[0].copy()
    best_from = np.zeros(n, dtype=int)
    best_dist[0] = np.inf
    edges: list[tuple[int, int]] = []
    for _ in range(n - 1):
        node = int(np.argmin(best_dist))
        parent = int(best_from[node])
        edges.append((min(parent, node), max(parent, node)))
        in_tree[node] = True
        best_dist[node] = np.inf
        closer = dist[node] < best_dist
        closer &= ~in_tree
        best_from[closer] = node
        best_dist[closer] = dist[node][closer]
    return edges


def prim_mst(net: Net) -> RoutingGraph:
    """The Manhattan MST over a net's pins, as a :class:`RoutingGraph`."""
    return RoutingGraph.from_edges(net, prim_mst_indices(net.pins))


class _DisjointSet:
    """Union-find with path compression and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


def kruskal_mst_from_edges(
        n: int,
        weighted_edges: Sequence[tuple[float, int, int]],
) -> tuple[list[tuple[int, int]], float]:
    """Kruskal's MST over an explicit weighted edge list.

    Args:
        n: node count (nodes are ``0..n-1``).
        weighted_edges: ``(weight, u, v)`` triples; need not be sorted.

    Returns:
        ``(edges, total_weight)`` where edges are ``(u, v)`` with ``u < v``.

    Raises:
        ValueError: if the edge list does not connect all ``n`` nodes.
    """
    dsu = _DisjointSet(n)
    chosen: list[tuple[int, int]] = []
    total = 0.0
    for weight, u, v in sorted(weighted_edges):
        if dsu.union(u, v):
            chosen.append((min(u, v), max(u, v)))
            total += weight
            if len(chosen) == n - 1:
                break
    if len(chosen) != n - 1:
        raise ValueError("edge list does not connect all nodes")
    return chosen, total


def kruskal_mst(net: Net) -> RoutingGraph:
    """The Manhattan MST over a net's pins, by Kruskal's algorithm.

    The tree *cost* always matches :func:`prim_mst`; the edge sets may
    differ when distances tie.
    """
    pins = net.pins
    n = len(pins)
    dist = manhattan_matrix(pins)
    weighted = [(float(dist[i, j]), i, j)
                for i in range(n) for j in range(i + 1, n)]
    edges, _ = kruskal_mst_from_edges(n, weighted)
    return RoutingGraph.from_edges(net, edges)


def mst_cost_with_extra_point(
        tree_edges: Sequence[tuple[int, int]],
        points: Sequence[Point],
        extra: Point,
) -> float:
    """Cost of the MST over ``points + [extra]``, given the MST of ``points``.

    Classic incremental trick used inside Iterated 1-Steiner: the MST of
    ``P ∪ {c}`` is a subgraph of ``MST(P) ∪ {edges from c to every point}``,
    so Kruskal over those ``2n - 1`` edges suffices — O(n log n) per
    candidate instead of recomputing a full O(n²) MST.
    """
    n = len(points)
    extra_index = n
    candidate_edges: list[tuple[float, int, int]] = [
        (points[u].manhattan(points[v]), u, v) for u, v in tree_edges
    ]
    candidate_edges.extend(
        (extra.manhattan(points[i]), i, extra_index) for i in range(n))
    _, total = kruskal_mst_from_edges(n + 1, candidate_edges)
    return total
