"""Cost/radius-tradeoff spanning trees from the paper's related work.

Section 1 of the paper situates non-tree routing against the cost-radius
tradeoff literature it cites:

* **Prim–Dijkstra trees** (Alpert, Hu, Huang & Kahng [1]): grow a tree
  from the source attaching the pin that minimizes
  ``c · pathlength(u) + dist(u, v)``. ``c = 0`` is exactly Prim's MST;
  ``c = 1`` is exactly Dijkstra's shortest-path tree; intermediate values
  trade wirelength against source–sink path length.
* **Bounded-radius trees** (Cong, Kahng, Robins, Sarrafzadeh & Wong [8],
  the BPRIM family): a Prim-style construction that refuses attachments
  whose source–sink path would exceed ``(1 + ε)`` times the direct
  distance, falling back to a direct source connection. The result's
  radius is at most ``(1 + ε) · max_v dist(source, v)`` by construction.

These are *tree* baselines: the benchmark suite uses them to position
LDRG's non-tree routings on the same delay/cost map the 1990s literature
drew.
"""

from __future__ import annotations

from repro.geometry.net import Net
from repro.graph.routing_graph import RoutingGraph


def prim_dijkstra_tree(net: Net, c: float) -> RoutingGraph:
    """The AHHK Prim–Dijkstra spanning tree with tradeoff parameter ``c``.

    Args:
        net: the signal net.
        c: tradeoff in [0, 1]; 0 = Prim (min cost), 1 = Dijkstra (min
            source–sink paths).
    """
    if not 0.0 <= c <= 1.0:
        raise ValueError("tradeoff parameter c must lie in [0, 1]")
    graph = RoutingGraph(net)
    pathlength = {graph.source: 0.0}
    remaining = set(graph.sink_indices())
    while remaining:
        best_key = None
        best_edge = None
        for v in remaining:
            for u in pathlength:
                key = c * pathlength[u] + graph.distance(u, v)
                if best_key is None or key < best_key:
                    best_key = key
                    best_edge = (u, v)
        assert best_edge is not None
        u, v = best_edge
        graph.add_edge(u, v)
        pathlength[v] = pathlength[u] + graph.distance(u, v)
        remaining.discard(v)
    return graph


def bounded_radius_tree(net: Net, epsilon: float) -> RoutingGraph:
    """A bounded-radius spanning tree in the BPRIM style of [8].

    Grows from the source, attaching each pin by the cheapest edge whose
    resulting source–pin path stays within ``(1 + ε)`` of the direct
    distance; when no tree node qualifies, the pin is wired straight to
    the source (which always qualifies). Hence the invariant::

        pathlength(v) <= (1 + ε) · dist(source, v)   for every pin v

    ``ε = ∞`` degenerates to Prim's MST; ``ε = 0`` forces shortest paths.
    """
    if epsilon < 0.0:
        raise ValueError("epsilon must be non-negative")
    graph = RoutingGraph(net)
    pathlength = {graph.source: 0.0}
    remaining = set(graph.sink_indices())
    while remaining:
        best_len = None
        best_edge = None
        for v in remaining:
            bound = (1.0 + epsilon) * graph.distance(graph.source, v)
            for u in pathlength:
                length = graph.distance(u, v)
                if pathlength[u] + length > bound + 1e-9:
                    continue
                if best_len is None or length < best_len:
                    best_len = length
                    best_edge = (u, v)
        assert best_edge is not None  # the source itself always qualifies
        u, v = best_edge
        graph.add_edge(u, v)
        pathlength[v] = pathlength[u] + graph.distance(u, v)
        remaining.discard(v)
    return graph
