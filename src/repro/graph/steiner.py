"""Iterated 1-Steiner (Kahng & Robins) rectilinear Steiner trees.

SLDRG (Figure 6 of the paper) starts from a Steiner tree computed by "an
efficient implementation of the Iterated 1-Steiner algorithm of Kahng and
Robins" [2][3][13]. The algorithm:

1. Start with the MST over the pins ``P``; the Steiner set ``S`` is empty.
2. Among candidate points (the Hanan grid of ``P ∪ S``), find the point
   whose addition most reduces ``cost(MST(P ∪ S))``.
3. If the best gain is positive, add the point to ``S``, drop any Steiner
   point whose MST degree has fallen to ≤ 2 (it no longer pays for itself),
   and repeat from step 2.
4. Return ``MST(P ∪ S)``.

Candidate evaluation uses the classic incremental trick: the MST of
``P ∪ S ∪ {c}`` is a subgraph of ``MST(P ∪ S)`` plus the star from ``c``,
so each candidate costs O(n log n) instead of a fresh O(n²) MST.
"""

from __future__ import annotations

from repro.geometry.hanan import hanan_points
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import (
    manhattan_matrix,
    mst_cost_with_extra_point,
    prim_mst_indices,
)
from repro.graph.routing_graph import RoutingGraph

#: Relative cost-gain threshold below which a candidate is not worth adding.
_GAIN_TOLERANCE = 1e-9


def iterated_one_steiner(net: Net, max_steiner_points: int | None = None) -> RoutingGraph:
    """A rectilinear Steiner tree over ``net`` by Iterated 1-Steiner.

    Args:
        net: the signal net to span.
        max_steiner_points: optional cap on |S| (defaults to ``k - 1``,
            enough for any optimal rectilinear Steiner topology).

    Returns:
        A tree :class:`RoutingGraph` whose Steiner nodes are recorded in
        :attr:`RoutingGraph.steiner`. Cost never exceeds the MST cost.
    """
    pins = list(net.pins)
    limit = max_steiner_points if max_steiner_points is not None else max(
        0, net.num_pins - 2)
    steiner: list[Point] = []
    while len(steiner) < limit:
        points = pins + steiner
        tree_edges = prim_mst_indices(points)
        base_cost = _edge_cost(points, tree_edges)
        best_point, best_cost = _best_candidate(pins, steiner, points,
                                                tree_edges, base_cost)
        if best_point is None:
            break
        steiner.append(best_point)
        steiner = _prune_low_degree(pins, steiner)
    return _build_tree(net, pins, steiner)


def batched_one_steiner(net: Net,
                        max_steiner_points: int | None = None) -> RoutingGraph:
    """Batched 1-Steiner (Barrera et al. [2][3]): add whole *rounds*.

    Where Iterated 1-Steiner adds the single best candidate per MST
    recomputation, the batched variant ranks all positive-gain Hanan
    candidates per round and admits a greedy maximal subset of
    *independent* ones (re-checking each candidate's gain against the
    tree as modified by the candidates already admitted this round).
    Rounds repeat until no candidate helps. Same cost guarantees as the
    iterated version (never above the MST), typically far fewer MST
    recomputations on large nets.
    """
    pins = list(net.pins)
    limit = max_steiner_points if max_steiner_points is not None else max(
        0, net.num_pins - 2)
    steiner: list[Point] = []
    while len(steiner) < limit:
        points = pins + steiner
        tree_edges = prim_mst_indices(points)
        base_cost = _edge_cost(points, tree_edges)
        threshold = _GAIN_TOLERANCE * max(base_cost, 1.0)
        taken = set(points)
        gains: list[tuple[float, Point]] = []
        for candidate in hanan_points(pins + steiner, exclude_pins=False):
            if candidate in taken:
                continue
            cost = mst_cost_with_extra_point(tree_edges, points, candidate)
            if base_cost - cost > threshold:
                gains.append((base_cost - cost, candidate))
        if not gains:
            break
        gains.sort(key=lambda item: -item[0])
        admitted = 0
        for _, candidate in gains:
            if len(steiner) >= limit:
                break
            # Re-check against the tree as already modified this round.
            points = pins + steiner
            tree_edges = prim_mst_indices(points)
            current = _edge_cost(points, tree_edges)
            cost = mst_cost_with_extra_point(tree_edges, points, candidate)
            if current - cost > threshold:
                steiner.append(candidate)
                admitted += 1
        if admitted == 0:
            break
        steiner = _prune_low_degree(pins, steiner)
    return _build_tree(net, pins, steiner)


def _edge_cost(points: list[Point], edges: list[tuple[int, int]]) -> float:
    return sum(points[u].manhattan(points[v]) for u, v in edges)


def _best_candidate(pins: list[Point], steiner: list[Point],
                    points: list[Point], tree_edges: list[tuple[int, int]],
                    base_cost: float) -> tuple[Point | None, float]:
    """The Hanan candidate with the largest positive MST-cost saving."""
    taken = set(points)
    threshold = _GAIN_TOLERANCE * max(base_cost, 1.0)
    best_point: Point | None = None
    best_cost = base_cost
    for candidate in hanan_points(pins + steiner, exclude_pins=False):
        if candidate in taken:
            continue
        cost = mst_cost_with_extra_point(tree_edges, points, candidate)
        if cost < best_cost - threshold:
            best_cost = cost
            best_point = candidate
    return best_point, best_cost


def _prune_low_degree(pins: list[Point], steiner: list[Point]) -> list[Point]:
    """Drop Steiner points whose MST degree is ≤ 2 until none remain.

    A degree-1 Steiner point is dead wire; a degree-2 one merely bends a
    wire, which the Manhattan metric already accounts for, so neither earns
    its keep.
    """
    current = list(steiner)
    while current:
        points = pins + current
        edges = prim_mst_indices(points)
        degree = [0] * len(points)
        for u, v in edges:
            degree[u] += 1
            degree[v] += 1
        keep = [p for i, p in enumerate(current, start=len(pins))
                if degree[i] >= 3]
        if len(keep) == len(current):
            break
        current = keep
    return current


def _build_tree(net: Net, pins: list[Point], steiner: list[Point]) -> RoutingGraph:
    graph = RoutingGraph(net)
    index_of: dict[int, int] = {i: i for i in range(len(pins))}
    for offset, point in enumerate(steiner):
        index_of[len(pins) + offset] = graph.add_steiner_point(point)
    points = pins + steiner
    dist = manhattan_matrix(points) if len(points) > 1 else None
    for u, v in prim_mst_indices(points, dist):
        graph.add_edge(index_of[u], index_of[v])
    return graph
