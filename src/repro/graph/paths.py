"""Shortest-path queries over routing graphs.

Heuristic H3 scores each sink by ``pathlength × Elmore / new-edge-length``,
where *pathlength* is the wire length of the tree path from the source;
:func:`dijkstra_lengths` generalizes that to arbitrary routing graphs (on a
tree, Dijkstra lengths coincide with tree path lengths).
"""

from __future__ import annotations

import heapq

from repro.graph.routing_graph import RoutingGraph, RoutingGraphError


def dijkstra_lengths(graph: RoutingGraph, start: int | None = None) -> dict[int, float]:
    """Shortest wire-length distance from ``start`` (default: source) to every node.

    Unreachable nodes are absent from the result.
    """
    origin = graph.source if start is None else start
    if origin not in set(graph.nodes()):
        raise RoutingGraphError(f"unknown start node {origin}")
    done: dict[int, float] = {}
    frontier: list[tuple[float, int]] = [(0.0, origin)]
    while frontier:
        dist, node = heapq.heappop(frontier)
        if node in done:
            continue
        done[node] = dist
        for neighbor in graph.neighbors(node):
            if neighbor not in done:
                heapq.heappush(
                    frontier, (dist + graph.edge_length(node, neighbor), neighbor))
    return done


def graph_radius(graph: RoutingGraph) -> float:
    """Longest shortest-path wire length from the source to any *pin*.

    The classic "radius" objective of bounded-radius routing work the paper
    cites ([8], [1]); exposed here for diagnostics and tests.
    """
    lengths = dijkstra_lengths(graph)
    missing = [pin for pin in range(graph.num_pins) if pin not in lengths]
    if missing:
        raise RoutingGraphError(f"pins {missing} unreachable from source")
    return max(lengths[pin] for pin in range(graph.num_pins))


def tree_path(graph: RoutingGraph, target: int, root: int | None = None) -> list[int]:
    """The unique root → ``target`` node path in a tree routing.

    Raises :class:`RoutingGraphError` when the graph is not a tree (paths
    are then not unique).
    """
    parents = graph.rooted_parents(root)
    if target not in parents:
        raise RoutingGraphError(f"node {target} not reachable from root")
    path = [target]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return path
