"""The routing-graph data structure shared by every algorithm in the library.

A :class:`RoutingGraph` is an undirected graph over the pins of a net (plus
optional Steiner points), embedded in the Manhattan plane. Edge weights are
always the Manhattan distance between the endpoints — a rectilinear wire
between two points has exactly that length. Cycles are allowed; that is the
whole point of the paper.

Node indexing convention:

* node ``0`` is always the net's source pin ``n0``;
* nodes ``1..k`` are the sink pins ``n1..nk`` in net order;
* nodes ``k+1..`` are Steiner points, marked in :attr:`RoutingGraph.steiner`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Iterator

from repro.geometry.net import Net
from repro.geometry.point import Point


class RoutingGraphError(ValueError):
    """Raised for structurally invalid routing-graph operations."""


class RoutingGraph:
    """An undirected geometric graph over a net's pins and Steiner points."""

    def __init__(self, net: Net) -> None:
        self.net = net
        self._positions: dict[int, Point] = dict(enumerate(net.pins))
        self._adj: dict[int, dict[int, float]] = {
            i: {} for i in range(net.num_pins)
        }
        self.steiner: set[int] = set()
        self._next_index = net.num_pins

    # ------------------------------------------------------------------ nodes

    @property
    def source(self) -> int:
        """Index of the source pin (always 0)."""
        return 0

    @property
    def num_pins(self) -> int:
        """Number of original net pins (source + sinks)."""
        return self.net.num_pins

    def sink_indices(self) -> range:
        """Indices of the net's sink pins."""
        return range(1, self.num_pins)

    def nodes(self) -> Iterator[int]:
        """All node indices (pins first, then Steiner points)."""
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    def position(self, node: int) -> Point:
        """The plane coordinates of ``node``."""
        try:
            return self._positions[node]
        except KeyError:
            raise RoutingGraphError(f"unknown node {node}") from None

    def positions(self) -> dict[int, Point]:
        """A copy of the node → position map."""
        return dict(self._positions)

    def is_steiner(self, node: int) -> bool:
        """Whether ``node`` is a Steiner point (not an original pin)."""
        return node in self.steiner

    def add_steiner_point(self, point: Point) -> int:
        """Add a Steiner point at ``point``; returns its new node index."""
        index = self._next_index
        self._next_index += 1
        self._positions[index] = point
        self._adj[index] = {}
        self.steiner.add(index)
        return index

    def remove_node(self, node: int) -> None:
        """Remove a Steiner point and its incident edges.

        Original pins cannot be removed — the routing must span the net.
        """
        if node not in self._adj:
            raise RoutingGraphError(f"unknown node {node}")
        if node < self.num_pins:
            raise RoutingGraphError("cannot remove a net pin from the routing")
        for neighbor in list(self._adj[node]):
            self.remove_edge(node, neighbor)
        del self._adj[node]
        del self._positions[node]
        self.steiner.discard(node)

    # ------------------------------------------------------------------ edges

    def distance(self, u: int, v: int) -> float:
        """Manhattan distance between two nodes' positions."""
        return self.position(u).manhattan(self.position(v))

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj.get(u, {})

    def add_edge(self, u: int, v: int) -> float:
        """Add edge ``(u, v)``; returns its Manhattan length.

        Self-loops and duplicate edges are rejected: neither ever lowers
        delay and both would make wirelength accounting ambiguous.
        """
        if u == v:
            raise RoutingGraphError(f"self-loop at node {u}")
        if u not in self._adj or v not in self._adj:
            raise RoutingGraphError(f"edge ({u}, {v}) references unknown node")
        if self.has_edge(u, v):
            raise RoutingGraphError(f"edge ({u}, {v}) already present")
        length = self.distance(u, v)
        self._adj[u][v] = length
        self._adj[v][u] = length
        return length

    def remove_edge(self, u: int, v: int) -> None:
        if not self.has_edge(u, v):
            raise RoutingGraphError(f"edge ({u}, {v}) not present")
        del self._adj[u][v]
        del self._adj[v][u]

    def edges(self) -> list[tuple[int, int]]:
        """All edges as ``(u, v)`` pairs with ``u < v``."""
        return [(u, v) for u in self._adj for v in self._adj[u] if u < v]

    def edge_lengths(self) -> dict[tuple[int, int], float]:
        """Edge → Manhattan length map (keys have ``u < v``)."""
        return {(u, v): self._adj[u][v]
                for u in self._adj for v in self._adj[u] if u < v}

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def edge_length(self, u: int, v: int) -> float:
        try:
            return self._adj[u][v]
        except KeyError:
            raise RoutingGraphError(f"edge ({u}, {v}) not present") from None

    def neighbors(self, node: int) -> list[int]:
        try:
            return list(self._adj[node])
        except KeyError:
            raise RoutingGraphError(f"unknown node {node}") from None

    def degree(self, node: int) -> int:
        return len(self._adj[node])

    # ------------------------------------------------------------- properties

    def cost(self) -> float:
        """Total wirelength: the sum of Manhattan edge lengths."""
        return sum(length for nbrs in self._adj.values()
                   for length in nbrs.values()) / 2.0

    def is_connected(self) -> bool:
        """Whether every node is reachable from the source."""
        return len(self._reachable(self.source)) == self.num_nodes

    def spans_net(self) -> bool:
        """Whether every *pin* is reachable from the source.

        Dangling Steiner points do not break spanning, but any disconnected
        pin does.
        """
        reachable = self._reachable(self.source)
        return all(pin in reachable for pin in range(self.num_pins))

    def is_tree(self) -> bool:
        """Connected with exactly ``|V| - 1`` edges."""
        return self.is_connected() and self.num_edges == self.num_nodes - 1

    def reachable_from(self, start: int | None = None) -> set[int]:
        """All nodes reachable from ``start`` (default: the source)."""
        origin = self.source if start is None else start
        if origin not in self._adj:
            raise RoutingGraphError(f"unknown node {origin}")
        return self._reachable(origin)

    def _reachable(self, start: int) -> set[int]:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in self._adj[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen

    def candidate_edges(self) -> list[tuple[int, int]]:
        """All node pairs not already joined by an edge (the LDRG search space)."""
        nodes = sorted(self._adj)
        return [(u, v)
                for i, u in enumerate(nodes)
                for v in nodes[i + 1:]
                if v not in self._adj[u]]

    # ------------------------------------------------------------- structure

    def rooted_parents(self, root: int | None = None) -> dict[int, int | None]:
        """Parent map of a BFS orientation from ``root`` (default: source).

        Only meaningful on trees; raises :class:`RoutingGraphError` when the
        graph contains a cycle or is disconnected, because a parent map is
        then not well-defined.
        """
        if not self.is_tree():
            raise RoutingGraphError(
                "rooted_parents is only defined for trees; this routing "
                f"graph has {self.num_edges} edges over {self.num_nodes} nodes")
        start = self.source if root is None else root
        parents: dict[int, int | None] = {start: None}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in self._adj[node]:
                if neighbor not in parents:
                    parents[neighbor] = node
                    queue.append(neighbor)
        return parents

    def copy(self) -> "RoutingGraph":
        """An independent deep copy."""
        clone = RoutingGraph.__new__(RoutingGraph)
        clone.net = self.net
        clone._positions = dict(self._positions)
        clone._adj = {node: dict(nbrs) for node, nbrs in self._adj.items()}
        clone.steiner = set(self.steiner)
        clone._next_index = self._next_index
        return clone

    def with_edge(self, u: int, v: int) -> "RoutingGraph":
        """A copy of this graph with edge ``(u, v)`` added."""
        clone = self.copy()
        clone.add_edge(u, v)
        return clone

    # ----------------------------------------------------------------- export

    def to_networkx(self) -> Any:
        """Export to a ``networkx.Graph`` (positions in the ``pos`` attribute)."""
        import networkx as nx

        graph = nx.Graph(name=self.net.name)
        for node, point in self._positions.items():
            graph.add_node(node, pos=point.as_tuple(),
                           steiner=node in self.steiner)
        for (u, v), length in self.edge_lengths().items():
            graph.add_edge(u, v, weight=length)
        return graph

    @classmethod
    def from_edges(cls, net: Net, edges: Iterable[tuple[int, int]]) -> "RoutingGraph":
        """Build a graph over ``net``'s pins from an explicit edge list."""
        graph = cls(net)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def __repr__(self) -> str:
        kind = "tree" if self.is_tree() else "graph"
        return (f"RoutingGraph({self.net.name!r}, {kind}, "
                f"{self.num_nodes} nodes, {self.num_edges} edges, "
                f"cost={self.cost():.1f}um)")
