"""SVG line charts of transient waveforms.

Companion to the routing renderer: lets the examples and experiment
reports show the actual voltage curves behind a 50%-delay number (e.g.
the far sink of an MST vs its non-tree routing) without any plotting
dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_WIDTH = 720.0
_HEIGHT = 420.0
_MARGIN = 56.0
_COLORS = ("#1f3b57", "#c0392b", "#1e8449", "#7d3c98", "#b7950b", "#2471a3")
_STYLE_AXIS = "stroke:#666666;stroke-width:1"
_STYLE_GRID = "stroke:#dddddd;stroke-width:1"
_STYLE_TEXT = "font-family:sans-serif;font-size:12px;fill:#444444"


def render_waveforms_svg(times: Sequence[float],
                         waveforms: Mapping[str, Sequence[float]],
                         title: str | None = None,
                         threshold: float | None = None) -> str:
    """Render labelled waveforms over a shared time axis as SVG.

    Args:
        times: sample times (seconds), ascending.
        waveforms: label → values, each the same length as ``times``.
        title: optional caption.
        threshold: optional horizontal marker (e.g. 0.5 for the 50%
            crossing level the paper measures).
    """
    if len(times) < 2:
        raise ValueError("need at least two timepoints")
    if not waveforms:
        raise ValueError("no waveforms given")
    for label, values in waveforms.items():
        if len(values) != len(times):
            raise ValueError(f"waveform {label!r} length mismatch")

    t_lo, t_hi = float(times[0]), float(times[-1])
    v_lo = min(min(values) for values in waveforms.values())
    v_hi = max(max(values) for values in waveforms.values())
    if threshold is not None:
        v_lo, v_hi = min(v_lo, threshold), max(v_hi, threshold)
    v_span = (v_hi - v_lo) or 1.0
    t_span = (t_hi - t_lo) or 1.0

    def to_x(t: float) -> float:
        return _MARGIN + (t - t_lo) / t_span * (_WIDTH - 2 * _MARGIN)

    def to_y(v: float) -> float:
        return _HEIGHT - _MARGIN - (v - v_lo) / v_span * (_HEIGHT - 2 * _MARGIN)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH:.0f}" '
        f'height="{_HEIGHT:.0f}" viewBox="0 0 {_WIDTH:.0f} {_HEIGHT:.0f}">',
        f'<rect width="{_WIDTH:.0f}" height="{_HEIGHT:.0f}" fill="#fbfaf7"/>',
    ]
    if title:
        parts.append(f'<text x="{_MARGIN}" y="24" style="{_STYLE_TEXT}">'
                     f'{_escape(title)}</text>')

    # Axes and time gridlines with nanosecond labels.
    parts.append(f'<line x1="{_MARGIN}" y1="{to_y(v_lo)}" x2="{to_x(t_hi)}" '
                 f'y2="{to_y(v_lo)}" style="{_STYLE_AXIS}"/>')
    parts.append(f'<line x1="{_MARGIN}" y1="{to_y(v_lo)}" x2="{_MARGIN}" '
                 f'y2="{to_y(v_hi)}" style="{_STYLE_AXIS}"/>')
    for i in range(5):
        t = t_lo + t_span * i / 4
        x = to_x(t)
        parts.append(f'<line x1="{x:.1f}" y1="{to_y(v_lo):.1f}" '
                     f'x2="{x:.1f}" y2="{to_y(v_hi):.1f}" '
                     f'style="{_STYLE_GRID}"/>')
        parts.append(f'<text x="{x - 14:.1f}" y="{to_y(v_lo) + 18:.1f}" '
                     f'style="{_STYLE_TEXT}">{t * 1e9:.2f}ns</text>')

    if threshold is not None:
        y = to_y(threshold)
        parts.append(f'<line x1="{_MARGIN}" y1="{y:.1f}" x2="{to_x(t_hi):.1f}" '
                     f'y2="{y:.1f}" style="stroke:#999999;stroke-width:1;'
                     f'stroke-dasharray:5,4"/>')
        parts.append(f'<text x="{to_x(t_hi) - 36:.1f}" y="{y - 5:.1f}" '
                     f'style="{_STYLE_TEXT}">{threshold:g}V</text>')

    for k, (label, values) in enumerate(waveforms.items()):
        color = _COLORS[k % len(_COLORS)]
        pts = " ".join(f"{to_x(float(t)):.1f},{to_y(float(v)):.1f}"
                       for t, v in zip(times, values))
        parts.append(f'<polyline points="{pts}" '
                     f'style="fill:none;stroke:{color};stroke-width:2"/>')
        parts.append(f'<text x="{_WIDTH - _MARGIN - 140:.1f}" '
                     f'y="{28 + 16 * k:.1f}" style="{_STYLE_TEXT};'
                     f'fill:{color}">{_escape(label)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def save_waveforms_svg(times, waveforms, path: str,
                       title: str | None = None,
                       threshold: float | None = None) -> str:
    """Render and write to ``path``; returns the path."""
    svg = render_waveforms_svg(times, waveforms, title, threshold)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
    return path


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))
