"""Render routing graphs to SVG — no plotting dependency needed.

Matches the visual conventions of the paper's figures: pins are dots, the
source is a larger filled square, Steiner points are small hollow squares,
and edges added by the non-tree algorithms are highlighted. Wires are
drawn as rectilinear elbows (horizontal then vertical), the shape a
Manhattan router would actually produce.
"""

from __future__ import annotations

from repro.graph.routing_graph import RoutingGraph

_CANVAS = 640.0
_MARGIN = 40.0
_STYLE = {
    "wire": "stroke:#1f3b57;stroke-width:2;fill:none",
    "added": "stroke:#c0392b;stroke-width:2.5;fill:none;stroke-dasharray:7,4",
    "pin": "fill:#1f3b57",
    "source": "fill:#c0392b",
    "steiner": "fill:#ffffff;stroke:#1f3b57;stroke-width:1.5",
    "label": "font-family:sans-serif;font-size:12px;fill:#444444",
}


def render_routing_svg(graph: RoutingGraph,
                       highlight_edges: list[tuple[int, int]] | None = None,
                       title: str | None = None,
                       node_labels: bool = False) -> str:
    """The routing graph as an SVG document string.

    Args:
        graph: the routing to draw.
        highlight_edges: edges to draw in the "added wire" style (e.g.
            ``result.history`` edges from LDRG).
        title: optional caption rendered at the top.
        node_labels: annotate nodes with their indices.
    """
    positions = graph.positions()
    xs = [p.x for p in positions.values()]
    ys = [p.y for p in positions.values()]
    span = max(max(xs) - min(xs), max(ys) - min(ys), 1.0)
    scale = (_CANVAS - 2 * _MARGIN) / span
    x0, y0 = min(xs), min(ys)

    def to_canvas(node: int) -> tuple[float, float]:
        p = positions[node]
        # SVG's y axis points down; flip so the layout reads like a die plot.
        return (_MARGIN + (p.x - x0) * scale,
                _CANVAS - _MARGIN - (p.y - y0) * scale)

    highlighted = {_canonical(e) for e in (highlight_edges or [])}
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_CANVAS:.0f}" '
        f'height="{_CANVAS:.0f}" viewBox="0 0 {_CANVAS:.0f} {_CANVAS:.0f}">',
        f'<rect width="{_CANVAS:.0f}" height="{_CANVAS:.0f}" fill="#fbfaf7"/>',
    ]
    if title:
        parts.append(f'<text x="{_MARGIN}" y="24" style="{_STYLE["label"]}">'
                     f'{_escape(title)}</text>')

    for u, v in graph.edges():
        ux, uy = to_canvas(u)
        vx, vy = to_canvas(v)
        style = _STYLE["added"] if _canonical((u, v)) in highlighted else _STYLE["wire"]
        # Rectilinear elbow: horizontal run from u, then vertical into v.
        parts.append(f'<path d="M {ux:.1f} {uy:.1f} L {vx:.1f} {uy:.1f} '
                     f'L {vx:.1f} {vy:.1f}" style="{style}"/>')

    for node in graph.nodes():
        cx, cy = to_canvas(node)
        if node == graph.source:
            parts.append(f'<rect x="{cx - 6:.1f}" y="{cy - 6:.1f}" width="12" '
                         f'height="12" style="{_STYLE["source"]}"/>')
        elif graph.is_steiner(node):
            parts.append(f'<rect x="{cx - 4:.1f}" y="{cy - 4:.1f}" width="8" '
                         f'height="8" style="{_STYLE["steiner"]}"/>')
        else:
            parts.append(f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="5" '
                         f'style="{_STYLE["pin"]}"/>')
        if node_labels:
            parts.append(f'<text x="{cx + 8:.1f}" y="{cy - 8:.1f}" '
                         f'style="{_STYLE["label"]}">{node}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def save_routing_svg(graph: RoutingGraph, path: str,
                     highlight_edges: list[tuple[int, int]] | None = None,
                     title: str | None = None,
                     node_labels: bool = False) -> str:
    """Render and write the SVG to ``path``; returns the path."""
    svg = render_routing_svg(graph, highlight_edges, title, node_labels)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
    return path


def _canonical(edge: tuple[int, int]) -> tuple[int, int]:
    u, v = edge
    return (u, v) if u < v else (v, u)


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))
