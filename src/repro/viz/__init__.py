"""Pure-Python SVG rendering: routing graphs and transient waveforms."""

from repro.viz.svg import render_routing_svg, save_routing_svg
from repro.viz.waveforms import render_waveforms_svg, save_waveforms_svg

__all__ = [
    "render_routing_svg",
    "render_waveforms_svg",
    "save_routing_svg",
    "save_waveforms_svg",
]
