"""Embed an abstract routing graph as rectilinear grid paths.

Each abstract edge (a pin/Steiner-point pair) becomes an A*-routed cell
path on the grid, detouring around blockages and — with a nonzero
congestion weight — around other wires of the same net embedded earlier.
The result converts back into a bend-accurate
:class:`~repro.graph.routing_graph.RoutingGraph`: every direction change
becomes a (zero-load) Steiner node at the bend's coordinates, so wire
lengths reflect the *real* detoured geometry and every delay model in
the library evaluates the embedded net unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.routing_graph import RoutingGraph, RoutingGraphError
from repro.route.astar import astar_route, path_length
from repro.route.grid import Cell, RoutingGrid

EdgeKey = tuple[int, int]


@dataclass
class EmbeddedRouting:
    """An abstract routing and its grid embedding.

    Attributes:
        abstract: the input routing graph (unmodified).
        grid: the grid routed on (usage updated by the embedding).
        paths: abstract edge → cell path (endpoints included).
    """

    abstract: RoutingGraph
    grid: RoutingGrid
    paths: dict[EdgeKey, list[Cell]] = field(default_factory=dict)

    def embedded_length(self, u: int, v: int) -> float:
        """Wire length of one edge's embedding, pin stubs included."""
        key = (u, v) if u < v else (v, u)
        try:
            path = self.paths[key]
        except KeyError:
            raise RoutingGraphError(f"edge {key} not embedded") from None
        length = path_length(self.grid, path)
        length += self.abstract.position(key[0]).manhattan(
            self.grid.center_of(path[0]))
        length += self.abstract.position(key[1]).manhattan(
            self.grid.center_of(path[-1]))
        return length

    def total_length(self) -> float:
        """Total embedded wirelength (µm)."""
        return sum(self.embedded_length(*edge) for edge in self.paths)

    def detour_factor(self) -> float:
        """Embedded / abstract wirelength — 1.0 means no detours."""
        return self.total_length() / self.abstract.cost()

    def to_routing_graph(self) -> RoutingGraph:
        """The embedding as a bend-accurate routing graph.

        Pins keep their true positions; each path contributes Steiner
        nodes at its bend cells (and at the endpoint cell centers when a
        pin is off-center), chained by axis-aligned wires.
        """
        embedded = RoutingGraph(self.abstract.net)
        node_map: dict[int, int] = {
            pin: pin for pin in range(self.abstract.num_pins)}
        for steiner in sorted(self.abstract.steiner):
            node_map[steiner] = embedded.add_steiner_point(
                self.abstract.position(steiner))
        for (u, v), path in sorted(self.paths.items()):
            chain = [node_map[u]]
            for cell in _bend_cells(path):
                chain.append(embedded.add_steiner_point(
                    self.grid.center_of(cell)))
            chain.append(node_map[v])
            for a, b in zip(chain, chain[1:]):
                if a != b and not embedded.has_edge(a, b):
                    embedded.add_edge(a, b)
        return embedded


def embed_routing(graph: RoutingGraph, grid: RoutingGrid,
                  congestion_weight: float = 0.5,
                  snap_blocked_pins: bool = False) -> EmbeddedRouting:
    """Embed every edge of ``graph`` on ``grid`` with A* maze routing.

    Edges are routed longest-first (long wires have the least slack for
    detours; short ones thread the gaps), each path immediately charged
    to the grid's usage so later paths avoid earlier ones when
    ``congestion_weight > 0``.

    Raises :class:`~repro.route.grid.GridError` when a pin sits on a
    blocked cell (unless ``snap_blocked_pins`` redirects it to the
    nearest free cell — useful for synthetic workloads whose pins were
    placed before the blockage) or when blockages disconnect an edge's
    endpoints.
    """
    if not graph.spans_net():
        raise RoutingGraphError(
            f"routing over net {graph.net.name!r} does not span all pins")
    embedding = EmbeddedRouting(abstract=graph, grid=grid)

    def terminal(node: int):
        cell = grid.cell_of(graph.position(node))
        if snap_blocked_pins and grid.is_blocked(cell):
            cell = grid.nearest_free_cell(cell)
        return cell

    edges = sorted(graph.edges(),
                   key=lambda e: -graph.edge_length(*e))
    for u, v in edges:
        path = astar_route(grid, terminal(u), terminal(v),
                           congestion_weight=congestion_weight)
        key = (u, v) if u < v else (v, u)
        embedding.paths[key] = path
        grid.add_usage(path)
    return embedding


def _bend_cells(path: list[Cell]) -> list[Cell]:
    """Endpoint cells plus every direction-change cell along the path."""
    if len(path) <= 1:
        return list(path)
    kept = [path[0]]
    for previous, current, following in zip(path, path[1:], path[2:]):
        direction_in = (current[0] - previous[0], current[1] - previous[1])
        direction_out = (following[0] - current[0], following[1] - current[1])
        if direction_in != direction_out:
            kept.append(current)
    kept.append(path[-1])
    return kept
