"""The routing grid: a uniform cell lattice with obstacles and usage.

Cells are addressed ``(col, row)``; the grid covers the square layout
region, so a cell's center has plane coordinates
``((col + 0.5)·pitch, (row + 0.5)·pitch)``. Obstacles block cells
entirely (macro blockages); ``usage`` counts wires crossing a cell, which
the router's congestion cost reads so nets spread instead of piling onto
one track.
"""

from __future__ import annotations

from repro.geometry.point import Point

Cell = tuple[int, int]


class GridError(ValueError):
    """Raised for out-of-range cells or unroutable configurations."""


class RoutingGrid:
    """A ``cols × rows`` routing lattice over a square region."""

    def __init__(self, region: float = 10_000.0, pitch: float = 250.0):
        if region <= 0 or pitch <= 0:
            raise GridError("region and pitch must be positive")
        if pitch > region:
            raise GridError("pitch larger than the region")
        self.region = region
        self.pitch = pitch
        self.cols = max(1, round(region / pitch))
        self.rows = self.cols
        self._blocked: set[Cell] = set()
        self._usage: dict[Cell, int] = {}

    # ---------------------------------------------------------- coordinates

    def cell_of(self, point: Point) -> Cell:
        """The cell containing a plane point (clamped to the grid)."""
        col = min(self.cols - 1, max(0, int(point.x / self.pitch)))
        row = min(self.rows - 1, max(0, int(point.y / self.pitch)))
        return (col, row)

    def center_of(self, cell: Cell) -> Point:
        """Plane coordinates of a cell's center."""
        self._check(cell)
        return Point((cell[0] + 0.5) * self.pitch,
                     (cell[1] + 0.5) * self.pitch)

    def in_bounds(self, cell: Cell) -> bool:
        return 0 <= cell[0] < self.cols and 0 <= cell[1] < self.rows

    def neighbors(self, cell: Cell) -> list[Cell]:
        """The 4-connected unblocked neighbors."""
        col, row = cell
        out = []
        for candidate in ((col + 1, row), (col - 1, row),
                          (col, row + 1), (col, row - 1)):
            if self.in_bounds(candidate) and candidate not in self._blocked:
                out.append(candidate)
        return out

    # ------------------------------------------------------------ obstacles

    def block_cell(self, cell: Cell) -> None:
        self._check(cell)
        self._blocked.add(cell)

    def block_rect(self, xmin: float, ymin: float, xmax: float,
                   ymax: float) -> int:
        """Block every cell whose center lies in the rectangle; returns
        how many cells were blocked."""
        if xmin > xmax or ymin > ymax:
            raise GridError("degenerate blockage rectangle")
        count = 0
        for col in range(self.cols):
            for row in range(self.rows):
                center = self.center_of((col, row))
                if xmin <= center.x <= xmax and ymin <= center.y <= ymax:
                    if (col, row) not in self._blocked:
                        self._blocked.add((col, row))
                        count += 1
        return count

    def is_blocked(self, cell: Cell) -> bool:
        self._check(cell)
        return cell in self._blocked

    @property
    def blocked_cells(self) -> set[Cell]:
        return set(self._blocked)

    def blockage_fraction(self) -> float:
        return len(self._blocked) / (self.cols * self.rows)

    # ---------------------------------------------------------------- usage

    def usage(self, cell: Cell) -> int:
        self._check(cell)
        return self._usage.get(cell, 0)

    def add_usage(self, cells) -> None:
        for cell in cells:
            self._check(cell)
            self._usage[cell] = self._usage.get(cell, 0) + 1

    def max_usage(self) -> int:
        return max(self._usage.values(), default=0)

    def total_overflow(self, capacity: int = 1) -> int:
        """Σ max(0, usage − capacity): the classic congestion metric."""
        if capacity < 1:
            raise GridError("capacity must be >= 1")
        return sum(max(0, used - capacity) for used in self._usage.values())

    def clear_usage(self) -> None:
        self._usage.clear()

    def nearest_free_cell(self, cell: Cell) -> Cell:
        """The closest unblocked cell to ``cell`` (itself if free).

        Breadth-first ring search; ties break deterministically by cell
        order. Raises :class:`GridError` when the whole grid is blocked.
        """
        self._check(cell)
        if cell not in self._blocked:
            return cell
        seen = {cell}
        ring = [cell]
        while ring:
            next_ring: list[Cell] = []
            for current in ring:
                col, row = current
                for candidate in sorted(((col + 1, row), (col - 1, row),
                                         (col, row + 1), (col, row - 1))):
                    if not self.in_bounds(candidate) or candidate in seen:
                        continue
                    if candidate not in self._blocked:
                        return candidate
                    seen.add(candidate)
                    next_ring.append(candidate)
            ring = next_ring
        raise GridError("every cell of the grid is blocked")

    def _check(self, cell: Cell) -> None:
        if not self.in_bounds(cell):
            raise GridError(f"cell {cell} outside the "
                            f"{self.cols}x{self.rows} grid")

    def __repr__(self) -> str:
        return (f"RoutingGrid({self.cols}x{self.rows}, pitch={self.pitch}, "
                f"{len(self._blocked)} blocked)")
