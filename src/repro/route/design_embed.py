"""Embed all nets of a placed design on one shared routing grid.

The single-net embedding of :mod:`repro.route.embed` generalizes to the
chip-level question: route *every* net of a design through the same grid,
sharing congestion, then re-run timing on the bend-accurate geometry.
This closes the loop between the three substrates — placement/timing
(`repro.timing`), topology optimization (`repro.core`), and detailed
routing (`repro.route`) — into the flow a physical-design tool actually
executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph
from repro.route.embed import embed_routing
from repro.route.grid import RoutingGrid
from repro.timing.design import Design


@dataclass
class DesignEmbedding:
    """All nets of a design embedded on one grid.

    Attributes:
        grid: the shared grid (usage reflects every net).
        embedded: net name → bend-accurate routing graph.
        abstract_length: total abstract wirelength (µm).
        embedded_length: total embedded wirelength (µm).
    """

    grid: RoutingGrid
    embedded: dict[str, RoutingGraph] = field(default_factory=dict)
    abstract_length: float = 0.0
    embedded_length: float = 0.0

    @property
    def detour_factor(self) -> float:
        return (self.embedded_length / self.abstract_length
                if self.abstract_length else 1.0)

    def congestion_overflow(self, capacity: int = 2) -> int:
        """Cells used beyond ``capacity`` wires, summed (0 = legal)."""
        return self.grid.total_overflow(capacity=capacity)


def embed_design(design: Design,
                 grid: RoutingGrid,
                 router: Callable[[Net], RoutingGraph] = prim_mst,
                 routings: dict[str, RoutingGraph] | None = None,
                 congestion_weight: float = 0.5) -> DesignEmbedding:
    """Route and embed every net of ``design`` on the shared ``grid``.

    Args:
        design: the placed design.
        grid: the grid to embed on (obstacles pre-applied by the caller).
        router: topology generator for nets without a pre-built routing.
        routings: optional pre-optimized topologies by net name (e.g. the
            output of the timing-driven flow).
        congestion_weight: A* usage penalty — nonzero makes later nets
            avoid earlier ones.

    Nets are embedded in decreasing abstract-wirelength order (long nets
    are the least flexible). The returned per-net graphs plug directly
    into :func:`repro.timing.sta.analyze` via its ``routings`` argument.
    """
    design.validate()
    pre_routed = dict(routings) if routings else {}
    embedding = DesignEmbedding(grid=grid)

    abstract: dict[str, RoutingGraph] = {}
    for net_name in design.nets:
        graph = pre_routed.get(net_name)
        if graph is None:
            graph = router(design.geometry_of(net_name))
        abstract[net_name] = graph

    order = sorted(abstract, key=lambda name: -abstract[name].cost())
    for net_name in order:
        graph = abstract[net_name]
        net_embedding = embed_routing(graph, grid,
                                      congestion_weight=congestion_weight,
                                      snap_blocked_pins=True)
        embedding.embedded[net_name] = net_embedding.to_routing_graph()
        embedding.abstract_length += graph.cost()
        embedding.embedded_length += net_embedding.total_length()
    return embedding
