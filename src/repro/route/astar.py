"""A* rectilinear maze routing on the grid.

Classic Lee/maze routing accelerated with A*'s admissible Manhattan
heuristic, in the lineage of the timing-driven router the paper cites
[17]. The path cost per cell step is the grid pitch plus an optional
congestion penalty proportional to the cell's current usage, so batch
embedding spreads nets instead of stacking them.
"""

from __future__ import annotations

import heapq

from repro.route.grid import Cell, GridError, RoutingGrid


def astar_route(grid: RoutingGrid, start: Cell, goal: Cell,
                congestion_weight: float = 0.0) -> list[Cell]:
    """The cheapest unblocked 4-connected path from ``start`` to ``goal``.

    Args:
        grid: the routing grid (obstacles + usage).
        start, goal: endpoint cells (must be unblocked).
        congestion_weight: extra cost, in units of pitch, per unit of
            existing usage on an entered cell; 0 = pure shortest path.

    Returns:
        The cell path including both endpoints.

    Raises:
        GridError: endpoints blocked/out of range, or no path exists.
    """
    for label, cell in (("start", start), ("goal", goal)):
        if not grid.in_bounds(cell):
            raise GridError(f"{label} cell {cell} outside the grid")
        if grid.is_blocked(cell):
            raise GridError(f"{label} cell {cell} is blocked")
    if congestion_weight < 0:
        raise GridError("congestion_weight must be non-negative")
    if start == goal:
        return [start]

    pitch = grid.pitch

    def heuristic(cell: Cell) -> float:
        return pitch * (abs(cell[0] - goal[0]) + abs(cell[1] - goal[1]))

    best_g: dict[Cell, float] = {start: 0.0}
    parent: dict[Cell, Cell] = {}
    # Tie-break on insertion order keeps the search deterministic.
    frontier: list[tuple[float, int, Cell]] = [(heuristic(start), 0, start)]
    pushes = 0
    closed: set[Cell] = set()
    while frontier:
        _, _, cell = heapq.heappop(frontier)
        if cell in closed:
            continue
        if cell == goal:
            return _reconstruct(parent, goal)
        closed.add(cell)
        for neighbor in grid.neighbors(cell):
            step = pitch * (1.0 + congestion_weight * grid.usage(neighbor))
            candidate = best_g[cell] + step
            if candidate < best_g.get(neighbor, float("inf")):
                best_g[neighbor] = candidate
                parent[neighbor] = cell
                pushes += 1
                heapq.heappush(frontier,
                               (candidate + heuristic(neighbor), pushes,
                                neighbor))
    raise GridError(f"no route from {start} to {goal}: "
                    f"blockages disconnect the endpoints")


def path_length(grid: RoutingGrid, path: list[Cell]) -> float:
    """Wire length of a cell path (µm): one pitch per step."""
    return grid.pitch * (len(path) - 1)


def _reconstruct(parent: dict[Cell, Cell], goal: Cell) -> list[Cell]:
    path = [goal]
    while path[-1] in parent:
        path.append(parent[path[-1]])
    path.reverse()
    return path
