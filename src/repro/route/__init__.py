"""Detailed routing substrate: grids, obstacles, A* maze search, embedding.

The paper's routing graphs are *abstract*: an edge is a pin pair whose
wire is assumed to run at Manhattan length. Real layouts embed each wire
as a rectilinear path on a routing grid, detouring around blocked
regions (macros, pre-routes). This package supplies that layer — in the
lineage of the A*-based timing-driven router of Prastjutrakul & Kubitz,
which the paper cites [17]:

* :mod:`repro.route.grid`  — the routing grid: cells, obstacles, usage;
* :mod:`repro.route.astar` — A* rectilinear path search (admissible
  Manhattan heuristic, congestion-aware cost);
* :mod:`repro.route.embed` — embed a whole routing graph, wire by wire,
  producing a bend-accurate :class:`~repro.graph.routing_graph.RoutingGraph`
  that every delay model in the library accepts unchanged.
"""

from repro.route.grid import GridError, RoutingGrid
from repro.route.astar import astar_route
from repro.route.embed import EmbeddedRouting, embed_routing
from repro.route.design_embed import DesignEmbedding, embed_design

__all__ = [
    "DesignEmbedding",
    "EmbeddedRouting",
    "GridError",
    "RoutingGrid",
    "astar_route",
    "embed_design",
    "embed_routing",
]
