"""Points in the Manhattan plane.

The paper routes nets whose pins live in the Manhattan (rectilinear) plane:
the cost of an edge is the L1 distance between its endpoints, because a
rectilinear wire between two pins has exactly that length regardless of how
it is bent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True)
class Point:
    """An immutable point ``(x, y)`` in the Manhattan plane (µm)."""

    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        """L1 (rectilinear wirelength) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean(self, other: "Point") -> float:
        """L2 distance to ``other`` (used only for diagnostics/plots)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """The geometric midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def manhattan(a: Point, b: Point) -> float:
    """L1 distance between two points (module-level convenience)."""
    return a.manhattan(b)


def euclidean(a: Point, b: Point) -> float:
    """L2 distance between two points (module-level convenience)."""
    return a.euclidean(b)
