"""Bounding boxes and the Hanan grid.

Hanan's theorem: some optimal rectilinear Steiner tree uses only Steiner
points at intersections of horizontal and vertical lines through the pins
(the *Hanan grid*). The Iterated 1-Steiner implementation in
:mod:`repro.graph.steiner` draws its candidate Steiner points from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geometry.point import Point


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[xmin, xmax] × [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError("degenerate bounding box: min exceeds max")

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def half_perimeter(self) -> float:
        """Half-perimeter wirelength (HPWL), the classic net-length lower bound."""
        return self.width + self.height

    def contains(self, p: Point) -> bool:
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def corners(self) -> tuple[Point, Point, Point, Point]:
        return (Point(self.xmin, self.ymin), Point(self.xmax, self.ymin),
                Point(self.xmax, self.ymax), Point(self.xmin, self.ymax))


def bounding_box(points: Iterable[Point]) -> BoundingBox:
    """The smallest axis-aligned box containing ``points``."""
    pts = list(points)
    if not pts:
        raise ValueError("bounding_box of an empty point set")
    return BoundingBox(
        xmin=min(p.x for p in pts), ymin=min(p.y for p in pts),
        xmax=max(p.x for p in pts), ymax=max(p.y for p in pts),
    )


def hanan_points(pins: Sequence[Point], exclude_pins: bool = True) -> list[Point]:
    """Hanan grid points of ``pins``: all (xᵢ, yⱼ) pairs.

    With ``exclude_pins`` (the default) the pins themselves are dropped, so
    the result is exactly the candidate Steiner-point set.
    """
    if not pins:
        return []
    xs = sorted({p.x for p in pins})
    ys = sorted({p.y for p in pins})
    pin_set = set(pins) if exclude_pins else frozenset()
    grid = [Point(x, y) for x in xs for y in ys]
    return [p for p in grid if p not in pin_set]
