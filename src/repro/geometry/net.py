"""Signal nets: a source pin plus one or more sink pins.

A signal net ``N = {n0, n1, ..., nk}`` is a fixed set of pins in the
Manhattan plane; ``n0`` is the source (where the signal originates) and the
remaining pins are sinks. Pins are addressed by index throughout the
library: index 0 is always the source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.geometry.point import Point

#: Side length of the paper's layout region: 10² mm² → 10 000 µm square.
DEFAULT_REGION_UM = 10_000.0


@dataclass(frozen=True)
class Net:
    """An immutable signal net.

    Attributes:
        source: the source pin ``n0``.
        sinks: the sink pins ``n1..nk`` in index order.
        name: optional human-readable label used in reports and SPICE decks.
    """

    source: Point
    sinks: tuple[Point, ...]
    name: str = field(default="net", compare=False)

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError("a net needs at least one sink")
        if not isinstance(self.sinks, tuple):
            object.__setattr__(self, "sinks", tuple(self.sinks))
        seen = set()
        for pin in self.pins:
            if pin in seen:
                raise ValueError(f"duplicate pin {pin} in net {self.name!r}")
            seen.add(pin)

    @property
    def pins(self) -> tuple[Point, ...]:
        """All pins, source first — index ``i`` here is pin index ``n_i``."""
        return (self.source,) + self.sinks

    @property
    def num_pins(self) -> int:
        """Total pin count ``k + 1`` (source plus sinks)."""
        return 1 + len(self.sinks)

    @property
    def num_sinks(self) -> int:
        """Sink count ``k``."""
        return len(self.sinks)

    def sink_indices(self) -> range:
        """Pin indices of the sinks (``1..k``)."""
        return range(1, self.num_pins)

    @classmethod
    def from_points(cls, points: Sequence[Point | tuple[float, float]],
                    name: str = "net") -> "Net":
        """Build a net from a point sequence; the first point is the source."""
        pts = [p if isinstance(p, Point) else Point(*p) for p in points]
        if len(pts) < 2:
            raise ValueError("a net needs a source and at least one sink")
        return cls(source=pts[0], sinks=tuple(pts[1:]), name=name)

    @classmethod
    def random(cls, num_pins: int, seed: int | None = None,
               region: float = DEFAULT_REGION_UM, name: str | None = None) -> "Net":
        """A random net with pins uniform in a ``region`` × ``region`` square.

        This is the workload of the paper's evaluation (Section 4): "pin
        locations were randomly chosen from a uniform distribution in a
        square layout region".
        """
        from repro.geometry.random_nets import random_net

        return random_net(num_pins, seed=seed, region=region, name=name)

    def renamed(self, name: str) -> "Net":
        """A copy of this net with a different label."""
        return Net(source=self.source, sinks=self.sinks, name=name)

    def __len__(self) -> int:
        return self.num_pins

    def __iter__(self) -> Iterable[Point]:
        return iter(self.pins)
