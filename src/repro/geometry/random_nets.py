"""Seeded random net generation matching the paper's workload.

Section 4 of the paper: "We have run trials on sets of 50 nets for each of
several net sizes; pin locations were randomly chosen from a uniform
distribution in a square layout region." Seeding the generator makes every
experiment in this repository reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.geometry.net import DEFAULT_REGION_UM, Net
from repro.geometry.point import Point


def random_net(num_pins: int, seed: int | None = None,
               region: float = DEFAULT_REGION_UM,
               name: str | None = None) -> Net:
    """One random net of ``num_pins`` pins uniform in a square of side ``region``.

    The first drawn pin is the source. Coordinates are drawn continuously;
    the chance of a duplicate pin is negligible, but duplicates are re-drawn
    to keep :class:`~repro.geometry.net.Net` validation happy.
    """
    if num_pins < 2:
        raise ValueError("num_pins must be >= 2 (a source and a sink)")
    if region <= 0:
        raise ValueError("region side length must be positive")
    rng = np.random.default_rng(seed)
    points: list[Point] = []
    taken: set[Point] = set()
    while len(points) < num_pins:
        x, y = rng.uniform(0.0, region, size=2)
        pin = Point(float(x), float(y))
        if pin in taken:
            continue
        taken.add(pin)
        points.append(pin)
    label = name if name is not None else f"rand{num_pins}_s{seed}"
    return Net(source=points[0], sinks=tuple(points[1:]), name=label)


def random_nets(num_pins: int, count: int, seed: int = 0,
                region: float = DEFAULT_REGION_UM) -> Iterator[Net]:
    """A reproducible stream of ``count`` random nets.

    Net ``i`` of a given ``(num_pins, seed)`` pair is always the same net:
    each trial net derives its own seed from the master seed, so changing
    ``count`` does not reshuffle earlier nets.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    for index in range(count):
        trial_seed = _trial_seed(seed, num_pins, index)
        yield random_net(num_pins, seed=trial_seed, region=region,
                         name=f"rand{num_pins}_t{index}")


def _trial_seed(master_seed: int, num_pins: int, index: int) -> int:
    """Stable per-trial seed derived from (master seed, net size, trial index)."""
    return int(np.random.SeedSequence([master_seed, num_pins, index])
               .generate_state(1)[0])
