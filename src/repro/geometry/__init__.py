"""Geometric substrate: pins, nets, Manhattan metric, Hanan grid.

All coordinates are in **microns** (µm), matching the per-µm interconnect
parameters of Table 1 in the paper. The paper's layout region is 10² mm²,
i.e. a 10 000 µm × 10 000 µm square.
"""

from repro.geometry.point import Point, manhattan, euclidean
from repro.geometry.net import Net, DEFAULT_REGION_UM
from repro.geometry.random_nets import random_net, random_nets
from repro.geometry.hanan import BoundingBox, bounding_box, hanan_points

__all__ = [
    "BoundingBox",
    "DEFAULT_REGION_UM",
    "Net",
    "Point",
    "bounding_box",
    "euclidean",
    "hanan_points",
    "manhattan",
    "random_net",
    "random_nets",
]
