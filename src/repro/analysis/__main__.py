"""``python -m repro.analysis`` — lint the source tree.

Runs the AST discipline rules of :mod:`repro.analysis.source_rules`
and/or the whole-program determinism pass of
:mod:`repro.analysis.dataflow` over the given files/directories
(default: ``src/repro``) and exits non-zero when any error-severity
diagnostic is found. This is the code-side twin of ``repro-route
lint``, which runs the same framework over routing data.

Examples::

    python -m repro.analysis src/repro
    python -m repro.analysis --pass dataflow src/repro
    python -m repro.analysis --pass interlock src/repro
    python -m repro.analysis --pass all --format sarif src/repro
    python -m repro.analysis src --ignore source-mutable-default
    python -m repro.analysis --select dataflow-unseeded-rng src/repro
    python -m repro.analysis --list-rules
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Importing the dataflow/contracts/interlock engines registers their
# rules, so --list-rules / --select / --ignore see the full catalog.
from repro.analysis.contracts.engine import analyze_contracts
from repro.analysis.dataflow.engine import analyze_dataflow
from repro.analysis.diagnostics import LintConfig, has_errors, registry
from repro.analysis.interlock.engine import analyze_interlock
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.source_rules import lint_source_tree

#: The analyses ``--pass`` can name.
PASSES = ("source", "dataflow", "contracts", "interlock", "all")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static source lint for the repro routing library")
    parser.add_argument("paths", nargs="*", type=Path,
                        default=[Path("src/repro")],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--pass", dest="lint_pass", choices=PASSES,
                        default="source",
                        help="which analysis to run: per-file AST rules "
                             "(source), the whole-program determinism & "
                             "concurrency analyzer (dataflow), the "
                             "exception-contract & resource-lifecycle "
                             "analyzer (contracts), the thread/lock/"
                             "signal & durability-ordering analyzer "
                             "(interlock), or everything (all); "
                             "default: source")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--select", action="append", default=[],
                        metavar="RULE",
                        help="run only these rule ids (repeatable); "
                             "all other rules are disabled")
    parser.add_argument("--ignore", "--disable", action="append",
                        default=[], dest="ignore", metavar="RULE",
                        help="disable a rule id (repeatable)")
    parser.add_argument("--severity", action="append", default=[],
                        metavar="RULE=LEVEL",
                        help="override a rule's severity (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def list_rules() -> str:
    """The catalog: id, severity, pass (category), one-line summary."""
    lines = []
    for rule in registry.rules():  # sorted by id
        lines.append(f"{rule.id:36s} {rule.severity!s:8s} "
                     f"[{rule.category}] {rule.summary}")
    return "\n".join(lines)


def build_config(select: list[str], ignore: list[str],
                 severity: list[str]) -> LintConfig:
    """A :class:`LintConfig` from ``--select``/``--ignore``/``--severity``.

    ``--select`` keeps only the named rules (every other rule is
    disabled); ``--ignore`` disables rules on top of that. Unknown rule
    ids raise ``ValueError`` so typos fail loudly.
    """
    disabled = set(ignore)
    if select:
        for rule_id in select:
            if rule_id not in registry:
                raise ValueError(f"cannot select unknown rule {rule_id!r}")
        disabled |= {rule.id for rule in registry
                     if rule.id not in set(select)}
    return LintConfig.from_options(disable=sorted(disabled),
                                   severity=severity)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    try:
        config = build_config(args.select, args.ignore, args.severity)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): "
              f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2
    diagnostics = []
    if args.lint_pass in ("source", "all"):
        diagnostics.extend(lint_source_tree(args.paths, config))
    if args.lint_pass in ("dataflow", "all"):
        diagnostics.extend(analyze_dataflow(args.paths, config))
    if args.lint_pass in ("contracts", "all"):
        diagnostics.extend(analyze_contracts(args.paths, config))
    if args.lint_pass in ("interlock", "all"):
        diagnostics.extend(analyze_interlock(args.paths, config))
    render = {"json": render_json, "sarif": render_sarif,
              "text": render_text}[args.format]
    print(render(diagnostics))
    return 1 if has_errors(diagnostics) else 0


if __name__ == "__main__":
    raise SystemExit(main())
