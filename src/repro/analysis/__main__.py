"""``python -m repro.analysis`` — lint the source tree.

Runs the AST discipline rules of :mod:`repro.analysis.source_rules`
over the given files/directories (default: ``src/repro``) and exits
non-zero when any error-severity diagnostic is found. This is the
code-side twin of ``repro-route lint``, which runs the same framework
over routing data.

Examples::

    python -m repro.analysis src/repro
    python -m repro.analysis src/repro --format json
    python -m repro.analysis src --disable source-mutable-default
    python -m repro.analysis --list-rules
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.diagnostics import LintConfig, has_errors, registry
from repro.analysis.reporters import render_json, render_text
from repro.analysis.source_rules import lint_source_tree


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static source lint for the repro routing library")
    parser.add_argument("paths", nargs="*", type=Path,
                        default=[Path("src/repro")],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE", help="disable a rule id (repeatable)")
    parser.add_argument("--severity", action="append", default=[],
                        metavar="RULE=LEVEL",
                        help="override a rule's severity (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def list_rules() -> str:
    lines = []
    for rule in registry.rules():
        lines.append(f"{rule.id:32s} {rule.severity!s:8s} "
                     f"[{rule.category}] {rule.summary}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    try:
        config = LintConfig.from_options(disable=args.disable,
                                         severity=args.severity)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): "
              f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2
    diagnostics = lint_source_tree(args.paths, config)
    render = render_json if args.format == "json" else render_text
    print(render(diagnostics))
    return 1 if has_errors(diagnostics) else 0


if __name__ == "__main__":
    raise SystemExit(main())
