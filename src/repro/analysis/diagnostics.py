"""The diagnostic framework: records, rules, registry, configuration.

Every lint pass in :mod:`repro.analysis` is a collection of
:class:`Rule` objects held in one :class:`RuleRegistry`. A rule's check
function receives a subject (a routing graph, a circuit, a parsed source
file) and yields :class:`Diagnostic` records; the registry filters
disabled rules and applies per-rule severity overrides from a
:class:`LintConfig` so callers never special-case individual rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Iterator, Mapping


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering is by increasing gravity."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse ``"error"``/``"warning"``/``"info"`` (case-insensitive)."""
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{', '.join(s.name.lower() for s in cls)}") from None


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points: a file position and/or a named object.

    ``obj`` is a human-readable anchor inside the subject — a net name,
    an edge ``(u, v)``, a circuit element — used when there is no
    meaningful file/line (data lint) or to narrow one (source lint).
    """

    file: str | None = None
    line: int | None = None
    obj: str | None = None

    def __str__(self) -> str:
        parts: list[str] = []
        if self.file is not None:
            parts.append(self.file if self.line is None
                         else f"{self.file}:{self.line}")
        if self.obj is not None:
            parts.append(self.obj)
        return ": ".join(parts)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule id, severity, location, message, and a fix hint."""

    rule: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    hint: str | None = None

    def render(self) -> str:
        """One-line human-readable form, ``location: severity[rule] message``."""
        where = str(self.location)
        prefix = f"{where}: " if where else ""
        text = f"{prefix}{self.severity}[{self.rule}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by the ``--format json`` reporters)."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "file": self.location.file,
            "line": self.location.line,
            "object": self.location.obj,
            "hint": self.hint,
        }


CheckFn = Callable[[Any], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule.

    Attributes:
        id: stable kebab-case identifier (``graph-disconnected``).
        category: which pass owns the rule (``graph``/``circuit``/``source``).
        severity: default severity, overridable per run via `LintConfig`.
        summary: one-line description for ``--list-rules`` and the docs.
        rationale: why violating this rule corrupts results.
        check: the function producing diagnostics for one subject.
    """

    id: str
    category: str
    severity: Severity
    summary: str
    rationale: str
    check: CheckFn

    def diagnostic(self, message: str, *, location: Location | None = None,
                   hint: str | None = None) -> Diagnostic:
        """Build a diagnostic carrying this rule's id and default severity."""
        return Diagnostic(rule=self.id, severity=self.severity,
                          message=message,
                          location=location or Location(), hint=hint)


class RuleRegistry:
    """All known rules, addressable by id and filterable by category."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"unknown rule {rule_id!r}") from None

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def rules(self, category: str | None = None) -> list[Rule]:
        """All rules (of one category), sorted by id."""
        return sorted(
            (r for r in self._rules.values()
             if category is None or r.category == category),
            key=lambda r: r.id)

    def run(self, category: str, subject: Any,
            config: "LintConfig | None" = None) -> list[Diagnostic]:
        """Run every enabled rule of ``category`` against ``subject``.

        Diagnostics come back sorted most-severe first, then by rule id,
        with each rule's severity replaced by the config's override (if
        any).
        """
        cfg = config or LintConfig()
        out: list[Diagnostic] = []
        for rule in self.rules(category):
            if not cfg.enabled(rule.id):
                continue
            severity = cfg.severity_for(rule)
            for diag in rule.check(subject):
                if diag.severity != severity:
                    diag = replace(diag, severity=severity)
                out.append(diag)
        sort_diagnostics(out)
        return out


def sort_diagnostics(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Sort in place into report order: gravest first, then rule, place."""
    diagnostics.sort(key=lambda d: (-int(d.severity), d.rule,
                                    d.location.file or "",
                                    d.location.line or 0,
                                    d.location.obj or "", d.message))
    return diagnostics


#: The process-wide default registry; the rule modules populate it on import.
registry = RuleRegistry()


def rule(rule_id: str, *, category: str, severity: Severity, summary: str,
         rationale: str) -> Callable[[CheckFn], Rule]:
    """Decorator registering a check function as a :class:`Rule`.

    The decorated function is replaced by the rule object, whose
    ``check`` attribute is the original function and which is itself
    callable through ``rule.check(subject)``.
    """
    def decorate(fn: CheckFn) -> Rule:
        return registry.register(Rule(
            id=rule_id, category=category, severity=severity,
            summary=summary, rationale=rationale, check=fn))
    return decorate


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule configuration: disabled rules and severity overrides."""

    disabled: frozenset[str] = frozenset()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)

    def enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disabled

    def severity_for(self, rule: Rule) -> Severity:
        return self.severity_overrides.get(rule.id, rule.severity)

    @classmethod
    def from_options(cls, disable: Iterable[str] = (),
                     severity: Iterable[str] = ()) -> "LintConfig":
        """Build from CLI-style options.

        ``disable`` is rule ids; ``severity`` is ``rule=level`` strings.
        Unknown rule ids raise ``ValueError`` so typos fail loudly.
        """
        disabled = frozenset(disable)
        for rule_id in disabled:
            if rule_id not in registry:
                raise ValueError(f"cannot disable unknown rule {rule_id!r}")
        overrides: dict[str, Severity] = {}
        for spec in severity:
            rule_id, _, level = spec.partition("=")
            if not level:
                raise ValueError(
                    f"bad severity override {spec!r}; expected rule=level")
            if rule_id not in registry:
                raise ValueError(f"cannot override unknown rule {rule_id!r}")
            overrides[rule_id] = Severity.parse(level)
        return cls(disabled=disabled, severity_overrides=overrides)


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """Whether any diagnostic is :attr:`Severity.ERROR`."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def max_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    """The gravest severity present, or ``None`` for a clean run."""
    severities = [d.severity for d in diagnostics]
    return max(severities) if severities else None
