"""Render diagnostics as text or JSON.

Shared by ``repro-route lint`` (data linting) and
``python -m repro.analysis`` (source linting), so both tools speak the
same output format and the CI gate can parse either.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic, Severity


def summarize(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    """Counts per severity, e.g. ``{"error": 1, "warning": 2, "info": 0}``."""
    counts = {str(severity): 0 for severity in Severity}
    for diag in diagnostics:
        counts[str(diag.severity)] += 1
    return counts


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """Human-readable report: one line per diagnostic plus a summary line."""
    diags = list(diagnostics)
    lines = [diag.render() for diag in diags]
    counts = summarize(diags)
    if diags:
        lines.append(f"{len(diags)} diagnostic(s): "
                     f"{counts['error']} error(s), "
                     f"{counts['warning']} warning(s), "
                     f"{counts['info']} info")
    else:
        lines.append("clean: no diagnostics")
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """Machine-readable report with a ``summary`` and a ``diagnostics`` list."""
    diags = list(diagnostics)
    return json.dumps({
        "summary": summarize(diags),
        "diagnostics": [diag.to_dict() for diag in diags],
    }, indent=2)
