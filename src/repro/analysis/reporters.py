"""Render diagnostics as text, JSON, or SARIF.

Shared by ``repro-route lint`` (data linting) and
``python -m repro.analysis`` (source linting), so both tools speak the
same output format and the CI gate can parse either. The SARIF renderer
targets SARIF 2.1.0 so CI can upload reports to code-scanning UIs that
annotate diagnostics onto pull-request diffs.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic, Severity, registry


def summarize(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    """Counts per severity, e.g. ``{"error": 1, "warning": 2, "info": 0}``."""
    counts = {str(severity): 0 for severity in Severity}
    for diag in diagnostics:
        counts[str(diag.severity)] += 1
    return counts


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """Human-readable report: one line per diagnostic plus a summary line."""
    diags = list(diagnostics)
    lines = [diag.render() for diag in diags]
    counts = summarize(diags)
    if diags:
        lines.append(f"{len(diags)} diagnostic(s): "
                     f"{counts['error']} error(s), "
                     f"{counts['warning']} warning(s), "
                     f"{counts['info']} info")
    else:
        lines.append("clean: no diagnostics")
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """Machine-readable report with a ``summary`` and a ``diagnostics`` list."""
    diags = list(diagnostics)
    return json.dumps({
        "summary": summarize(diags),
        "diagnostics": [diag.to_dict() for diag in diags],
    }, indent=2)


#: Diagnostic severity → SARIF result level.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def render_sarif(diagnostics: Iterable[Diagnostic],
                 tool_name: str = "repro.analysis") -> str:
    """SARIF 2.1.0 report.

    ``tool.driver.rules`` carries one reporting descriptor per rule id
    that appears in the results, with summary/rationale pulled from the
    registry when the rule is registered there (ad-hoc ids like
    ``nets-malformed`` get a minimal descriptor). Results reference
    their descriptor by ``ruleIndex``.
    """
    diags = list(diagnostics)
    rule_ids = sorted({d.rule for d in diags})
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}

    descriptors = []
    for rule_id in rule_ids:
        descriptor: dict[str, object] = {"id": rule_id}
        if rule_id in registry:
            rule = registry.get(rule_id)
            descriptor["shortDescription"] = {"text": rule.summary}
            descriptor["fullDescription"] = {"text": rule.rationale}
            descriptor["defaultConfiguration"] = {
                "level": _SARIF_LEVELS[rule.severity]}
            descriptor["properties"] = {"category": rule.category}
        descriptors.append(descriptor)

    results = []
    for diag in diags:
        message = diag.message
        if diag.hint:
            message += f" (hint: {diag.hint})"
        result: dict[str, object] = {
            "ruleId": diag.rule,
            "ruleIndex": rule_index[diag.rule],
            "level": _SARIF_LEVELS[diag.severity],
            "message": {"text": message},
        }
        if diag.location.file is not None:
            physical: dict[str, object] = {
                "artifactLocation": {"uri": diag.location.file}}
            if diag.location.line is not None:
                physical["region"] = {"startLine": diag.location.line}
            location: dict[str, object] = {"physicalLocation": physical}
            if diag.location.obj is not None:
                location["logicalLocations"] = [
                    {"fullyQualifiedName": diag.location.obj}]
            result["locations"] = [location]
        results.append(result)

    return json.dumps({
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "rules": descriptors,
            }},
            "results": results,
        }],
    }, indent=2)
