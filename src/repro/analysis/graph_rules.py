"""Structural lint rules over routing graphs.

These generalize :mod:`repro.graph.validation` to the non-tree graphs the
paper is about: a routing graph is allowed to have cycles, but it must
still span its net from the source, keep its Steiner points useful, and
stay inside the geometry the net defines. Each rule inspects one
:class:`~repro.graph.routing_graph.RoutingGraph` and yields
:class:`~repro.analysis.diagnostics.Diagnostic` records.

Run them all through :func:`lint_graph`.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.analysis.diagnostics import (
    Diagnostic,
    LintConfig,
    Location,
    Severity,
    registry,
    rule,
)
from repro.graph.routing_graph import RoutingGraph

#: Edge lengths below this (µm) count as zero — coincident endpoints.
ZERO_LENGTH_TOL = 1e-9

#: Slack (µm) allowed outside the pin bounding box before a node is "out".
BBOX_TOL = 1e-6

#: Relative tolerance when comparing an edge against an alternative path.
REDUNDANT_REL_TOL = 1e-9


def _net_location(graph: RoutingGraph, obj: str | None = None) -> Location:
    anchor = f"net {graph.net.name!r}"
    return Location(obj=f"{anchor}: {obj}" if obj else anchor)


@rule("graph-disconnected", category="graph", severity=Severity.ERROR,
      summary="some node is unreachable from the source",
      rationale="delay is only defined over the component driven by the "
                "source; an unreachable node means the routing is broken "
                "or the file is corrupt")
def check_disconnected(graph: RoutingGraph) -> Iterator[Diagnostic]:
    reachable = graph.reachable_from()
    unreachable = sorted(set(graph.nodes()) - reachable)
    if unreachable:
        r = registry.get("graph-disconnected")
        yield r.diagnostic(
            f"{len(unreachable)} of {graph.num_nodes} nodes unreachable "
            f"from the source (nodes {unreachable[:8]}"
            f"{'...' if len(unreachable) > 8 else ''})",
            location=_net_location(graph),
            hint="every node must be wired into the source's component")


@rule("graph-nonspanning", category="graph", severity=Severity.ERROR,
      summary="some net pin is unreachable from the source",
      rationale="a routing must span its net; a floating pin receives no "
                "signal and its delay would be infinite, yet tree-delay "
                "code may silently report a number for the rest")
def check_nonspanning(graph: RoutingGraph) -> Iterator[Diagnostic]:
    reachable = graph.reachable_from()
    missing = [pin for pin in range(graph.num_pins) if pin not in reachable]
    if missing:
        r = registry.get("graph-nonspanning")
        yield r.diagnostic(
            f"pins {missing} are not reachable from the source",
            location=_net_location(graph),
            hint="add edges connecting every pin to the source component")


@rule("graph-dangling-steiner", category="graph", severity=Severity.WARNING,
      summary="a Steiner point has degree < 2",
      rationale="a degree-0/1 Steiner point contributes capacitance (and "
                "wirelength) without joining wires, so it only slows the "
                "net down; well-formed outputs never contain one")
def check_dangling_steiner(graph: RoutingGraph) -> Iterator[Diagnostic]:
    r = registry.get("graph-dangling-steiner")
    for node in sorted(graph.steiner):
        degree = graph.degree(node)
        if degree < 2:
            yield r.diagnostic(
                f"Steiner point {node} at {graph.position(node).as_tuple()} "
                f"has degree {degree}",
                location=_net_location(graph, f"node {node}"),
                hint="remove the point or wire it into at least two edges")


@rule("graph-zero-length-edge", category="graph", severity=Severity.WARNING,
      summary="an edge has (near-)zero Manhattan length",
      rationale="zero-length wires have zero resistance and capacitance, "
                "degenerate the RC discretization into pseudo-shorts, and "
                "usually indicate a Steiner point stacked on a pin")
def check_zero_length_edge(graph: RoutingGraph) -> Iterator[Diagnostic]:
    r = registry.get("graph-zero-length-edge")
    for (u, v), length in sorted(graph.edge_lengths().items()):
        if length <= ZERO_LENGTH_TOL:
            yield r.diagnostic(
                f"edge ({u}, {v}) has length {length:g} um",
                location=_net_location(graph, f"edge ({u}, {v})"),
                hint="merge the coincident endpoints into one node")


@rule("graph-coincident-nodes", category="graph", severity=Severity.WARNING,
      summary="two distinct nodes occupy the same position",
      rationale="coincident nodes make wirelength accounting ambiguous "
                "and almost always mean a Steiner point duplicated a pin "
                "instead of reusing it")
def check_coincident_nodes(graph: RoutingGraph) -> Iterator[Diagnostic]:
    r = registry.get("graph-coincident-nodes")
    by_position: dict[tuple[float, float], list[int]] = {}
    for node, point in sorted(graph.positions().items()):
        by_position.setdefault(point.as_tuple(), []).append(node)
    for position, nodes in sorted(by_position.items()):
        if len(nodes) > 1:
            yield r.diagnostic(
                f"nodes {nodes} all sit at {position}",
                location=_net_location(graph, f"nodes {nodes}"),
                hint="collapse duplicates into a single node")


@rule("graph-out-of-bounds", category="graph", severity=Severity.WARNING,
      summary="a node lies outside the net's pin bounding box",
      rationale="in the Manhattan metric no optimal routing ever leaves "
                "the pins' bounding box (the Hanan grid is inside it); an "
                "outside node is either corrupted coordinates or a detour "
                "that only adds wirelength and delay")
def check_out_of_bounds(graph: RoutingGraph) -> Iterator[Diagnostic]:
    r = registry.get("graph-out-of-bounds")
    xs = [p.x for p in graph.net.pins]
    ys = [p.y for p in graph.net.pins]
    xmin, xmax = min(xs) - BBOX_TOL, max(xs) + BBOX_TOL
    ymin, ymax = min(ys) - BBOX_TOL, max(ys) + BBOX_TOL
    for node, point in sorted(graph.positions().items()):
        if not (xmin <= point.x <= xmax and ymin <= point.y <= ymax):
            yield r.diagnostic(
                f"node {node} at {point.as_tuple()} lies outside the pin "
                f"bounding box [{min(xs):g}, {max(xs):g}] x "
                f"[{min(ys):g}, {max(ys):g}]",
                location=_net_location(graph, f"node {node}"),
                hint="check the coordinates; routing outside the box "
                     "cannot be optimal")


@rule("graph-excess-cycles", category="graph", severity=Severity.WARNING,
      summary="cyclomatic number exceeds the net's pin count",
      rationale="LDRG/SLDRG add an extra edge only while it lowers delay, "
                "which the paper observes converges after a handful of "
                "additions; more independent cycles than pins signals a "
                "runaway construction or a corrupted edge list")
def check_excess_cycles(graph: RoutingGraph) -> Iterator[Diagnostic]:
    r = registry.get("graph-excess-cycles")
    components = _component_count(graph)
    cycles = graph.num_edges - graph.num_nodes + components
    if cycles > graph.num_pins:
        yield r.diagnostic(
            f"routing has {cycles} independent cycles over "
            f"{graph.num_pins} pins",
            location=_net_location(graph),
            hint="verify the routing really came from a delay-driven "
                 "construction")


@rule("graph-redundant-parallel", category="graph", severity=Severity.INFO,
      summary="an edge duplicates an equal-length alternative path",
      rationale="when an edge's length equals the shortest alternative "
                "path between its endpoints, removing it would keep every "
                "source-sink path length and beat the claimed cost; such "
                "parallel wiring is only justified when its extra "
                "conductance measurably lowers delay")
def check_redundant_parallel(graph: RoutingGraph) -> Iterator[Diagnostic]:
    r = registry.get("graph-redundant-parallel")
    for (u, v), length in sorted(graph.edge_lengths().items()):
        if length <= ZERO_LENGTH_TOL:
            continue  # zero-length edges have their own rule
        alternative = _shortest_path_without_edge(graph, u, v)
        if alternative <= length * (1.0 + REDUNDANT_REL_TOL):
            yield r.diagnostic(
                f"edge ({u}, {v}) of length {length:g} um parallels an "
                f"alternative path of length {alternative:g} um",
                location=_net_location(graph, f"edge ({u}, {v})"),
                hint="dropping the edge saves its wirelength without "
                     "lengthening any path; keep it only for the delay win")


def _component_count(graph: RoutingGraph) -> int:
    seen: set[int] = set()
    components = 0
    for start in graph.nodes():
        if start in seen:
            continue
        components += 1
        stack = [start]
        seen.add(start)
        while stack:
            node = stack.pop()
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
    return components


def _shortest_path_without_edge(graph: RoutingGraph, u: int, v: int) -> float:
    """Shortest u → v wire length ignoring the direct edge ``(u, v)``."""
    done: set[int] = set()
    frontier: list[tuple[float, int]] = [(0.0, u)]
    while frontier:
        dist, node = heapq.heappop(frontier)
        if node in done:
            continue
        if node == v:
            return dist
        done.add(node)
        for neighbor in graph.neighbors(node):
            if {node, neighbor} == {u, v}:
                continue
            if neighbor not in done:
                heapq.heappush(
                    frontier, (dist + graph.edge_length(node, neighbor),
                               neighbor))
    return float("inf")


def lint_graph(graph: RoutingGraph,
               config: LintConfig | None = None) -> list[Diagnostic]:
    """Run every enabled graph rule against ``graph``.

    Returns diagnostics sorted most-severe first. A structurally sound
    routing produced by any of the paper's algorithms comes back with no
    errors (the property tests assert exactly that).
    """
    return registry.run("graph", graph, config)
