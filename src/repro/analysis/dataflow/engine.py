"""The dataflow pass driver: options, model assembly, rule execution.

:func:`analyze_dataflow` is the whole-program counterpart to
:func:`repro.analysis.source_rules.lint_source`: it parses every file
under the given paths into one :class:`~repro.analysis.dataflow
.callgraph.ProjectModel`, runs effect inference, computes reachability
from the experiment entry points and from the worker-pool trial
functions, and hands the resulting :class:`DataflowModel` to every
registered ``dataflow``-category rule.

:class:`DataflowOptions` carries the project conventions the rules
check against — which modules are entry points, where wall-clock reads
are sanctioned, which functions are the blessed ContextVar scope
managers, and which function/class pair defines the cache identity. The
defaults describe this repository; tests override them to point at
fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable

from repro.analysis.diagnostics import (
    Diagnostic,
    LintConfig,
    Location,
    Severity,
    registry,
    sort_diagnostics,
)
from repro.analysis.dataflow.callgraph import (
    CallGraph,
    ModuleInfo,
    ProjectModel,
    build_project,
)
from repro.analysis.dataflow.effects import (
    EFFECTS,
    EffectAnalysis,
    analyze_effects,
)


@dataclass(frozen=True)
class DataflowOptions:
    """Project conventions the dataflow rules check against."""

    #: Modules whose public module-level functions are determinism entry
    #: points: everything reachable from them must be replayable.
    entry_prefixes: tuple[str, ...] = ("repro.core", "repro.experiments")
    #: Worker-pool trial functions (in addition to every function found
    #: at a ``PoolTask(fn=...)`` construction site). The incremental
    #: scorers are listed explicitly because they reach the pool through
    #: a local variable the resolver cannot follow.
    worker_entries: tuple[str, ...] = (
        "repro.runtime.execute.run_trial",
        "repro.delay.incremental._addition_score",
        "repro.delay.incremental._upgrade_score",
    )
    #: Modules allowed to read the wall clock (the timing shims that
    #: land measurements in declared-volatile fields).
    timing_modules: tuple[str, ...] = ("repro.runtime", "repro.service")
    #: The only functions allowed to write ContextVars — the
    #: token-restoring scope managers.
    scope_functions: tuple[str, ...] = (
        "repro.guard.policy.guard_scope",
        "repro.runtime.provenance.collecting",
    )
    #: Modules forming the config boundary where env reads are expected.
    env_modules: tuple[str, ...] = ("repro.experiments.harness",
                                    "repro.cli")
    #: Modules allowed to launch subprocesses (the hardened simulator
    #: runner and the daemon supervisor's spawn loop).
    subprocess_modules: tuple[str, ...] = ("repro.circuit.ngspice",
                                           "repro.service.supervisor")
    #: The function whose body defines the delay-cache identity.
    fingerprint_function: str = "repro.delay.incremental.graph_fingerprint"
    #: Modules whose graph reads must be covered by the fingerprint.
    eval_modules: tuple[str, ...] = (
        "repro.delay.rc_builder",
        "repro.delay.elmore_graph",
        "repro.delay.incremental",
        "repro.delay.multinet",
    )
    #: Parameter names under which routing graphs flow into eval code.
    graph_params: tuple[str, ...] = ("graph",)
    #: The experiment config dataclass and its fingerprint method.
    config_class: str = "repro.experiments.harness.ExperimentConfig"
    config_fingerprint: str = "fingerprint_data"


class DataflowModel:
    """Everything a dataflow rule may consult, precomputed once."""

    def __init__(self, project: ProjectModel, graph: CallGraph,
                 effects: EffectAnalysis, options: DataflowOptions,
                 entry_roots: tuple[str, ...],
                 worker_roots: tuple[str, ...]):
        self.project = project
        self.graph = graph
        self.effects = effects
        self.options = options
        self.entry_roots = entry_roots
        self.worker_roots = worker_roots
        #: function → BFS parent, for everything entry-reachable.
        self.entry_parents = graph.reachable_from(entry_roots)
        #: function → BFS parent, for everything worker-reachable.
        self.worker_parents = graph.reachable_from(worker_roots)
        self._module_by_path: dict[Path, ModuleInfo] = {
            info.path: info for info in project.modules.values()}

    def module_at(self, path: str | Path) -> ModuleInfo | None:
        return self._module_by_path.get(Path(path))

    def allows(self, rule_id: str, path: str | Path, lineno: int) -> bool:
        """Whether an allow-pragma waives ``rule_id`` at this site."""
        module = self.module_at(path)
        if module is None:
            return False
        return module.source.allows(rule_id, lineno)


def discover_entries(project: ProjectModel,
                     options: DataflowOptions) -> set[str]:
    """Public module-level functions under the entry prefixes."""
    entries: set[str] = set()
    for prefix in options.entry_prefixes:
        for fn in project.functions_in(prefix):
            if fn.is_public and not fn.is_method:
                entries.add(fn.qualname)
    return entries


def build_dataflow_model(paths: Iterable[str | Path],
                         options: DataflowOptions | None = None
                         ) -> DataflowModel:
    """Parse, build the call graph, infer effects, compute reachability."""
    from repro.analysis.dataflow.rules import detect_pool_entries

    opts = options or DataflowOptions()
    project = build_project(paths)
    graph = CallGraph(project)
    effects = analyze_effects(project, graph)
    entry_roots = tuple(sorted(discover_entries(project, opts)))
    worker_roots = tuple(sorted(
        set(opts.worker_entries) | detect_pool_entries(project, graph)))
    return DataflowModel(project=project, graph=graph, effects=effects,
                         options=opts, entry_roots=entry_roots,
                         worker_roots=worker_roots)


def analyze_dataflow(paths: Iterable[str | Path],
                     config: LintConfig | None = None,
                     options: DataflowOptions | None = None
                     ) -> list[Diagnostic]:
    """Run every enabled dataflow rule over the tree under ``paths``.

    Like :func:`lint_source`, the waiver audit runs *after* every other
    rule so it can see which pragmas went unused; the audit's findings
    are appended under the same config filtering.
    """
    from repro.analysis.dataflow.rules import WAIVER_AUDIT_RULE

    model = build_dataflow_model(paths, options)
    cfg = config or LintConfig()

    out: list[Diagnostic] = []
    for path, (lineno, message) in sorted(model.project.parse_errors.items()):
        out.append(Diagnostic(
            rule="source-syntax-error", severity=Severity.ERROR,
            message=f"syntax error: {message}",
            location=Location(file=str(path), line=lineno)))

    main_cfg = LintConfig(
        disabled=cfg.disabled | {WAIVER_AUDIT_RULE},
        severity_overrides=cfg.severity_overrides)
    out.extend(registry.run("dataflow", model, main_cfg))
    if cfg.enabled(WAIVER_AUDIT_RULE):
        audit = registry.get(WAIVER_AUDIT_RULE)
        severity = cfg.severity_for(audit)
        out.extend(replace(d, severity=severity) if d.severity != severity
                   else d for d in audit.check(model))
        sort_diagnostics(out)
    return out


def purity_report(model: DataflowModel,
                  qualnames: Iterable[str] | None = None) -> str:
    """A plain-text effects table, one line per function.

    With no explicit ``qualnames``, reports the entry points. The smoke
    scripts embed this in their output so a determinism regression comes
    with the analyzer's view of where the nondeterminism entered.
    """
    names = sorted(qualnames if qualnames is not None else model.entry_roots)
    width = max((len(n) for n in names), default=0)
    lines = []
    for name in names:
        effects = model.effects.of(name)
        shown = [e for e in EFFECTS if e in effects]
        lines.append(f"{name:<{width}}  "
                     + (", ".join(shown) if shown else "pure"))
    return "\n".join(lines)


# Importing the rule pack registers every dataflow-* rule; it lives at
# the bottom because the rules type-annotate against DataflowModel.
from repro.analysis.dataflow import rules as _rules  # noqa: E402,F401
