"""Purity and effect inference over the project call graph.

Every function gets a set of *effects* — the ways its result or behavior
can depend on something other than its arguments:

========================  ==================================================
effect                    source pattern
========================  ==================================================
``rng-unseeded``          module-level RNG draws (``random.random``,
                          ``np.random.rand``), seedless generator
                          construction (``default_rng()``), or seeding the
                          *global* stream (``np.random.seed``)
``rng-seeded``            explicitly seeded generator construction —
                          deterministic, recorded for the purity table only
``wall-clock``            ``time.time``/``perf_counter``/``monotonic``,
                          ``datetime.now`` and friends
``filesystem``            ``open``, ``tempfile.*``, path write/replace ops
``subprocess``            ``subprocess.*``, ``os.system``, ``Popen``
``env-read``              ``os.environ`` / ``os.getenv``
``global-write``          in-place mutation or rebinding of a module-level
                          name (the shared-state hazard across trials and
                          the worker-pool fork boundary)
``contextvar-write``      ``.set()``/``.reset()`` on a module-level
                          ``ContextVar``
========================  ==================================================

Intrinsic effects are detected per function body; :func:`analyze_effects`
then propagates them transitively through call *and* reference edges to a
fixpoint, so ``run_table → run_size_sweep → runner → oracle`` chains
carry their leaves' effects. Each intrinsic effect keeps its
:class:`EffectSite` (file, line, detail), which is where the rules anchor
their diagnostics.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    ExternalCall,
    FunctionInfo,
    MUTATING_METHODS,
    ProjectModel,
    _dotted_name,
)

RNG_UNSEEDED = "rng-unseeded"
RNG_SEEDED = "rng-seeded"
WALL_CLOCK = "wall-clock"
FILESYSTEM = "filesystem"
SUBPROCESS = "subprocess"
ENV_READ = "env-read"
GLOBAL_WRITE = "global-write"
CONTEXTVAR_WRITE = "contextvar-write"

#: Every effect kind, in report order (determinism-relevant first).
EFFECTS = (RNG_UNSEEDED, GLOBAL_WRITE, CONTEXTVAR_WRITE, WALL_CLOCK,
           ENV_READ, SUBPROCESS, FILESYSTEM, RNG_SEEDED)

#: ``random`` module draws that consume the hidden global stream.
_RANDOM_MODULE_DRAWS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "gauss", "normalvariate",
    "expovariate", "betavariate", "gammavariate", "lognormvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes",
})

#: ``numpy.random`` module-level draws (legacy global-state API).
_NUMPY_MODULE_DRAWS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "bytes", "uniform",
    "normal", "standard_normal", "exponential", "poisson", "binomial",
    "beta", "gamma", "laplace", "logistic",
})

#: Generator constructors: seeded iff called with an argument.
_RNG_CONSTRUCTORS = frozenset({
    "random.Random", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator", "numpy.random.Philox", "numpy.random.PCG64",
})

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_FILESYSTEM_CALLS = frozenset({
    "open", "os.replace", "os.rename", "os.unlink", "os.remove",
    "os.makedirs", "os.mkdir", "os.rmdir", "os.fsync", "os.open",
    "tempfile.mkdtemp", "tempfile.mkstemp", "tempfile.TemporaryDirectory",
    "tempfile.NamedTemporaryFile", "shutil.rmtree", "shutil.copy",
    "shutil.copytree", "shutil.move",
})

#: Bare method names treated as filesystem writes on any receiver
#: (``path.write_text`` — receiver types are unknown statically).
_FILESYSTEM_METHODS = frozenset({
    "write_text", "write_bytes", "mkdir", "unlink", "touch", "rmdir",
})

_SUBPROCESS_PATTERN = re.compile(
    r"^(subprocess\.|os\.system$|os\.popen$|os\.spawn|os\.exec"
    r"|.*\.Popen$)")

_ENV_READS = frozenset({"os.getenv", "os.environ.get", "os.environ"})


@dataclass(frozen=True)
class EffectSite:
    """Where an intrinsic effect enters the program."""

    function: str
    effect: str
    path: Path
    lineno: int
    detail: str


@dataclass
class EffectAnalysis:
    """Per-function effect sets plus every intrinsic site."""

    #: qualname → transitive effect set (fixpoint over the call graph).
    effects: dict[str, frozenset[str]] = field(default_factory=dict)
    #: every intrinsic effect site, in source order.
    sites: list[EffectSite] = field(default_factory=list)
    #: qualname → its own intrinsic effects only.
    intrinsic: dict[str, frozenset[str]] = field(default_factory=dict)

    def of(self, qualname: str) -> frozenset[str]:
        return self.effects.get(qualname, frozenset())

    def sites_in(self, qualname: str,
                 effect: str | None = None) -> list[EffectSite]:
        return [site for site in self.sites
                if site.function == qualname
                and (effect is None or site.effect == effect)]

    def is_pure(self, qualname: str) -> bool:
        """No effects beyond explicitly seeded RNG."""
        return not (self.of(qualname) - {RNG_SEEDED})


def _classify_external(call: ExternalCall) -> tuple[str, str] | None:
    """(effect, detail) for one unresolved call, or None."""
    name = call.name
    tail = name.rsplit(".", 1)[-1]
    if name.startswith("random.") and tail in _RANDOM_MODULE_DRAWS:
        return (RNG_UNSEEDED,
                f"{name}() draws from the hidden global random stream")
    if name.startswith("numpy.random.") and tail in _NUMPY_MODULE_DRAWS:
        return (RNG_UNSEEDED,
                f"{name}() draws from numpy's global random state")
    if name in ("numpy.random.seed", "random.seed"):
        return (RNG_UNSEEDED,
                f"{name}() reseeds a process-global stream; draws remain "
                f"call-order dependent")
    if name in _RNG_CONSTRUCTORS:
        if call.has_args:
            return (RNG_SEEDED, f"{name}(seed) — explicitly seeded generator")
        return (RNG_UNSEEDED,
                f"{name}() built without a seed falls back to OS entropy")
    if name in _WALL_CLOCK_CALLS:
        return (WALL_CLOCK, f"{name}() reads the wall clock")
    if name in _FILESYSTEM_CALLS or tail in _FILESYSTEM_METHODS:
        return (FILESYSTEM, f"{name}() touches the filesystem")
    if _SUBPROCESS_PATTERN.match(name):
        return (SUBPROCESS, f"{name}() launches a subprocess")
    if name in _ENV_READS or name.startswith("os.environ."):
        return (ENV_READ, f"{name} reads the process environment")
    return None


def _binding_names(target: ast.expr) -> set[str]:
    """Names a target expression *binds* — ``x``, ``(a, b)``, ``*rest``.

    ``x[k] = ...`` and ``x.attr = ...`` do NOT bind ``x``; they mutate
    whatever it already names, so the base name is excluded here (it is
    exactly the case the global-write detector must keep seeing).
    """
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for elt in target.elts:
            out |= _binding_names(elt)
        return out
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    return set()


def _local_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally (params, assignments, loop/with targets)."""
    declared_global = _global_declared(node)
    args = node.args
    local = {a.arg for a in [*args.posonlyargs, *args.args,
                             *args.kwonlyargs]}
    if args.vararg:
        local.add(args.vararg.arg)
    if args.kwarg:
        local.add(args.kwarg.arg)
    for stmt in ast.walk(node):
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.For):
            targets = [stmt.target]
        elif isinstance(stmt, ast.withitem) and stmt.optional_vars:
            targets = [stmt.optional_vars]
        elif isinstance(stmt, ast.comprehension):
            targets = [stmt.target]
        for target in targets:
            local |= _binding_names(target)
    return local - declared_global


def _global_declared(node: ast.FunctionDef | ast.AsyncFunctionDef
                     ) -> set[str]:
    return {name for stmt in ast.walk(node)
            if isinstance(stmt, ast.Global) for name in stmt.names}


def _global_write_sites(fn: FunctionInfo,
                        project: ProjectModel) -> list[EffectSite]:
    """Direct mutations of module-level names inside one function."""
    module = project.modules[fn.module]
    module_globals = {g.name: g for g in module.globals.values()}
    local = _local_names(fn.node)
    declared_global = _global_declared(fn.node)

    def is_module_global(name: str) -> bool:
        if name in declared_global:
            return True
        return name in module_globals and name not in local

    sites: list[EffectSite] = []

    def add(name: str, lineno: int, how: str) -> None:
        g = module_globals.get(name)
        target = g.qualname if g is not None else f"{fn.module}.{name}"
        sites.append(EffectSite(
            function=fn.qualname, effect=GLOBAL_WRITE, path=fn.path,
            lineno=lineno,
            detail=f"{how} module-level {target}"))

    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                # X = / X += ...  with `global X` declared
                if (isinstance(target, ast.Name)
                        and target.id in declared_global):
                    add(target.id, node.lineno, "rebinds")
                # X[...] = ... / X.attr = ... on a module global
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = target.value
                    while isinstance(root, (ast.Subscript, ast.Attribute)):
                        root = root.value
                    if (isinstance(root, ast.Name)
                            and is_module_global(root.id)):
                        add(root.id, node.lineno, "writes into")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = target.value
                    if (isinstance(root, ast.Name)
                            and is_module_global(root.id)):
                        add(root.id, node.lineno, "deletes from")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                    and is_module_global(func.value.id)):
                g = module_globals.get(func.value.id)
                if g is not None and g.immutable:
                    continue  # .add on a frozenset alias etc. — impossible
                add(func.value.id, node.lineno,
                    f"calls .{func.attr}() on")
    return sites


def _contextvar_write_sites(fn: FunctionInfo,
                            project: ProjectModel) -> list[EffectSite]:
    module = project.modules[fn.module]
    contextvars = {g.name for g in module.globals.values()
                   if g.is_contextvar}
    # ContextVars imported from another project module count too.
    for local, target in module.imports.items():
        g = project.globals.get(target)
        if g is not None and g.is_contextvar:
            contextvars.add(local)
    if not contextvars:
        return []
    sites: list[EffectSite] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in ("set", "reset")
                and isinstance(func.value, ast.Name)
                and func.value.id in contextvars):
            sites.append(EffectSite(
                function=fn.qualname, effect=CONTEXTVAR_WRITE,
                path=fn.path, lineno=node.lineno,
                detail=f"{func.value.id}.{func.attr}() mutates ambient "
                       f"context state"))
    return sites


def _env_attribute_sites(fn: FunctionInfo,
                         graph: CallGraph) -> list[EffectSite]:
    """``os.environ[...]`` subscripts (non-call env reads)."""
    sites: list[EffectSite] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Subscript):
            parts = _dotted_name(node.value)
            if parts == ["os", "environ"]:
                sites.append(EffectSite(
                    function=fn.qualname, effect=ENV_READ, path=fn.path,
                    lineno=node.lineno,
                    detail="os.environ[...] reads the process environment"))
    return sites


def intrinsic_effects(project: ProjectModel,
                      graph: CallGraph) -> list[EffectSite]:
    """Every function's own effect sites, in deterministic order."""
    sites: list[EffectSite] = []
    for qualname in sorted(project.functions):
        fn = project.functions[qualname]
        for call in graph.external.get(qualname, ()):
            classified = _classify_external(call)
            if classified is None:
                continue
            effect, detail = classified
            sites.append(EffectSite(
                function=qualname, effect=effect, path=fn.path,
                lineno=call.node.lineno, detail=detail))
        sites.extend(_global_write_sites(fn, project))
        sites.extend(_contextvar_write_sites(fn, project))
        sites.extend(_env_attribute_sites(fn, graph))
    sites.sort(key=lambda s: (str(s.path), s.lineno, s.effect, s.detail))
    return sites


def analyze_effects(project: ProjectModel,
                    graph: CallGraph) -> EffectAnalysis:
    """Intrinsic detection plus transitive fixpoint propagation."""
    analysis = EffectAnalysis()
    analysis.sites = intrinsic_effects(project, graph)

    intrinsic: dict[str, set[str]] = {q: set() for q in project.functions}
    for site in analysis.sites:
        intrinsic[site.function].add(site.effect)
    analysis.intrinsic = {q: frozenset(v) for q, v in intrinsic.items()}

    effects: dict[str, set[str]] = {q: set(v) for q, v in intrinsic.items()}
    # Worklist fixpoint over reversed edges: when a callee's set grows,
    # every caller is revisited.
    callers: dict[str, set[str]] = {q: set() for q in project.functions}
    for caller, callees in graph.edges.items():
        for callee in callees:
            if callee in callers:
                callers[callee].add(caller)
    worklist = sorted(project.functions)
    pending = set(worklist)
    while worklist:
        qualname = worklist.pop()
        pending.discard(qualname)
        merged = set(effects[qualname])
        for callee in graph.callees(qualname):
            merged |= effects.get(callee, set())
        if merged != effects[qualname]:
            effects[qualname] = merged
            for caller in callers.get(qualname, ()):
                if caller not in pending:
                    pending.add(caller)
                    worklist.append(caller)
    analysis.effects = {q: frozenset(v) for q, v in effects.items()}
    return analysis
