"""Whole-program determinism and concurrency analysis.

The repo's headline guarantees are *determinism* guarantees: resumed
sweeps reproduce byte-identical output, the memoized candidate evaluator
is only correct while its cache keys capture everything a delay depends
on, and parallel worker pools must aggregate to the same rows as a
serial run. One unseeded ``np.random`` call in a greedy loop, one
mutable module global shared across the fork boundary, or one field
missing from ``graph_fingerprint`` silently breaks all of that.

This package enforces those guarantees statically, as a second
generation pass on the :mod:`repro.analysis` rule framework:

* :mod:`repro.analysis.dataflow.callgraph` — an AST project model over
  ``src/repro`` (modules, functions, module-level globals, ContextVars)
  and a call graph with import/alias resolution, ``self`` dispatch, and
  reference edges for functions passed as values;
* :mod:`repro.analysis.dataflow.effects` — purity & effect inference:
  intrinsic effects (unseeded RNG, wall clock, filesystem, subprocess,
  env reads, global mutation, ContextVar writes) detected per function
  and propagated transitively through the call graph to a fixpoint;
* :mod:`repro.analysis.dataflow.rules` — the determinism rule pack
  (stable ``dataflow-*`` ids, pragma-waivable like the source rules):
  unseeded RNG or wall-clock dependence reachable from the experiment
  entry points, the worker-pool race detector, ContextVar-write
  discipline, memo-poisoning oracles, and the cache-key completeness
  cross-check against ``graph_fingerprint`` / ``ExperimentConfig``;
* :mod:`repro.analysis.dataflow.engine` — orchestration:
  ``analyze_dataflow(paths)`` builds the model, runs the rules, and
  audits unused waiver pragmas.

Run it via ``python -m repro.analysis --pass dataflow`` (CI gates on
it), or cross-check it dynamically with
``scripts/determinism_smoke.py``, which proves the analyzed entry
points really do journal byte-identically serial vs. parallel.
"""

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    build_project,
)
from repro.analysis.dataflow.effects import (
    EFFECTS,
    EffectAnalysis,
    EffectSite,
    analyze_effects,
)
from repro.analysis.dataflow.engine import (
    DataflowModel,
    DataflowOptions,
    analyze_dataflow,
    build_dataflow_model,
    purity_report,
)

__all__ = [
    "CallGraph",
    "DataflowModel",
    "DataflowOptions",
    "EFFECTS",
    "EffectAnalysis",
    "EffectSite",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "analyze_dataflow",
    "analyze_effects",
    "build_dataflow_model",
    "build_project",
    "purity_report",
]
