"""The project model and call graph the dataflow rules reason over.

A :class:`ProjectModel` is every parsed module of the tree with its
symbol tables: imports (alias → fully qualified name), functions and
methods, module-level globals, and which of those globals are
``ContextVar`` instances. A :class:`CallGraph` over that model resolves
three call shapes —

* bare calls ``f(...)`` against same-module defs and ``from`` imports;
* dotted calls ``mod.sub.f(...)`` against module import aliases;
* ``self.m(...)`` against methods of the enclosing class —

and additionally records a *reference edge* whenever a known project
function is mentioned as a value (``partial(run, ...)``, ``fn=run_trial``,
a runner passed into a sweep). Reference edges make reachability a safe
over-approximation in a codebase that passes trial runners around as
first-class values: if a function's name can flow somewhere, its
effects can too.

Thread entry points are first-class: every
``threading.Thread(target=...)`` / ``threading.Timer(...)`` spawn is
recorded as a :class:`ThreadSpawn` (and its resolved target becomes a
call edge, so effect propagation and ``reachable_from`` cover thread
bodies), and every ``signal.signal(signum, handler)`` registration is
recorded as a :class:`SignalRegistration` — resolving ``handler``
either to a project function or to a handler ``def`` nested inside the
registering function. ``spawn_pairs`` keeps the (spawner, target)
set separate so thread-aware analyses (the interlock pass) can
attribute a spawned body to its *own* thread root rather than to the
spawning thread.

Calls that resolve to nothing in the project (``np.linalg.solve``,
``time.perf_counter``) are kept as *external* calls under their fully
resolved dotted name; the effect layer pattern-matches those.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.source_rules import ParsedSource, iter_python_files, parse_source

#: Module-level constructor calls that produce immutable values — bindings
#: to these are never mutable shared state.
_IMMUTABLE_CONSTRUCTORS = frozenset({
    "frozenset", "tuple", "int", "float", "str", "bytes", "bool",
    "Fraction", "Decimal", "Path", "namedtuple", "MappingProxyType",
})

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "sort", "reverse",
    "move_to_end", "appendleft", "popleft", "extendleft",
})


def module_name_for(path: Path) -> str:
    """Dotted module name of a source file, anchored at the package root.

    ``.../src/repro/core/ldrg.py`` → ``repro.core.ldrg``. The *last*
    directory named ``repro`` anchors the package, so test fixtures laid
    out as ``tmp/src/repro/...`` resolve exactly like the real tree.
    Files outside any ``repro`` directory fall back to their stem.
    """
    parts = list(path.parts)
    stem_parts = parts[:-1] + [path.stem]
    anchor = None
    for index, part in enumerate(stem_parts[:-1]):
        if part == "repro":
            anchor = index
    if anchor is None:
        return path.stem
    dotted = stem_parts[anchor:]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: Path

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass(frozen=True)
class GlobalInfo:
    """One module-level binding (a potential shared-state hazard)."""

    qualname: str
    module: str
    name: str
    lineno: int
    #: Whether the bound value is known-immutable at the binding site.
    immutable: bool
    #: Whether the binding is a ``ContextVar(...)`` instance.
    is_contextvar: bool


@dataclass(frozen=True)
class ClassInfo:
    """One class definition: bases, methods, and class-level assigns."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: Path
    base_names: tuple[str, ...]
    #: Names assigned at class level (``cacheable = False`` and friends).
    class_assigns: dict[str, ast.expr] = field(default_factory=dict)

    def assigns_name(self, name: str) -> bool:
        return name in self.class_assigns


@dataclass
class ModuleInfo:
    """One parsed module and its symbol tables."""

    name: str
    path: Path
    source: ParsedSource
    #: local alias → fully qualified dotted target.
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    globals: dict[str, GlobalInfo] = field(default_factory=dict)


class ProjectModel:
    """Every module of the analyzed tree, addressable by dotted name."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: qualname → function, across all modules.
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.globals: dict[str, GlobalInfo] = {}
        #: files that failed to parse: path → (lineno, message).
        self.parse_errors: dict[Path, tuple[int | None, str]] = {}

    def add_module(self, info: ModuleInfo) -> None:
        self.modules[info.name] = info
        self.functions.update(info.functions)
        self.classes.update(info.classes)
        self.globals.update(info.globals)

    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def functions_in(self, module_prefix: str) -> Iterator[FunctionInfo]:
        """Functions whose module is ``module_prefix`` or nested under it."""
        for fn in self.functions.values():
            if (fn.module == module_prefix
                    or fn.module.startswith(module_prefix + ".")):
                yield fn


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_immutable_value(node: ast.expr) -> bool:
    """Whether a module-level RHS is a known-immutable value."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Tuple):
        return all(_is_immutable_value(elt) for elt in node.elts)
    if isinstance(node, (ast.UnaryOp, ast.BinOp)):
        return True  # arithmetic on constants (1.0 / 1e-6 etc.)
    if isinstance(node, ast.Call):
        name = _base_name(node.func)
        return name in _IMMUTABLE_CONSTRUCTORS
    if isinstance(node, ast.Attribute):
        return True  # e.g. Severity.ERROR — enum access
    return False


def _is_contextvar_value(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    return _base_name(node.func) == "ContextVar"


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative imports do not occur in this tree
                continue
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _module_symbols(info: ModuleInfo) -> None:
    """Populate functions, classes, and globals of one module in place."""
    module = info.name
    for node in info.source.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{module}.{node.name}"
            info.functions[qual] = FunctionInfo(
                qualname=qual, module=module, name=node.name, cls=None,
                node=node, path=info.path)
        elif isinstance(node, ast.ClassDef):
            cls_qual = f"{module}.{node.name}"
            assigns: dict[str, ast.expr] = {}
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{cls_qual}.{stmt.name}"
                    info.functions[qual] = FunctionInfo(
                        qualname=qual, module=module, name=stmt.name,
                        cls=node.name, node=stmt, path=info.path)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            assigns[target.id] = stmt.value
                elif (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    if stmt.value is not None:
                        assigns[stmt.target.id] = stmt.value
            info.classes[cls_qual] = ClassInfo(
                qualname=cls_qual, module=module, name=node.name, node=node,
                path=info.path,
                base_names=tuple(
                    name for base in node.bases
                    if (name := _base_name(base)) is not None),
                class_assigns=assigns)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            value = node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                qual = f"{module}.{target.id}"
                info.globals[qual] = GlobalInfo(
                    qualname=qual, module=module, name=target.id,
                    lineno=node.lineno,
                    immutable=value is None or _is_immutable_value(value),
                    is_contextvar=(value is not None
                                   and _is_contextvar_value(value)))


def build_project(paths: Iterable[str | Path]) -> ProjectModel:
    """Parse every Python file under ``paths`` into a project model."""
    project = ProjectModel()
    for file_path in iter_python_files(paths):
        parsed = parse_source(file_path)
        if isinstance(parsed, ParsedSource):
            info = ModuleInfo(name=module_name_for(Path(file_path)),
                              path=Path(file_path), source=parsed)
            info.imports = _collect_imports(parsed.tree)
            _module_symbols(info)
            project.add_module(info)
        else:  # a syntax-error Diagnostic
            project.parse_errors[Path(file_path)] = (
                parsed.location.line, parsed.message)
    return project


# ---------------------------------------------------------------------------
# Call resolution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExternalCall:
    """A call that resolves to nothing inside the project."""

    #: fully alias-resolved dotted name (``numpy.random.default_rng``).
    name: str
    node: ast.Call
    #: whether the call site passes any positional/keyword argument.
    has_args: bool


#: Thread constructors → the keyword naming the thread body.
_THREAD_CONSTRUCTORS = {"threading.Thread": "target",
                        "threading.Timer": "function"}


@dataclass(frozen=True)
class ThreadSpawn:
    """One ``threading.Thread``/``Timer`` spawn site in the project."""

    #: qualname of the function containing the spawn.
    spawner: str
    #: resolved project qualname of the thread body (None if the target
    #: expression is not a resolvable project function).
    target: str | None
    #: whether the spawn passes ``daemon=True`` literally.
    daemon: bool
    lineno: int
    path: Path


@dataclass(frozen=True)
class SignalRegistration:
    """One ``signal.signal(signum, handler)`` registration site."""

    #: qualname of the function performing the registration.
    registrar: str
    #: resolved project qualname of the handler, if it is one.
    handler: str | None
    #: the handler ``def`` when it is nested inside the registrar
    #: (the dominant idiom: closures over ``self``).
    handler_node: ast.FunctionDef | ast.AsyncFunctionDef | None
    lineno: int
    path: Path


def _dotted_name(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        parts.reverse()
        return parts
    return None


class CallGraph:
    """Call and reference edges between project functions.

    ``edges[qualname]`` is every project function that ``qualname`` may
    invoke (called directly, or merely referenced as a value);
    ``external[qualname]`` is every unresolved call with its resolved
    dotted name, for effect pattern matching.
    """

    def __init__(self, project: ProjectModel):
        self.project = project
        self.edges: dict[str, set[str]] = {}
        self.external: dict[str, list[ExternalCall]] = {}
        self.thread_spawns: list[ThreadSpawn] = []
        self.signal_registrations: list[SignalRegistration] = []
        #: (spawner, target) pairs: the target runs on a *new* thread,
        #: so thread-aware analyses must not let the spawner inherit
        #: the target's root attribution.
        self.spawn_pairs: set[tuple[str, str]] = set()
        self._class_methods: dict[str, list[str]] = {}
        for fn in project.functions.values():
            if fn.cls is not None:
                cls_qual = f"{fn.module}.{fn.cls}"
                self._class_methods.setdefault(cls_qual, []).append(
                    fn.qualname)
        for fn in project.functions.values():
            self._analyze_function(fn)

    # -- construction --

    def _resolver(self, fn: FunctionInfo):
        module = self.project.modules[fn.module]
        functions = self.project.functions
        classes = self.project.classes

        def candidates_for(parts: list[str]) -> list[str]:
            head, rest = parts[0], parts[1:]
            candidates = []
            if head == "self" and fn.cls is not None and rest:
                candidates.append(".".join([fn.module, fn.cls, *rest]))
            target = module.imports.get(head)
            if target is not None:
                candidates.append(".".join([target, *rest]))
            candidates.append(".".join([fn.module, *parts]))
            return candidates

        def resolve(parts: list[str]) -> str | None:
            """Project qualname a dotted reference resolves to, if any."""
            for candidate in candidates_for(parts):
                if candidate in functions:
                    return candidate
            return None

        def resolve_class(parts: list[str]) -> str | None:
            """Project class a dotted reference resolves to, if any."""
            for candidate in candidates_for(parts):
                if candidate in classes:
                    return candidate
            return None

        def resolve_external(parts: list[str]) -> str:
            head, rest = parts[0], parts[1:]
            target = module.imports.get(head)
            if target is not None:
                return ".".join([target, *rest])
            return ".".join(parts)

        return resolve, resolve_class, resolve_external

    def resolver_for(self, qualname: str):
        """The function resolver closure for one project function.

        Used by rule code that must resolve names at specific call sites
        (``PoolTask(fn=run_trial)`` worker-entry detection). Returns
        ``None`` for unknown qualnames.
        """
        fn = self.project.functions.get(qualname)
        if fn is None:
            return None
        resolve, _, _ = self._resolver(fn)
        return resolve

    def _analyze_function(self, fn: FunctionInfo) -> None:
        resolve, resolve_class, resolve_external = self._resolver(fn)
        edges: set[str] = set()
        external: list[ExternalCall] = []

        def add_class_edges(cls_qual: str) -> None:
            # A referenced/instantiated project class links to all its
            # methods: which ones run later cannot be resolved statically,
            # so reachability assumes any of them may (safe over-approx).
            for method in self._class_methods.get(cls_qual, ()):
                if method != fn.qualname:
                    edges.add(method)

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                parts = _dotted_name(node.func)
                if parts is None:
                    continue
                target = resolve(parts)
                if target is not None and target != fn.qualname:
                    edges.add(target)
                    continue
                cls_target = resolve_class(parts)
                if cls_target is not None:
                    add_class_edges(cls_target)
                else:
                    name = resolve_external(parts)
                    external.append(ExternalCall(
                        name=name, node=node,
                        has_args=bool(node.args or node.keywords)))
                    if name in _THREAD_CONSTRUCTORS:
                        self._record_spawn(fn, node, name, resolve, edges)
                    elif name == "signal.signal" and len(node.args) >= 2:
                        self._record_signal(fn, node, resolve, edges)
            elif isinstance(node, (ast.Name, ast.Attribute)):
                # Reference edge: a function mentioned as a value (passed
                # as a callback, stored in a task tuple) may be invoked.
                parts = _dotted_name(node)
                if parts is None:
                    continue
                target = resolve(parts)
                if target is not None and target != fn.qualname:
                    edges.add(target)
                    continue
                cls_target = resolve_class(parts)
                if cls_target is not None:
                    add_class_edges(cls_target)
        self.edges[fn.qualname] = edges
        self.external[fn.qualname] = external

    def _record_spawn(self, fn: FunctionInfo, node: ast.Call,
                      constructor: str, resolve, edges: set[str]) -> None:
        """Record one thread spawn and link its resolved body."""
        body_kwarg = _THREAD_CONSTRUCTORS[constructor]
        target_expr: ast.expr | None = None
        for kw in node.keywords:
            if kw.arg == body_kwarg:
                target_expr = kw.value
        if (target_expr is None and constructor == "threading.Timer"
                and len(node.args) >= 2):
            target_expr = node.args[1]
        daemon = any(kw.arg == "daemon"
                     and isinstance(kw.value, ast.Constant)
                     and kw.value.value is True for kw in node.keywords)
        target: str | None = None
        if target_expr is not None:
            parts = _dotted_name(target_expr)
            if parts is not None:
                target = resolve(parts)
        if target is not None and target != fn.qualname:
            edges.add(target)  # the spawned body does run
            self.spawn_pairs.add((fn.qualname, target))
        self.thread_spawns.append(ThreadSpawn(
            spawner=fn.qualname, target=target, daemon=daemon,
            lineno=node.lineno, path=fn.path))

    def _record_signal(self, fn: FunctionInfo, node: ast.Call,
                       resolve, edges: set[str]) -> None:
        """Record one signal-handler registration and link the handler."""
        handler_expr = node.args[1]
        parts = _dotted_name(handler_expr)
        handler = resolve(parts) if parts is not None else None
        handler_node: ast.FunctionDef | ast.AsyncFunctionDef | None = None
        if handler is None and isinstance(handler_expr, ast.Name):
            for inner in ast.walk(fn.node):
                if (isinstance(inner, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))
                        and inner is not fn.node
                        and inner.name == handler_expr.id):
                    handler_node = inner
                    break
        if handler is not None and handler != fn.qualname:
            edges.add(handler)  # the handler may run at any point
            # Like a thread body, the handler runs on its own (async)
            # entry, not as part of the registrar's execution.
            self.spawn_pairs.add((fn.qualname, handler))
        if handler is None and handler_node is None:
            # SIG_IGN/SIG_DFL, a saved-previous-handler variable, etc.
            return
        self.signal_registrations.append(SignalRegistration(
            registrar=fn.qualname, handler=handler,
            handler_node=handler_node, lineno=node.lineno, path=fn.path))

    # -- queries --

    def callees(self, qualname: str) -> set[str]:
        return self.edges.get(qualname, set())

    def reachable_from(self, roots: Iterable[str]) -> dict[str, str | None]:
        """BFS reachability: function → its BFS parent (roots map to None).

        The parent map doubles as the witness-chain source for
        diagnostics ("reachable from <entry> via a → b → c").
        """
        parents: dict[str, str | None] = {}
        frontier = [root for root in roots if root in self.edges]
        for root in frontier:
            parents[root] = None
        while frontier:
            next_frontier: list[str] = []
            for fn in frontier:
                for callee in sorted(self.edges.get(fn, ())):
                    if callee not in parents:
                        parents[callee] = fn
                        next_frontier.append(callee)
            frontier = next_frontier
        return parents

    def witness_chain(self, parents: dict[str, str | None],
                      qualname: str, limit: int = 6) -> list[str]:
        """The entry-point path to ``qualname``, root first."""
        chain: list[str] = []
        cursor: str | None = qualname
        while cursor is not None and len(chain) < 64:
            chain.append(cursor)
            cursor = parents.get(cursor)
        chain.reverse()
        if len(chain) > limit:
            chain = chain[:2] + ["..."] + chain[-(limit - 3):]
        return chain
