"""The determinism & concurrency rule pack.

Each rule receives the whole-program :class:`~repro.analysis.dataflow
.engine.DataflowModel` (project + call graph + effect analysis) and
yields diagnostics anchored at the *intrinsic* effect site — the line
where the nondeterminism actually enters — with a witness chain showing
how an experiment entry point reaches it. Every rule is waivable with
the standard ``# repro: allow=<rule-id>`` pragma on the flagged line;
the engine audits pragmas that waive nothing.

Rule ids are stable; the catalog lives in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    registry,
    rule,
)
from repro.analysis.dataflow.callgraph import FunctionInfo, _dotted_name
from repro.analysis.dataflow.effects import (
    CONTEXTVAR_WRITE,
    ENV_READ,
    FILESYSTEM,
    GLOBAL_WRITE,
    RNG_SEEDED,
    RNG_UNSEEDED,
    SUBPROCESS,
    WALL_CLOCK,
)

if TYPE_CHECKING:
    from repro.analysis.dataflow.engine import DataflowModel

#: RoutingGraph accessors whose value is *derived from* a fingerprint
#: component: reading them is covered as long as the fingerprint hashes
#: the component they derive from.
FINGERPRINT_DERIVED: dict[str, str] = {
    "positions": "positions",
    "position": "positions",
    "nodes": "positions",
    "num_nodes": "positions",
    "distance": "positions",
    "edge_length": "positions",
    "edge_lengths": "positions",
    "edges": "edges",
    "num_edges": "edges",
    "has_edge": "edges",
    "neighbors": "edges",
    "degree": "edges",
    "candidate_edges": "edges",
    "adjacency": "edges",
    "spans_net": "edges",
    "is_connected": "edges",
    "is_tree": "edges",
    "reachable_from": "edges",
    "rooted_parents": "edges",
    "cost": "edges",
    "with_edge": "edges",
    "num_pins": "num_pins",
    "sink_indices": "num_pins",
    "source": "num_pins",
    "is_steiner": "num_pins",
}

#: Accessors that cannot influence any delay (naming, conversion,
#: defensive copies) — exempt from the completeness cross-reference.
FINGERPRINT_EXEMPT = frozenset({"net", "copy", "to_networkx"})

#: Effects that make a delay oracle unsafe to memoize wherever they
#: appear in its transitive call graph: anything beyond the arguments
#: can change the value, or evaluating has side effects a cache would
#: silently skip.
UNCACHEABLE_EFFECTS = frozenset({
    RNG_UNSEEDED, WALL_CLOCK, SUBPROCESS, FILESYSTEM,
    GLOBAL_WRITE, CONTEXTVAR_WRITE, ENV_READ,
})

#: RNG effects that make an oracle *stateful* when a method of the class
#: itself owns them (intrinsic only): even a seeded generator advances
#: per draw, so cache hits that skip evaluation change every later draw.
#: Transitive seeded RNG is NOT counted — constructing a seeded
#: generator deep inside a helper is how deterministic code looks.
STATEFUL_RNG_EFFECTS = frozenset({RNG_UNSEEDED, RNG_SEEDED})


def _chain_text(model: "DataflowModel", parents: dict[str, str | None],
                qualname: str) -> str:
    chain = model.graph.witness_chain(parents, qualname)
    if len(chain) <= 1:
        return f"entry point {qualname}"
    return f"entry point {chain[0]} via " + " -> ".join(chain[1:])


def _in_modules(fn: FunctionInfo, prefixes: tuple[str, ...]) -> bool:
    return any(fn.module == p or fn.module.startswith(p + ".")
               for p in prefixes)


@rule("dataflow-unseeded-rng", category="dataflow", severity=Severity.ERROR,
      summary="unseeded RNG reachable from an experiment entry point",
      rationale="a draw from a hidden global stream (random.random, "
                "np.random.rand, default_rng()) makes trial outcomes "
                "depend on call order and process history, breaking "
                "resume byte-identity and serial-vs-parallel agreement")
def check_unseeded_rng(model: "DataflowModel") -> Iterator[Diagnostic]:
    r = registry.get("dataflow-unseeded-rng")
    for site in model.effects.sites:
        if site.effect != RNG_UNSEEDED:
            continue
        if site.function not in model.entry_parents:
            continue
        if model.allows(r.id, site.path, site.lineno):
            continue
        yield r.diagnostic(
            f"{site.detail}; reachable from "
            f"{_chain_text(model, model.entry_parents, site.function)}",
            location=Location(file=str(site.path), line=site.lineno),
            hint="thread an explicitly seeded generator "
                 "(np.random.default_rng(seed)) through the call instead")


@rule("dataflow-wall-clock", category="dataflow", severity=Severity.ERROR,
      summary="wall-clock read outside the repro.runtime timing shims",
      rationale="time.time/perf_counter values differ run to run; any "
                "path from an experiment entry point that folds them "
                "into results breaks reproducibility — only the runtime "
                "layer may measure time, into fields declared volatile")
def check_wall_clock(model: "DataflowModel") -> Iterator[Diagnostic]:
    r = registry.get("dataflow-wall-clock")
    for site in model.effects.sites:
        if site.effect != WALL_CLOCK:
            continue
        if site.function not in model.entry_parents:
            continue
        fn = model.project.functions[site.function]
        if _in_modules(fn, model.options.timing_modules):
            continue
        if model.allows(r.id, site.path, site.lineno):
            continue
        yield r.diagnostic(
            f"{site.detail}; reachable from "
            f"{_chain_text(model, model.entry_parents, site.function)}",
            location=Location(file=str(site.path), line=site.lineno),
            hint="measure timing in repro.runtime (whose elapsed fields "
                 "are declared volatile and excluded from byte-identity)")


@rule("dataflow-global-mutation", category="dataflow",
      severity=Severity.ERROR,
      summary="module-level state mutated on an experiment path",
      rationale="a module global mutated while trials run carries state "
                "from one trial into the next, so results depend on "
                "trial execution order — the exact property journaled "
                "resume and the memo cache assume away")
def check_global_mutation(model: "DataflowModel") -> Iterator[Diagnostic]:
    r = registry.get("dataflow-global-mutation")
    for site in model.effects.sites:
        if site.effect != GLOBAL_WRITE:
            continue
        if site.function not in model.entry_parents:
            continue
        if model.allows(r.id, site.path, site.lineno):
            continue
        yield r.diagnostic(
            f"{site.detail}; reachable from "
            f"{_chain_text(model, model.entry_parents, site.function)}",
            location=Location(file=str(site.path), line=site.lineno),
            hint="pass the state as an argument or keep it on an "
                 "instance owned by one trial")


@rule("dataflow-worker-shared-state", category="dataflow",
      severity=Severity.ERROR,
      summary="worker-pool trial code mutates module-level state",
      rationale="pool workers fork: a module global mutated inside a "
                "trial diverges per worker with the task schedule, so "
                "any read-back makes results depend on worker count and "
                "assignment — the race the pool's keyed aggregation "
                "cannot repair")
def check_worker_shared_state(model: "DataflowModel") -> Iterator[Diagnostic]:
    r = registry.get("dataflow-worker-shared-state")
    for site in model.effects.sites:
        if site.effect != GLOBAL_WRITE:
            continue
        if site.function not in model.worker_parents:
            continue
        if model.allows(r.id, site.path, site.lineno):
            continue
        yield r.diagnostic(
            f"{site.detail} inside worker-pool trial code; reachable from "
            f"{_chain_text(model, model.worker_parents, site.function)}",
            location=Location(file=str(site.path), line=site.lineno),
            hint="worker trial functions must communicate only through "
                 "their return value (the pool journals outcomes by key)")


@rule("dataflow-contextvar-write", category="dataflow",
      severity=Severity.ERROR,
      summary="ContextVar written outside a sanctioned scope manager",
      rationale="ambient context (guard policy, provenance collector) "
                "must only change inside the token-restoring scope "
                "managers; a stray .set() leaks policy across trials "
                "and across pool worker lifetimes")
def check_contextvar_write(model: "DataflowModel") -> Iterator[Diagnostic]:
    r = registry.get("dataflow-contextvar-write")
    for site in model.effects.sites:
        if site.effect != CONTEXTVAR_WRITE:
            continue
        if site.function in model.options.scope_functions:
            continue
        if model.allows(r.id, site.path, site.lineno):
            continue
        yield r.diagnostic(
            f"{site.detail} (outside "
            f"{', '.join(model.options.scope_functions) or 'any scope'})",
            location=Location(file=str(site.path), line=site.lineno),
            hint="wrap the write in a contextmanager that restores the "
                 "previous value via the set() token, like guard_scope")


@rule("dataflow-env-read", category="dataflow", severity=Severity.WARNING,
      summary="environment read outside the config boundary",
      rationale="os.environ consulted deep in library code makes "
                "results depend on ambient shell state that no config "
                "fingerprint captures; env reads belong in the "
                "from_env/CLI boundary where they land in fingerprinted "
                "config fields")
def check_env_read(model: "DataflowModel") -> Iterator[Diagnostic]:
    r = registry.get("dataflow-env-read")
    for site in model.effects.sites:
        if site.effect != ENV_READ:
            continue
        fn = model.project.functions[site.function]
        if _in_modules(fn, model.options.env_modules):
            continue
        if model.allows(r.id, site.path, site.lineno):
            continue
        yield r.diagnostic(
            site.detail,
            location=Location(file=str(site.path), line=site.lineno),
            hint="read the variable at the config boundary (from_env) so "
                 "it becomes a fingerprinted ExperimentConfig field")


@rule("dataflow-subprocess", category="dataflow", severity=Severity.ERROR,
      summary="subprocess launched outside the sandboxed simulator shim",
      rationale="subprocesses escape the trial-isolation guarantees "
                "(timeouts, crash containment, deck cleanup) unless "
                "they go through the hardened ngspice runner")
def check_subprocess(model: "DataflowModel") -> Iterator[Diagnostic]:
    r = registry.get("dataflow-subprocess")
    for site in model.effects.sites:
        if site.effect != SUBPROCESS:
            continue
        fn = model.project.functions[site.function]
        if _in_modules(fn, model.options.subprocess_modules):
            continue
        if site.function not in model.entry_parents:
            continue
        if model.allows(r.id, site.path, site.lineno):
            continue
        yield r.diagnostic(
            f"{site.detail}; reachable from "
            f"{_chain_text(model, model.entry_parents, site.function)}",
            location=Location(file=str(site.path), line=site.lineno),
            hint="route external tools through repro.circuit.ngspice, "
                 "which owns timeout/cleanup/containment")


@rule("dataflow-unstable-iteration", category="dataflow",
      severity=Severity.WARNING,
      summary="set iteration feeds a numeric accumulation",
      rationale="set iteration order follows hash order, which varies "
                "with PYTHONHASHSEED and insertion history; folding it "
                "into float sums changes results at the last ulp — "
                "iterate sorted(...) instead")
def check_unstable_iteration(model: "DataflowModel") -> Iterator[Diagnostic]:
    r = registry.get("dataflow-unstable-iteration")
    for qualname in sorted(model.project.functions):
        fn = model.project.functions[qualname]
        for node, detail in _unstable_iterations(fn.node):
            if model.allows(r.id, fn.path, node.lineno):
                continue
            yield r.diagnostic(
                detail,
                location=Location(file=str(fn.path), line=node.lineno),
                hint="wrap the iterable in sorted(...) so the fold "
                     "order is canonical")


def _set_valued_names(fn_node: ast.AST) -> set[str]:
    """Local names assigned a set value inside this function."""
    names: set[str] = set()
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Assign):
            continue
        if not _is_set_expr(node.value):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _unstable_iterations(fn_node: ast.FunctionDef | ast.AsyncFunctionDef
                         ) -> Iterator[tuple[ast.AST, str]]:
    set_names = _set_valued_names(fn_node)

    def is_set_iterable(node: ast.expr) -> bool:
        if _is_set_expr(node):
            return True
        return isinstance(node, ast.Name) and node.id in set_names

    for node in ast.walk(fn_node):
        # sum(<set>) / fsum(<set>) — direct fold of hash order.
        if isinstance(node, ast.Call) and node.args:
            name = node.func.id if isinstance(node.func, ast.Name) else (
                node.func.attr if isinstance(node.func, ast.Attribute)
                else None)
            if name in ("sum", "fsum") and is_set_iterable(node.args[0]):
                yield node, (f"{name}() folds a set in hash order: "
                             f"{ast.unparse(node.args[0])!r}")
        # for x in <set>: ... acc += ...  — accumulation over hash order.
        elif isinstance(node, ast.For) and is_set_iterable(node.iter):
            for inner in ast.walk(node):
                if isinstance(inner, ast.AugAssign) and isinstance(
                        inner.op, (ast.Add, ast.Sub, ast.Mult)):
                    yield node, (
                        f"loop over set {ast.unparse(node.iter)!r} "
                        f"accumulates numerically (line {inner.lineno})")
                    break


@rule("dataflow-uncacheable-oracle", category="dataflow",
      severity=Severity.ERROR,
      summary="an effectful delay oracle does not opt out of the memo",
      rationale="the delay memo assumes oracles are pure functions of "
                "the graph fingerprint; a model with RNG, subprocess, "
                "clock, or stateful effects that leaves cacheable=True "
                "poisons every memoized result it ever produces")
def check_uncacheable_oracle(model: "DataflowModel") -> Iterator[Diagnostic]:
    r = registry.get("dataflow-uncacheable-oracle")
    for cls_qual in sorted(model.project.classes):
        cls = model.project.classes[cls_qual]
        if "Model" not in cls.name and not any(
                "Model" in base for base in cls.base_names):
            continue
        delays = model.project.function(f"{cls_qual}.delays")
        if delays is None:
            continue
        if cls.assigns_name("cacheable"):
            continue  # an explicit declaration, either way, is a decision
        combined: set[str] = set()
        for fn in model.project.functions.values():
            if fn.module == cls.module and fn.cls == cls.name:
                combined |= model.effects.of(fn.qualname) & UNCACHEABLE_EFFECTS
                combined |= (model.effects.intrinsic.get(fn.qualname,
                                                         frozenset())
                             & STATEFUL_RNG_EFFECTS)
        offending = sorted(combined)
        if not offending:
            continue
        if model.allows(r.id, cls.path, cls.node.lineno):
            continue
        yield r.diagnostic(
            f"oracle {cls.name} has effects ({', '.join(offending)}) but "
            f"no explicit cacheable declaration",
            location=Location(file=str(cls.path), line=cls.node.lineno,
                              obj=cls.qualname),
            hint="declare `cacheable = False` (memoize_model will then "
                 "pass it through) or make the oracle pure")


@rule("dataflow-cache-key-completeness", category="dataflow",
      severity=Severity.ERROR,
      summary="delay evaluation reads state the cache key never hashes",
      rationale="graph_fingerprint and ExperimentConfig.fingerprint_data "
                "are the identities of memoized delays and journaled "
                "runs; an attribute read by evaluation code (or a config "
                "field) missing from them lets two electrically "
                "different inputs collide on one cached value")
def check_cache_key_completeness(model: "DataflowModel"
                                 ) -> Iterator[Diagnostic]:
    r = registry.get("dataflow-cache-key-completeness")
    yield from _check_graph_fingerprint(model, r)
    yield from _check_config_fingerprint(model, r)


def _graph_accessors(fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
                     param: str) -> dict[str, int]:
    """Attribute names read off ``param`` inside ``fn_node`` → lineno."""
    out: dict[str, int] = {}
    for node in ast.walk(fn_node):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == param):
            out.setdefault(node.attr, node.lineno)
    return out


def _check_graph_fingerprint(model: "DataflowModel", r) -> Iterator[Diagnostic]:
    fingerprint = model.project.function(model.options.fingerprint_function)
    if fingerprint is None:
        return  # nothing to cross-reference in this tree (fixtures)
    args = fingerprint.node.args
    if not args.args:
        return
    graph_param = args.args[0].arg
    hashed = set(_graph_accessors(fingerprint.node, graph_param))

    for module_name in model.options.eval_modules:
        module = model.project.modules.get(module_name)
        if module is None:
            continue
        for fn in module.functions.values():
            fn_args = fn.node.args
            params = {a.arg for a in [*fn_args.posonlyargs, *fn_args.args]}
            for param in model.options.graph_params:
                if param not in params:
                    continue
                accessors = _graph_accessors(fn.node, param)
                for accessor in sorted(accessors):
                    if accessor in FINGERPRINT_EXEMPT:
                        continue
                    covered = FINGERPRINT_DERIVED.get(accessor)
                    lineno = accessors[accessor]
                    if covered is not None and covered in hashed:
                        continue
                    if model.allows(r.id, fn.path, lineno):
                        continue
                    if covered is None:
                        message = (
                            f"{fn.qualname} reads graph.{accessor}, which "
                            f"has no known derivation from any "
                            f"fingerprint component")
                        hint = ("map the accessor to the fingerprint "
                                "component it derives from in "
                                "FINGERPRINT_DERIVED, or hash it in "
                                f"{model.options.fingerprint_function}")
                    else:
                        message = (
                            f"{fn.qualname} reads graph.{accessor} "
                            f"(derived from {covered!r}), but "
                            f"{model.options.fingerprint_function} never "
                            f"hashes {covered!r}")
                        hint = (f"add {covered!r} to the fingerprint key "
                                f"or stop reading it in evaluation code")
                    yield r.diagnostic(
                        message,
                        location=Location(file=str(fn.path), line=lineno,
                                          obj=fn.qualname),
                        hint=hint)


def _check_config_fingerprint(model: "DataflowModel", r) -> Iterator[Diagnostic]:
    cls = model.project.classes.get(model.options.config_class)
    if cls is None:
        return
    method = model.project.function(
        f"{model.options.config_class}.{model.options.config_fingerprint}")
    if method is None:
        yield r.diagnostic(
            f"{model.options.config_class} has no "
            f"{model.options.config_fingerprint}() method to audit",
            location=Location(file=str(cls.path), line=cls.node.lineno,
                              obj=cls.qualname))
        return
    hashed_keys: set[str] = set()
    for node in ast.walk(method.node):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(
                        key.value, str):
                    hashed_keys.add(key.value)
    for stmt in cls.node.body:
        if not (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation = ast.unparse(stmt.annotation)
        if annotation.startswith("ClassVar"):
            continue
        if name in hashed_keys:
            continue
        if model.allows(r.id, cls.path, stmt.lineno):
            continue
        yield r.diagnostic(
            f"config field {cls.name}.{name} is not hashed by "
            f"{model.options.config_fingerprint}() — two runs differing "
            f"only in {name!r} would share a journal",
            location=Location(file=str(cls.path), line=stmt.lineno,
                              obj=f"{cls.qualname}.{name}"),
            hint=f"add {name!r} to the dict {model.options.config_fingerprint} "
                 f"returns (or rename it with a leading underscore if it "
                 f"truly cannot affect outcomes)")


#: The dataflow waiver audit; the engine runs it after every other rule.
WAIVER_AUDIT_RULE = "dataflow-unused-waiver"


@rule(WAIVER_AUDIT_RULE, category="dataflow", severity=Severity.WARNING,
      summary="a dataflow allow-pragma waives nothing",
      rationale="a stale waiver hides the next real violation on its "
                "line; dataflow waivers must each suppress a live "
                "diagnostic and carry a justification")
def check_unused_dataflow_waiver(model: "DataflowModel"
                                 ) -> Iterator[Diagnostic]:
    r = registry.get(WAIVER_AUDIT_RULE)
    for module in model.project.modules.values():
        for lineno, rule_id in module.source.waiver_lines():
            if rule_id == "all" or rule_id not in registry:
                continue  # unknown ids are the source pass's finding
            if registry.get(rule_id).category != "dataflow":
                continue
            if (lineno, rule_id) not in module.source.used_waivers:
                yield r.diagnostic(
                    f"pragma waives {rule_id!r} but nothing here "
                    f"violates it",
                    location=Location(file=str(module.path), line=lineno),
                    hint="delete the stale pragma (or fix the rule id)")


def detect_pool_entries(model_project, graph) -> set[str]:
    """Worker trial functions, found at ``PoolTask(fn=...)`` sites."""
    entries: set[str] = set()
    for qualname, fn in model_project.functions.items():
        resolve = graph.resolver_for(qualname)
        if resolve is None:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = _dotted_name(node.func)
            if callee is None or callee[-1] != "PoolTask":
                continue
            fn_arg: ast.expr | None = None
            for keyword in node.keywords:
                if keyword.arg == "fn":
                    fn_arg = keyword.value
            if fn_arg is None and len(node.args) >= 2:
                fn_arg = node.args[1]
            if fn_arg is None:
                continue
            parts = _dotted_name(fn_arg)
            if parts is None:
                continue
            target = resolve(parts)
            if target is not None:
                entries.add(target)
    return entries
