"""Static analysis for routings, RC netlists, and the source tree itself.

The paper's central move — allowing routing *graphs* instead of trees —
silently invalidates every tree-only assumption downstream (Elmore
recursion, parent maps, JSON round-trips). This package provides the
machine-checkable invariants that keep that from producing a
plausible-looking but wrong delay number:

* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` record, the
  rule registry with enable/disable and severity overrides, and the
  :class:`LintConfig` threading them through every pass;
* :mod:`repro.analysis.graph_rules`  — structural lint over
  :class:`~repro.graph.routing_graph.RoutingGraph` instances
  (connectivity, spanning, dangling Steiner points, degenerate edges,
  bounding-box and cycle-count sanity);
* :mod:`repro.analysis.circuit_rules` — electrical lint over
  :class:`~repro.circuit.netlist.Circuit` netlists and reduced MNA
  systems (sign conventions, floating nodes, matrix symmetry and
  diagonal dominance, driver presence);
* :mod:`repro.analysis.source_rules` — an AST checker enforcing repo
  discipline on the Python sources (no float ``==`` on coordinates, no
  mutation of frozen ``Net``/``Point`` values, boundary validation in
  every ``core/`` algorithm module, no mutable default arguments);
* :mod:`repro.analysis.dataflow` — the whole-program determinism &
  concurrency analyzer: an AST call graph over ``src/repro``, purity
  and effect inference, and the ``dataflow-*`` rule pack (unseeded
  RNG, worker-pool races, ContextVar discipline, cache-key
  completeness), run via ``python -m repro.analysis --pass dataflow``;
* :mod:`repro.analysis.contracts` — the exception-contract and
  resource-lifecycle analyzer (may-raise fixpoint against declared
  ``@boundary`` contracts, swallowed-error handlers, CFG-based
  resource-leak and unbounded-growth checks), run via
  ``--pass contracts``;
* :mod:`repro.analysis.interlock` — the thread, lock, signal &
  durability-ordering analyzer (lockset race detection across thread
  roots, lock-order cycles, blocking under a lock, signal-handler
  safety, WAL reply-vs-fsync ordering), run via ``--pass interlock``;
* :mod:`repro.analysis.reporters` — text, JSON, and SARIF renderers
  shared by ``repro-route lint`` and ``python -m repro.analysis``.

The same framework gates both *data* (``repro-route lint routing.json``)
and *code* (``python -m repro.analysis src/repro``), and
:mod:`repro.io.routing_json` runs the graph pass on every load so a
malformed file is rejected with a diagnostic instead of failing deep
inside delay code.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    LintConfig,
    Location,
    Rule,
    RuleRegistry,
    Severity,
    registry,
)
from repro.analysis.graph_rules import lint_graph
from repro.analysis.circuit_rules import lint_circuit, lint_rc_system, lint_routing_rc
from repro.analysis.source_rules import lint_source, lint_source_tree
from repro.analysis.reporters import (
    render_json,
    render_sarif,
    render_text,
    summarize,
)

__all__ = [
    "Diagnostic",
    "LintConfig",
    "Location",
    "Rule",
    "RuleRegistry",
    "Severity",
    "lint_circuit",
    "lint_graph",
    "lint_rc_system",
    "lint_routing_rc",
    "lint_source",
    "lint_source_tree",
    "registry",
    "render_json",
    "render_sarif",
    "render_text",
    "summarize",
]
