"""Concurrency model extraction: locks, locksets, thread roots.

This module turns the project model into the facts the interlock rules
consume:

* **Lock discovery** — ``threading.Lock/RLock/Condition/Semaphore``
  bound to instance fields (``self._lock = threading.Lock()`` in any
  method, dataclass ``field(default_factory=threading.Lock)``
  class-level assigns, plain ``threading.Lock`` annotations) or to
  module-level names. ``Condition(self._lock)`` canonicalizes to the
  backing lock, so waiting on the condition under its own lock is not
  "holding a foreign lock".
* **Field typing** — ``self.queue = AdmissionQueue(...)`` (also via
  annotations and dataclass default factories) lets the scanner
  resolve typed attribute chains like ``self.queue.stats.submitted``
  one class hop at a time, which is how shared-counter reads in stats
  frames become visible without polluting the shared call graph.
* **Per-function scanning** — every statement is walked with the
  lexically held lockset: with-block acquisitions (plus linear
  ``.acquire()``/``.release()`` tracking), project call sites, blocking
  external calls, field reads/writes, ``os.replace``-style nonatomic
  durable writes, and raw I/O calls (for the signal-safety rule).
* **Fixpoints** — entry locksets (the meet over call sites of locks a
  function is always entered holding), transitively acquired locks (for
  the lock-order graph), and transitive blocking summaries.
* **Thread-root attribution** — one collapsed ``caller`` root seeded
  from the public service surface, one root per resolved
  ``threading.Thread(target=...)`` body, one per signal handler;
  reachability runs over call + typed-call edges *minus* spawn pairs,
  so a spawner never inherits its spawned body's root.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.analysis.dataflow.callgraph import (
    MUTATING_METHODS,
    CallGraph,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    _dotted_name,
)

if TYPE_CHECKING:
    from repro.analysis.interlock.engine import InterlockOptions

#: Lock-like constructors: dotted name → primitive kind.
LOCK_CONSTRUCTORS = {
    "threading.Lock": "Lock",
    "threading.RLock": "RLock",
    "threading.Condition": "Condition",
    "threading.Semaphore": "Semaphore",
    "threading.BoundedSemaphore": "Semaphore",
}

#: Thread-safe synchronization primitives: fields of these types are
#: exempt from the lockset race rule (their methods are their guard).
SYNC_CONSTRUCTORS = frozenset(LOCK_CONSTRUCTORS) | frozenset({
    "threading.Event", "threading.Barrier", "queue.Queue",
    "queue.SimpleQueue",
})

#: External calls (exact dotted names) that block the calling thread.
BLOCKING_CALLS = frozenset({
    "time.sleep", "os.fsync", "os.fdatasync", "select.select",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "socket.create_connection",
})

#: Attribute-call tails that block regardless of receiver type (socket,
#: pipe, Popen, Event surfaces). ``join``/``poll`` are deliberately
#: absent: ``str.join`` and ``Popen.poll`` (non-blocking) dominate.
BLOCKING_TAILS = frozenset({
    "sendall", "recv", "recv_into", "accept", "connect", "communicate",
    "wait",
})

#: External calls that allocate file handles or perform I/O — forbidden
#: inside signal handlers (with the locks/blocking sets above).
IO_CALLS = frozenset({
    "open", "os.open", "os.fdopen", "os.write", "os.replace",
    "os.rename", "os.unlink", "os.remove", "os.mkdir", "os.makedirs",
    "subprocess.Popen", "shutil.move", "shutil.rmtree",
    "tempfile.mkstemp", "tempfile.NamedTemporaryFile",
})

#: Attribute-call tails doing path I/O (``Path`` surfaces).
IO_TAILS = frozenset({
    "write_text", "read_text", "write_bytes", "read_bytes", "touch",
    "mkdir", "unlink",
})

#: Ad-hoc durable-write finishers that bypass the atomic-write idiom.
NONATOMIC_REPLACERS = frozenset({"os.replace", "os.rename", "shutil.move"})


# ---------------------------------------------------------------------------
# lock & field-type discovery


@dataclass(frozen=True)
class LockInfo:
    """One discovered lock object."""

    #: canonical identity: ``module.Class.field`` or ``module.NAME``.
    id: str
    kind: str  # Lock | RLock | Condition | Semaphore
    #: the lock actually held while acquired — ``id`` except for
    #: ``Condition(other_lock)``, which canonicalizes to the backing lock.
    backing: str
    lineno: int
    path: Path


@dataclass
class ClassConcurrency:
    """Lock fields, sync fields, and typed fields of one class."""

    cls: ClassInfo
    locks: dict[str, LockInfo] = field(default_factory=dict)
    #: fields bound to thread-safe primitives (locks, events, queues).
    sync_fields: set[str] = field(default_factory=set)
    #: field name → project class qualname, for typed-chain resolution.
    field_classes: dict[str, str] = field(default_factory=dict)


def _external_name(module: ModuleInfo, parts: list[str]) -> str:
    target = module.imports.get(parts[0])
    if target is not None:
        return ".".join([target, *parts[1:]])
    return ".".join(parts)


def _resolve_class_name(project: ProjectModel, module: ModuleInfo,
                        parts: list[str]) -> str | None:
    """Project class a dotted name denotes, seen from module scope."""
    candidates = []
    target = module.imports.get(parts[0])
    if target is not None:
        candidates.append(".".join([target, *parts[1:]]))
    candidates.append(".".join([module.name, *parts]))
    for candidate in candidates:
        if candidate in project.classes:
            return candidate
    return None


def _class_from_annotation(project: ProjectModel, module: ModuleInfo,
                           annotation: ast.expr) -> str | None:
    """Project class named by ``X`` / ``X | None`` annotations."""
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op,
                                                       ast.BitOr):
        return (_class_from_annotation(project, module, annotation.left)
                or _class_from_annotation(project, module,
                                          annotation.right))
    parts = _dotted_name(annotation)
    if parts is None or parts[-1] == "None":
        return None
    return _resolve_class_name(project, module, parts)


def _constructed_class(project: ProjectModel, module: ModuleInfo,
                       value: ast.expr) -> str | None:
    """Project class built by ``Cls(...)`` (unwrapping ``a if c else b``)."""
    if isinstance(value, ast.IfExp):
        return (_constructed_class(project, module, value.body)
                or _constructed_class(project, module, value.orelse))
    if not isinstance(value, ast.Call):
        return None
    parts = _dotted_name(value.func)
    if parts is None:
        return None
    return _resolve_class_name(project, module, parts)


def _lock_constructor_of(module: ModuleInfo,
                         value: ast.expr) -> tuple[str, ast.Call] | None:
    """(kind, call node) when ``value`` constructs a lock primitive.

    Recognizes direct ``threading.Lock()`` calls and the dataclass
    idiom ``field(default_factory=threading.Lock)``.
    """
    if not isinstance(value, ast.Call):
        return None
    parts = _dotted_name(value.func)
    if parts is None:
        return None
    name = _external_name(module, parts)
    kind = LOCK_CONSTRUCTORS.get(name)
    if kind is not None:
        return kind, value
    if parts[-1] == "field":
        for kw in value.keywords:
            if kw.arg != "default_factory":
                continue
            factory = _dotted_name(kw.value)
            if factory is None:
                continue
            kind = LOCK_CONSTRUCTORS.get(_external_name(module, factory))
            if kind is not None:
                return kind, value
    return None


def _is_sync_value(module: ModuleInfo, value: ast.expr) -> bool:
    """Whether ``value`` constructs any thread-safe primitive."""
    if isinstance(value, ast.IfExp):
        return (_is_sync_value(module, value.body)
                or _is_sync_value(module, value.orelse))
    if not isinstance(value, ast.Call):
        return False
    parts = _dotted_name(value.func)
    if parts is None:
        return False
    name = _external_name(module, parts)
    if name in SYNC_CONSTRUCTORS:
        return True
    if parts[-1] == "field":
        for kw in value.keywords:
            if kw.arg != "default_factory":
                continue
            factory = _dotted_name(kw.value)
            if (factory is not None
                    and _external_name(module, factory)
                    in SYNC_CONSTRUCTORS):
                return True
    return False


class ConcurrencyTables:
    """Per-class lock/field tables plus module-level locks."""

    def __init__(self, project: ProjectModel):
        self.project = project
        self.classes: dict[str, ClassConcurrency] = {}
        #: canonical lock id → LockInfo, across the whole tree.
        self.locks: dict[str, LockInfo] = {}
        #: module name → {global name → LockInfo}.
        self.module_locks: dict[str, dict[str, LockInfo]] = {}
        for cls_qual in sorted(project.classes):
            self._scan_class(project.classes[cls_qual])
        for name in sorted(project.modules):
            self._scan_module_locks(project.modules[name])

    def _scan_class(self, cls: ClassInfo) -> None:
        module = self.project.modules[cls.module]
        cc = ClassConcurrency(cls=cls)
        self.classes[cls.qualname] = cc

        def note_field(name: str, annotation: ast.expr | None,
                       value: ast.expr | None, lineno: int) -> None:
            if value is not None:
                lock = _lock_constructor_of(module, value)
                if lock is not None:
                    kind, call = lock
                    self._add_lock(cc, name, kind, call, lineno)
                if _is_sync_value(module, value):
                    cc.sync_fields.add(name)
                typed = _constructed_class(self.project, module, value)
                if typed is not None:
                    cc.field_classes.setdefault(name, typed)
            if annotation is not None:
                parts = _dotted_name(annotation)
                if parts is not None:
                    dotted = _external_name(module, parts)
                    if dotted in SYNC_CONSTRUCTORS:
                        cc.sync_fields.add(name)
                    if dotted in LOCK_CONSTRUCTORS and name not in cc.locks:
                        lock_id = f"{cls.qualname}.{name}"
                        cc.locks[name] = LockInfo(
                            id=lock_id, kind=LOCK_CONSTRUCTORS[dotted],
                            backing=lock_id, lineno=lineno, path=cls.path)
                        self.locks[lock_id] = cc.locks[name]
                typed = _class_from_annotation(self.project, module,
                                               annotation)
                if typed is not None:
                    cc.field_classes.setdefault(name, typed)

        # class-level assigns (dataclass fields and plain class attrs)
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                              ast.Name):
                note_field(stmt.target.id, stmt.annotation, stmt.value,
                           stmt.lineno)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        note_field(target.id, None, stmt.value,
                                   stmt.lineno)
        # self-assigns in any method (``__init__`` dominates, but locks
        # created lazily elsewhere count too)
        for fn in self.project.functions.values():
            if fn.module != cls.module or fn.cls != cls.name:
                continue
            for node in ast.walk(fn.node):
                target: ast.expr | None = None
                annotation: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, annotation = node.target, node.annotation
                    value = node.value
                if (not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"):
                    continue
                name = target.attr
                if value is not None:
                    lock = _lock_constructor_of(module, value)
                    if lock is not None:
                        kind, call = lock
                        self._add_lock(cc, name, kind, call, node.lineno)
                    if _is_sync_value(module, value):
                        cc.sync_fields.add(name)
                    typed = _constructed_class(self.project, module, value)
                    if typed is not None:
                        cc.field_classes.setdefault(name, typed)
                if annotation is not None:
                    typed = _class_from_annotation(self.project, module,
                                                   annotation)
                    if typed is not None:
                        cc.field_classes.setdefault(name, typed)

    def _add_lock(self, cc: ClassConcurrency, name: str, kind: str,
                  call: ast.Call, lineno: int) -> None:
        lock_id = f"{cc.cls.qualname}.{name}"
        backing = lock_id
        if kind == "Condition" and call.args:
            # Condition(self._lock): acquiring the condition acquires
            # the backing lock — one canonical identity for both.
            parts = _dotted_name(call.args[0])
            if (parts is not None and len(parts) == 2
                    and parts[0] == "self"):
                backing = f"{cc.cls.qualname}.{parts[1]}"
        cc.locks[name] = LockInfo(id=lock_id, kind=kind, backing=backing,
                                  lineno=lineno, path=cc.cls.path)
        cc.sync_fields.add(name)
        self.locks[lock_id] = cc.locks[name]

    def _scan_module_locks(self, module: ModuleInfo) -> None:
        found: dict[str, LockInfo] = {}
        for stmt in module.source.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            lock = _lock_constructor_of(module, value)
            if lock is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    lock_id = f"{module.name}.{target.id}"
                    found[target.id] = LockInfo(
                        id=lock_id, kind=lock[0], backing=lock_id,
                        lineno=stmt.lineno, path=module.path)
                    self.locks[lock_id] = found[target.id]
        if found:
            self.module_locks[module.name] = found


# ---------------------------------------------------------------------------
# per-function scanning


@dataclass(frozen=True)
class Acquisition:
    """One lock acquisition with the locks lexically held before it."""

    lock: str
    lineno: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class CallSite:
    """One resolved project call with the lexically held lockset."""

    target: str
    lineno: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class BlockingSite:
    """One blocking operation with the lockset held around it."""

    what: str
    lineno: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class FieldSite:
    """One read or write of a class field, with the held lockset."""

    cls: str
    name: str
    lineno: int
    held: tuple[str, ...]
    write: bool


@dataclass
class FunctionSummary:
    """Everything the rules need to know about one function."""

    fn: FunctionInfo
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    blocking: list[BlockingSite] = field(default_factory=list)
    fields: list[FieldSite] = field(default_factory=list)
    #: raw I/O externals (for the signal-safety rule): (name, lineno).
    io_calls: list[tuple[str, int]] = field(default_factory=list)
    #: ``.acquire()`` on receivers the scanner cannot type.
    unknown_acquires: list[int] = field(default_factory=list)
    #: os.replace/os.rename/shutil.move sites: (name, lineno).
    replaces: list[tuple[str, int]] = field(default_factory=list)
    #: durable-write primitives called directly: (name, lineno).
    durable_calls: list[tuple[str, int]] = field(default_factory=list)


class FunctionResolver:
    """Name resolution for one function: calls, locks, typed fields."""

    def __init__(self, tables: ConcurrencyTables, graph: CallGraph,
                 fn: FunctionInfo):
        self.tables = tables
        self.project = tables.project
        self.fn = fn
        self.module = self.project.modules[fn.module]
        self.resolve, self.resolve_class, self.resolve_external = (
            graph._resolver(fn))
        self.cls_qual = (f"{fn.module}.{fn.cls}"
                         if fn.cls is not None else None)
        self.local_types = self._collect_local_types()

    def _collect_local_types(self) -> dict[str, str]:
        types: dict[str, str] = {}
        args = self.fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                cls = _class_from_annotation(self.project, self.module,
                                             arg.annotation)
                if cls is not None:
                    types[arg.arg] = cls
        for node in ast.walk(self.fn.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                annotation = node.annotation
            if not isinstance(target, ast.Name):
                continue
            cls = None
            if annotation is not None:
                cls = _class_from_annotation(self.project, self.module,
                                             annotation)
            if cls is None and value is not None:
                cls = _constructed_class(self.project, self.module, value)
            if cls is not None:
                types.setdefault(target.id, cls)
        return types

    def chain_base(self, parts: list[str]) -> str | None:
        """Class qualname of the chain's leading receiver, if typed."""
        head = parts[0]
        if head == "self":
            return self.cls_qual
        return self.local_types.get(head)

    def field_target(self, parts: list[str]) -> tuple[str, str] | None:
        """(owning class, field) a dotted chain denotes, via typed hops."""
        if len(parts) < 2:
            return None
        cls = self.chain_base(parts)
        if cls is None:
            return None
        for middle in parts[1:-1]:
            cc = self.tables.classes.get(cls)
            nxt = cc.field_classes.get(middle) if cc is not None else None
            if nxt is None:
                return None
            cls = nxt
        return cls, parts[-1]

    def lock_of(self, parts: list[str]) -> LockInfo | None:
        """The lock a dotted receiver chain denotes, if any."""
        target = self.field_target(parts)
        if target is not None:
            cc = self.tables.classes.get(target[0])
            if cc is not None and target[1] in cc.locks:
                return cc.locks[target[1]]
        if len(parts) == 1:
            module_locks = self.tables.module_locks.get(self.module.name)
            if module_locks is not None and parts[0] in module_locks:
                return module_locks[parts[0]]
        dotted = _external_name(self.module, parts)
        return self.tables.locks.get(dotted)

    def call_target(self, parts: list[str]) -> str | None:
        """Project function a dotted call resolves to (graph or typed)."""
        target = self.resolve(parts)
        if target is not None and target != self.fn.qualname:
            return target
        typed = self.field_target(parts)
        if typed is not None:
            method = f"{typed[0]}.{typed[1]}"
            if method in self.project.functions:
                return method
        return None

    def is_sync_field(self, cls: str, name: str) -> bool:
        cc = self.tables.classes.get(cls)
        return cc is not None and name in cc.sync_fields


class FunctionScanner:
    """Walk one function body tracking the lexically held lockset."""

    def __init__(self, resolver: FunctionResolver,
                 options: "InterlockOptions"):
        self.r = resolver
        self.options = options
        self.summary = FunctionSummary(fn=resolver.fn)

    def scan(self) -> FunctionSummary:
        self._block(self.r.fn.node.body, [])
        return self.summary

    # -- statements --

    def _block(self, stmts: list[ast.stmt], held: list[str]) -> None:
        held = list(held)  # acquire()/release() tracking is block-local
        for stmt in stmts:
            self._stmt(stmt, held)

    def _stmt(self, stmt: ast.stmt, held: list[str]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = list(held)
            for item in stmt.items:
                lock = self._lock_of_expr(item.context_expr)
                if lock is not None:
                    self.summary.acquisitions.append(Acquisition(
                        lock=lock.backing, lineno=item.context_expr.lineno,
                        held=tuple(inner)))
                    if lock.backing not in inner:
                        inner.append(lock.backing)
                else:
                    self._expr(item.context_expr, held)
            self._block(stmt.body, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs run later, on their caller's lockset
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, held)
            self._block(stmt.body, held)
            self._block(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, held)
            self._write_target(stmt.target, held)
            self._block(stmt.body, held)
            self._block(stmt.orelse, held)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test, held)
            self._block(stmt.body, held)
            self._block(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self._block(stmt.body, held)
            for handler in stmt.handlers:
                self._block(handler.body, held)
            self._block(stmt.orelse, held)
            self._block(stmt.finalbody, held)
            return
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            if self._acquire_release(stmt.value, held):
                return
            self._expr(stmt.value, held)
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                self._write_target(target, held)
            value = stmt.value
            if value is not None:
                self._expr(value, held)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._write_target(target, held)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child, held)

    def _acquire_release(self, call: ast.Call, held: list[str]) -> bool:
        """Linear ``lock.acquire()``/``lock.release()`` tracking."""
        parts = _dotted_name(call.func)
        if parts is None or len(parts) < 2:
            return False
        if parts[-1] not in ("acquire", "release"):
            return False
        lock = self.r.lock_of(parts[:-1])
        if lock is None:
            return False
        if parts[-1] == "acquire":
            self.summary.acquisitions.append(Acquisition(
                lock=lock.backing, lineno=call.lineno, held=tuple(held)))
            if lock.backing not in held:
                held.append(lock.backing)
        elif lock.backing in held:
            held.remove(lock.backing)
        return True

    def _write_target(self, target: ast.expr, held: list[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._write_target(element, held)
            return
        if isinstance(target, ast.Starred):
            self._write_target(target.value, held)
            return
        if isinstance(target, ast.Subscript):
            self._expr(target.slice, held)
            target = target.value  # d[k] = v mutates d
        parts = (_dotted_name(target)
                 if isinstance(target, ast.Attribute) else None)
        if parts is None:
            if not isinstance(target, ast.Name):
                self._expr(target, held)
            return
        owner = self.r.field_target(parts)
        if owner is not None:
            self.summary.fields.append(FieldSite(
                cls=owner[0], name=owner[1], lineno=target.lineno,
                held=tuple(held), write=True))
        self._read_prefixes(parts[:-1], target.lineno, held)

    # -- expressions --

    def _expr(self, node: ast.expr, held: list[str]) -> None:
        if isinstance(node, ast.Call):
            self._call(node, held)
            return
        if isinstance(node, ast.Attribute):
            parts = _dotted_name(node)
            if parts is not None:
                self._read_prefixes(parts, node.lineno, held)
                return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, held)
            elif isinstance(child, ast.keyword):
                self._expr(child.value, held)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter, held)
                for cond in child.ifs:
                    self._expr(cond, held)

    def _read_prefixes(self, parts: list[str], lineno: int,
                       held: list[str]) -> None:
        """Record a field read for every typed prefix of a chain."""
        for end in range(2, len(parts) + 1):
            owner = self.r.field_target(parts[:end])
            if owner is not None:
                self.summary.fields.append(FieldSite(
                    cls=owner[0], name=owner[1], lineno=lineno,
                    held=tuple(held), write=False))

    def _call(self, call: ast.Call, held: list[str]) -> None:
        parts = _dotted_name(call.func)
        if parts is not None:
            self._dotted_call(call, parts, held)
        else:
            self._expr(call.func, held)
        for arg in call.args:
            self._expr(arg, held)
        for kw in call.keywords:
            self._expr(kw.value, held)

    def _dotted_call(self, call: ast.Call, parts: list[str],
                     held: list[str]) -> None:
        lineno = call.lineno
        target = self.r.call_target(parts)
        if target is not None:
            self.summary.calls.append(CallSite(
                target=target, lineno=lineno, held=tuple(held)))
            if target in self.options.atomic_writers:
                self.summary.durable_calls.append((target, lineno))
            self._read_prefixes(parts[:-1], lineno, held)
            return
        tail = parts[-1]
        if len(parts) >= 2:
            lock = self.r.lock_of(parts[:-1])
            if lock is not None:
                # method surface of a known lock object
                if tail == "acquire":
                    self.summary.acquisitions.append(Acquisition(
                        lock=lock.backing, lineno=lineno,
                        held=tuple(held)))
                elif tail == "wait":
                    foreign = tuple(h for h in held if h != lock.backing)
                    if foreign:
                        self.summary.blocking.append(BlockingSite(
                            what=f"{lock.kind}.wait on {lock.id}",
                            lineno=lineno, held=foreign))
                self._read_prefixes(parts[:-1], lineno, held)
                return
            if tail in MUTATING_METHODS:
                owner = self.r.field_target(parts[:-1])
                if owner is not None and not self.r.is_sync_field(*owner):
                    self.summary.fields.append(FieldSite(
                        cls=owner[0], name=owner[1], lineno=lineno,
                        held=tuple(held), write=True))
                    self._read_prefixes(parts[:-2] or parts[:-1],
                                        lineno, held)
                    return
        name = self.r.resolve_external(parts)
        if name in BLOCKING_CALLS or (len(parts) >= 2
                                      and tail in BLOCKING_TAILS):
            self.summary.blocking.append(BlockingSite(
                what=name, lineno=lineno, held=tuple(held)))
        if name in IO_CALLS or (len(parts) >= 2 and tail in IO_TAILS):
            self.summary.io_calls.append((name, lineno))
        if name in NONATOMIC_REPLACERS:
            self.summary.replaces.append((name, lineno))
        if name in self.options.durable_write_calls:
            self.summary.durable_calls.append((name, lineno))
        if len(parts) >= 2 and tail == "acquire":
            self.summary.unknown_acquires.append(lineno)
        self._read_prefixes(parts[:-1], lineno, held)

    def _lock_of_expr(self, expr: ast.expr) -> LockInfo | None:
        parts = _dotted_name(expr)
        if parts is None:
            return None
        return self.r.lock_of(parts)


def scan_function(tables: ConcurrencyTables, graph: CallGraph,
                  fn: FunctionInfo,
                  options: "InterlockOptions") -> FunctionSummary:
    resolver = FunctionResolver(tables, graph, fn)
    return FunctionScanner(resolver, options).scan()


# ---------------------------------------------------------------------------
# whole-program fixpoints


def entry_locksets(summaries: dict[str, FunctionSummary],
                   spawn_targets: set[str],
                   signal_handlers: set[str]
                   ) -> dict[str, frozenset[str] | None]:
    """Locks a function is *always* entered holding (``None`` = ⊤).

    The meet over every in-project call site of (locks held at the site
    ∪ the caller's own entry lockset). Functions with no in-project call
    sites — and thread bodies / signal handlers, which the runtime
    enters lock-free regardless of direct calls — seed the fixpoint at
    the empty set. Mutually-recursive dead code can stay at ⊤; rules
    treat ⊤ as "no constraint", which only ever suppresses findings in
    unreachable corners.
    """
    callers: dict[str, list[tuple[str, frozenset[str]]]] = {}
    for qualname, summary in summaries.items():
        for site in summary.calls:
            callers.setdefault(site.target, []).append(
                (qualname, frozenset(site.held)))
    entry: dict[str, frozenset[str] | None] = {}
    for qualname in summaries:
        if (qualname not in callers or qualname in spawn_targets
                or qualname in signal_handlers):
            entry[qualname] = frozenset()
        else:
            entry[qualname] = None  # ⊤, to be narrowed
    changed = True
    while changed:
        changed = False
        for qualname, sites in callers.items():
            if qualname not in entry or entry[qualname] == frozenset():
                continue
            met: frozenset[str] | None = None
            for caller, held in sites:
                caller_entry = entry.get(caller, frozenset())
                if caller_entry is None:
                    continue  # ⊤ contributes no constraint yet
                contribution = held | caller_entry
                met = (contribution if met is None
                       else met & contribution)
            if met is not None and met != entry[qualname]:
                current = entry[qualname]
                entry[qualname] = (met if current is None
                                   else current & met)
                changed = True
    return entry


def transitive_acquisitions(summaries: dict[str, FunctionSummary]
                            ) -> dict[str, frozenset[str]]:
    """Locks each function may acquire, transitively via project calls."""
    acquired = {qualname: {a.lock for a in summary.acquisitions}
                for qualname, summary in summaries.items()}
    changed = True
    while changed:
        changed = False
        for qualname, summary in summaries.items():
            for site in summary.calls:
                extra = acquired.get(site.target, set())
                if not extra <= acquired[qualname]:
                    acquired[qualname] |= extra
                    changed = True
    return {qualname: frozenset(locks)
            for qualname, locks in acquired.items()}


def transitive_blocking(summaries: dict[str, FunctionSummary]
                        ) -> dict[str, frozenset[str]]:
    """Blocking operations each function may reach via project calls."""
    blocks = {qualname: {site.what for site in summary.blocking}
              for qualname, summary in summaries.items()}
    changed = True
    while changed:
        changed = False
        for qualname, summary in summaries.items():
            for site in summary.calls:
                extra = blocks.get(site.target, set())
                if not extra <= blocks[qualname]:
                    blocks[qualname] |= extra
                    changed = True
    return {qualname: frozenset(ops) for qualname, ops in blocks.items()}


# ---------------------------------------------------------------------------
# thread-root attribution


def root_label(project: ProjectModel, kind: str, qualname: str) -> str:
    fn = project.functions.get(qualname)
    if fn is None:
        return f"{kind}:{qualname}"
    suffix = f"{fn.cls}.{fn.name}" if fn.cls is not None else fn.name
    return f"{kind}:{suffix}"


def thread_roots(project: ProjectModel, graph: CallGraph,
                 summaries: dict[str, FunctionSummary],
                 entry_prefixes: Iterable[str]) -> dict[str, set[str]]:
    """Map function → set of thread-root labels that can reach it.

    Roots: one collapsed ``caller`` root (BFS from every public
    function under the entry prefixes — the main thread plus anything
    the embedding process calls), one root per resolved thread-spawn
    target, one per resolved signal handler. Reachability runs over
    call-graph edges plus the scanner's typed call edges, minus spawn
    pairs (a spawned body runs on its own thread, not its spawner's).
    """
    adjacency: dict[str, set[str]] = {}
    for qualname, summary in summaries.items():
        edges = set(graph.edges.get(qualname, ()))
        edges.update(site.target for site in summary.calls)
        edges -= {target for spawner, target in graph.spawn_pairs
                  if spawner == qualname}
        adjacency[qualname] = edges

    prefixes = tuple(entry_prefixes)
    caller_seeds = [
        fn.qualname for fn in project.functions.values()
        if fn.is_public and any(
            fn.module == p or fn.module.startswith(p + ".")
            for p in prefixes)]
    seeds: list[tuple[str, list[str]]] = [("caller", caller_seeds)]
    for spawn in graph.thread_spawns:
        if spawn.target is not None:
            seeds.append((root_label(project, "thread", spawn.target),
                          [spawn.target]))
    for registration in graph.signal_registrations:
        if registration.handler is not None:
            seeds.append((root_label(project, "signal",
                                     registration.handler),
                          [registration.handler]))

    roots: dict[str, set[str]] = {}
    for label, start in seeds:
        frontier = [q for q in start if q in adjacency]
        seen = set(frontier)
        while frontier:
            next_frontier: list[str] = []
            for qualname in frontier:
                roots.setdefault(qualname, set()).add(label)
                for callee in adjacency.get(qualname, ()):
                    if callee not in seen and callee in adjacency:
                        seen.add(callee)
                        next_frontier.append(callee)
            frontier = next_frontier
    return roots
