"""The interlock rule pack: thread, lock, signal & durability rules.

Each rule receives the whole-program :class:`~repro.analysis.interlock
.engine.InterlockModel` (project + thread-aware call graph + lockset
fixpoints) and yields diagnostics anchored where the discipline breaks:
the first unguarded write of a racy field, the acquisition closing a
lock-order cycle, the call that blocks while holding a lock, the
``signal.signal`` registration of an unsafe handler, the reply that can
outrun its WAL record. Every rule is waivable with the standard
``# repro: allow=<rule-id>`` pragma on the flagged line; the engine
audits pragmas that waive nothing.

Rule ids are stable; the catalog lives in ``docs/static_analysis.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    registry,
    rule,
)
from repro.analysis.dataflow.callgraph import FunctionInfo, SignalRegistration
from repro.analysis.interlock.concurrency import (
    FunctionResolver,
    FunctionScanner,
    FunctionSummary,
)

if TYPE_CHECKING:
    from repro.analysis.interlock.engine import InterlockModel


def _short(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


def _lock_short(lock_id: str) -> str:
    """``repro.service.admission.AdmissionQueue._lock`` → short form."""
    parts = lock_id.rsplit(".", 2)
    return ".".join(parts[-2:]) if len(parts) >= 2 else lock_id


@rule("interlock-unguarded-shared-field", category="interlock",
      severity=Severity.ERROR,
      summary="a field is written from multiple thread roots without a "
              "consistent lock",
      rationale="the daemon's stats frames, WAL bookkeeping, and "
                "admission counters are read by the reader/accept "
                "threads while the executor mutates them; a field whose "
                "sites do not share one lock can tear mid-read and "
                "ship a corrupt frame or replay decision")
def check_unguarded_shared_field(model: "InterlockModel"
                                 ) -> Iterator[Diagnostic]:
    r = registry.get("interlock-unguarded-shared-field")
    sites: dict[tuple[str, str], list[tuple]] = {}
    for qualname in sorted(model.summaries):
        summary = model.summaries[qualname]
        roots = model.roots.get(qualname, set())
        if not roots:
            continue  # unreachable code cannot race
        init_names = {"__init__", "__post_init__"}
        for site in summary.fields:
            if (summary.fn.cls is not None
                    and summary.fn.name in init_names
                    and f"{summary.fn.module}.{summary.fn.cls}"
                    == site.cls):
                continue  # construction happens-before publication
            cc = model.tables.classes.get(site.cls)
            if cc is None or site.name in cc.sync_fields:
                continue
            sites.setdefault((site.cls, site.name), []).append(
                (summary.fn, site, roots))
    for (cls, name), entries in sorted(sites.items()):
        writes = [e for e in entries if e[1].write]
        if not writes:
            continue
        all_roots: set[str] = set()
        guard: frozenset[str] | None = None
        for fn, site, roots in entries:
            all_roots |= roots
            effective = model.effective_lockset(fn.qualname, site.held)
            if effective is None:
                continue  # ⊤: never-called context constrains nothing
            guard = effective if guard is None else guard & effective
        if len(all_roots) < 2 or (guard is None or guard):
            continue
        anchor_fn, anchor, _ = min(
            writes, key=lambda e: (str(e[0].path), e[1].lineno))
        unguarded_writes = [
            e for e in writes
            if not model.effective_lockset(e[0].qualname, e[1].held)]
        if unguarded_writes:
            anchor_fn, anchor, _ = min(
                unguarded_writes,
                key=lambda e: (str(e[0].path), e[1].lineno))
        if model.allows(r.id, anchor_fn.path, anchor.lineno):
            continue
        roots_desc = ", ".join(sorted(all_roots))
        yield r.diagnostic(
            f"{_short(cls)}.{name} is written from thread roots "
            f"[{roots_desc}] with no lock common to all "
            f"{len(entries)} access sites",
            location=Location(file=str(anchor_fn.path),
                              line=anchor.lineno,
                              obj=anchor_fn.qualname),
            hint="guard every access with the owning object's lock "
                 "(or move the reads behind a locked snapshot method "
                 "like AdmissionQueue.stats_snapshot)")


@rule("interlock-lock-order", category="interlock",
      severity=Severity.ERROR,
      summary="two locks are acquired in opposite orders on different "
              "paths",
      rationale="an acquired-while-holding cycle deadlocks the first "
                "time the two paths interleave under load — precisely "
                "when the routing daemon is busiest and a hang costs "
                "the most")
def check_lock_order(model: "InterlockModel") -> Iterator[Diagnostic]:
    r = registry.get("interlock-lock-order")
    # held-lock → acquired-lock → earliest witness site
    edges: dict[str, dict[str, tuple[str, int, str]]] = {}

    def add_edge(held: str, acquired: str, fn: FunctionInfo,
                 lineno: int) -> None:
        if held == acquired:
            return
        witness = (str(fn.path), lineno, fn.qualname)
        current = edges.setdefault(held, {}).get(acquired)
        if current is None or witness < current:
            edges[held][acquired] = witness

    for qualname in sorted(model.summaries):
        summary = model.summaries[qualname]
        for acq in summary.acquisitions:
            for held in acq.held:
                add_edge(held, acq.lock, summary.fn, acq.lineno)
        for site in summary.calls:
            if not site.held:
                continue
            for lock in model.acquired.get(site.target, ()):
                for held in site.held:
                    add_edge(held, lock, summary.fn, site.lineno)

    for component in _cycles(edges):
        witnesses = sorted(
            edges[a][b] for a in component for b in edges.get(a, ())
            if b in component)
        path, lineno, obj = witnesses[0]
        if model.allows(r.id, path, lineno):
            continue
        cycle = " ↔ ".join(_lock_short(lock) for lock in
                           sorted(component))
        yield r.diagnostic(
            f"lock-order cycle: {cycle} are each acquired while the "
            f"other is held",
            location=Location(file=path, line=lineno, obj=obj),
            hint="pick one global order for these locks and release "
                 "before crossing, or collapse them into one lock")


def _cycles(edges: dict[str, dict[str, tuple]]) -> list[frozenset[str]]:
    """Strongly connected components of size ≥ 2 (Tarjan, iterative)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    out: list[frozenset[str]] = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) >= 2:
                    out.append(frozenset(component))

    for node in sorted(edges):
        if node not in index:
            strongconnect(node)
    return sorted(out, key=sorted)


@rule("interlock-blocking-under-lock", category="interlock",
      severity=Severity.ERROR,
      summary="a blocking operation runs while a lock is held",
      rationale="fsync, sleeps, socket and subprocess waits under a "
                "lock convert one slow client or disk stall into a "
                "stall of every thread contending for that lock; the "
                "admission queue and stats paths must stay "
                "wait-free outside their own condition")
def check_blocking_under_lock(model: "InterlockModel"
                              ) -> Iterator[Diagnostic]:
    r = registry.get("interlock-blocking-under-lock")
    for qualname in sorted(model.summaries):
        summary = model.summaries[qualname]
        fn = summary.fn
        for site in summary.blocking:
            if not site.held:
                continue
            if model.allows(r.id, fn.path, site.lineno):
                continue
            held = ", ".join(_lock_short(lock) for lock in site.held)
            yield r.diagnostic(
                f"{site.what} blocks while holding [{held}]",
                location=Location(file=str(fn.path), line=site.lineno,
                                  obj=fn.qualname),
                hint="move the blocking call outside the critical "
                     "section; snapshot state under the lock, then "
                     "block")
        for site in summary.calls:
            if not site.held:
                continue
            ops = model.blocking.get(site.target, frozenset())
            if not ops:
                continue
            if model.allows(r.id, fn.path, site.lineno):
                continue
            held = ", ".join(_lock_short(lock) for lock in site.held)
            yield r.diagnostic(
                f"call to {_short(site.target)} may block "
                f"({', '.join(sorted(ops))}) while holding [{held}]",
                location=Location(file=str(fn.path), line=site.lineno,
                                  obj=fn.qualname),
                hint="move the blocking call outside the critical "
                     "section; snapshot state under the lock, then "
                     "block")


@rule("interlock-signal-handler-unsafe", category="interlock",
      severity=Severity.ERROR,
      summary="a signal handler acquires locks, opens handles, or "
              "performs I/O",
      rationale="Python runs handlers between bytecodes on the main "
                "thread: a handler that takes a lock the interrupted "
                "frame already holds self-deadlocks, and buffered I/O "
                "is not reentrant — handlers may only set Events and "
                "flags, which is all drain/shutdown needs")
def check_signal_handler_unsafe(model: "InterlockModel"
                                ) -> Iterator[Diagnostic]:
    r = registry.get("interlock-signal-handler-unsafe")
    for registration in model.graph.signal_registrations:
        violations = _handler_violations(model, registration)
        if not violations:
            continue
        if model.allows(r.id, registration.path, registration.lineno):
            continue
        handler_name = (registration.handler
                        or f"{registration.registrar}.<"
                           f"{registration.handler_node.name}>")
        detail = "; ".join(violations[:4])
        yield r.diagnostic(
            f"handler {_short(handler_name)} is not async-signal-safe: "
            f"{detail}",
            location=Location(file=str(registration.path),
                              line=registration.lineno,
                              obj=registration.registrar),
            hint="restrict the handler to Event.set() / flag writes "
                 "and do the real work on a worker thread that waits "
                 "on the event")


def _handler_violations(model: "InterlockModel",
                        registration: SignalRegistration) -> list[str]:
    summaries: list[FunctionSummary] = []
    frontier: list[str] = []
    seen: set[str] = set()
    if registration.handler is not None:
        frontier.append(registration.handler)
    elif registration.handler_node is not None:
        registrar = model.project.functions.get(registration.registrar)
        if registrar is None:
            return []
        node = registration.handler_node
        synthetic = FunctionInfo(
            qualname=f"{registrar.qualname}.<{node.name}>",
            module=registrar.module, name=node.name, cls=registrar.cls,
            node=node, path=registrar.path)
        resolver = FunctionResolver(model.tables, model.graph, synthetic)
        summary = FunctionScanner(resolver, model.options).scan()
        summaries.append(summary)
        frontier.extend(site.target for site in summary.calls)
    while frontier:
        qualname = frontier.pop()
        if qualname in seen:
            continue
        seen.add(qualname)
        summary = model.summaries.get(qualname)
        if summary is None:
            continue
        summaries.append(summary)
        frontier.extend(site.target for site in summary.calls)
    violations: list[str] = []
    for summary in summaries:
        where = _short(summary.fn.qualname)
        for acq in summary.acquisitions:
            violations.append(
                f"acquires {_lock_short(acq.lock)} (line {acq.lineno}, "
                f"{where})")
        for lineno in summary.unknown_acquires:
            violations.append(
                f"calls .acquire() (line {lineno}, {where})")
        for site in summary.blocking:
            violations.append(
                f"may block in {site.what} (line {site.lineno}, {where})")
        for name, lineno in summary.io_calls:
            violations.append(
                f"performs I/O via {name} (line {lineno}, {where})")
    return violations


@rule("interlock-reply-before-fsync", category="interlock",
      severity=Severity.ERROR,
      summary="a client reply can execute before its WAL record is "
              "durable",
      rationale="exactly-once recovery holds only if the admit append "
                "(fsynced) dominates the reply and every reply can "
                "reach a terminal done record; a reply that outruns "
                "its journal entry is a promise a crash erases")
def check_reply_before_fsync(model: "InterlockModel"
                             ) -> Iterator[Diagnostic]:
    r = registry.get("interlock-reply-before-fsync")
    for issue in model.reply_issues:
        if model.allows(r.id, issue.fn.path, issue.lineno):
            continue
        if issue.kind == "reply-before-admit":
            message = (f"reply in {_short(issue.fn.qualname)} can "
                       f"execute before the WAL admit append on the "
                       f"same path")
            hint = ("append and fsync the admit record before any "
                    "code that can reach the reply")
        else:
            message = (f"reply in {_short(issue.fn.qualname)} cannot "
                       f"reach a WAL done append on any path")
            hint = ("follow every delivered reply with wal.done(seq) "
                    "so recovery does not replay it")
        yield r.diagnostic(
            message,
            location=Location(file=str(issue.fn.path), line=issue.lineno,
                              obj=issue.fn.qualname),
            hint=hint)


@rule("interlock-nonatomic-durable-write", category="interlock",
      severity=Severity.ERROR,
      summary="an ad-hoc replace/rename bypasses the atomic-write "
              "helper",
      rationale="a bare os.replace outside atomic_write_text skips the "
                "write-to-sidecar-then-fsync sequence, so a crash "
                "between write and rename leaves a torn or missing "
                "durable file where recovery expects valid JSON")
def check_nonatomic_durable_write(model: "InterlockModel"
                                  ) -> Iterator[Diagnostic]:
    r = registry.get("interlock-nonatomic-durable-write")
    blessed = set(model.options.atomic_writers)
    for qualname in sorted(model.summaries):
        if qualname in blessed:
            continue
        summary = model.summaries[qualname]
        for name, lineno in summary.replaces:
            if model.allows(r.id, summary.fn.path, lineno):
                continue
            yield r.diagnostic(
                f"{name} in {_short(qualname)} is not routed through "
                f"the atomic-write helper",
                location=Location(file=str(summary.fn.path), line=lineno,
                                  obj=qualname),
                hint="write via repro.runtime.journal.atomic_write_text "
                     "(sidecar + fsync + replace) instead")


@rule("interlock-daemon-thread-durable-io", category="interlock",
      severity=Severity.WARNING,
      summary="a daemon=True thread reaches durable-write code",
      rationale="daemon threads are killed mid-write at interpreter "
                "exit: a WAL append or atomic write on a daemon thread "
                "can be truncated with no exception ever raised — "
                "either make the thread non-daemon and join it, or "
                "waive with the recovery argument spelled out")
def check_daemon_thread_durable_io(model: "InterlockModel"
                                   ) -> Iterator[Diagnostic]:
    r = registry.get("interlock-daemon-thread-durable-io")
    for spawn in model.graph.thread_spawns:
        if not spawn.daemon or spawn.target is None:
            continue
        if spawn.target not in model.durable_closure:
            continue
        if model.allows(r.id, spawn.path, spawn.lineno):
            continue
        yield r.diagnostic(
            f"daemon thread body {_short(spawn.target)} reaches "
            f"durable-write code",
            location=Location(file=str(spawn.path), line=spawn.lineno,
                              obj=spawn.spawner),
            hint="make the thread non-daemon and join it on shutdown, "
                 "or waive with a comment explaining why torn tails "
                 "are recoverable")


#: The interlock waiver audit; the engine runs it after every other rule.
WAIVER_AUDIT_RULE = "interlock-unused-waiver"


@rule(WAIVER_AUDIT_RULE, category="interlock", severity=Severity.WARNING,
      summary="an interlock allow-pragma waives nothing",
      rationale="a stale waiver hides the next real violation on its "
                "line; interlock waivers must each suppress a live "
                "diagnostic and carry a justification")
def check_unused_interlock_waiver(model: "InterlockModel"
                                  ) -> Iterator[Diagnostic]:
    r = registry.get(WAIVER_AUDIT_RULE)
    for name in sorted(model.project.modules):
        module = model.project.modules[name]
        for lineno, rule_id in module.source.waiver_lines():
            if rule_id == "all" or rule_id not in registry:
                continue  # unknown ids are the source pass's finding
            if registry.get(rule_id).category != "interlock":
                continue
            if (lineno, rule_id) not in module.source.used_waivers:
                yield r.diagnostic(
                    f"pragma waives {rule_id!r} but nothing here "
                    f"violates it",
                    location=Location(file=str(module.path), line=lineno),
                    hint="delete the stale pragma (or fix the rule id)")
