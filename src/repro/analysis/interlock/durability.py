"""Durability-ordering checks over the per-function CFG.

The WAL recovery contract (PR 9) is exactly-once *only if* two CFG
orderings hold wherever the daemon talks to clients:

* **admit-before-reply** — on any path that both replies to a client
  and appends a WAL ``admit`` record, the admit append (which fsyncs)
  must dominate the reply. A reply that can execute before its admit
  record is a promise the journal cannot keep across a crash.
* **reply-then-done** — a function that both replies and writes WAL
  ``done`` records must be able to reach a ``done`` append from every
  reply site; a reply with no terminal record behind it replays as a
  duplicate on recovery.

Both checks reuse the PR-6 statement CFG (``contracts.lifecycle``):
classification looks only at each node's *own* expressions (an ``if``
head owns its test, a ``with`` head its context expressions) so calls
in nested bodies are attributed to their own nodes, and traversal runs
over normal and exception successors — an ordering that only holds on
the happy path does not hold.

The module also computes the admit/done/durable call closures the
daemon-thread and nonatomic-write rules consume.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.analysis.contracts.lifecycle import _Builder, _Node
from repro.analysis.dataflow.callgraph import (
    CallGraph,
    FunctionInfo,
    ProjectModel,
    _dotted_name,
)
from repro.analysis.interlock.concurrency import (
    ConcurrencyTables,
    FunctionResolver,
    FunctionSummary,
)

if TYPE_CHECKING:
    from repro.analysis.interlock.engine import InterlockOptions


@dataclass(frozen=True)
class ReplyOrderingIssue:
    """One reply call that violates a durability ordering."""

    fn: FunctionInfo
    lineno: int
    kind: str  # "reply-before-admit" | "reply-without-done"


# ---------------------------------------------------------------------------
# WAL method seeds and call closures


def wal_seeds(project: ProjectModel,
              options: "InterlockOptions") -> tuple[set[str], set[str]]:
    """(admit methods, done methods) of every WAL-marked class."""
    admit: set[str] = set()
    done: set[str] = set()
    for cls_qual, cls in project.classes.items():
        if not any(marker in cls.name
                   for marker in options.wal_class_markers):
            continue
        for method in options.durable_admit_methods:
            qualname = f"{cls_qual}.{method}"
            if qualname in project.functions:
                admit.add(qualname)
        for method in options.durable_done_methods:
            qualname = f"{cls_qual}.{method}"
            if qualname in project.functions:
                done.add(qualname)
    return admit, done


def call_closure(summaries: dict[str, FunctionSummary],
                 seeds: Iterable[str],
                 extra_edges: Iterable[tuple[str, str]] = ()
                 ) -> set[str]:
    """Functions that can reach a seed through project calls.

    ``extra_edges`` adds caller→callee pairs beyond the scanned call
    sites (the daemon-thread rule passes spawn pairs: a spawner *causes*
    its body's writes even though it never calls it).
    """
    reverse: dict[str, set[str]] = {}
    for qualname, summary in summaries.items():
        for site in summary.calls:
            reverse.setdefault(site.target, set()).add(qualname)
    for caller, callee in extra_edges:
        reverse.setdefault(callee, set()).add(caller)
    closure = {seed for seed in seeds if seed in summaries}
    frontier = list(closure)
    while frontier:
        target = frontier.pop()
        for caller in reverse.get(target, ()):
            if caller not in closure:
                closure.add(caller)
                frontier.append(caller)
    return closure


def durable_reachers(summaries: dict[str, FunctionSummary],
                     graph: CallGraph, admit_seeds: set[str],
                     done_seeds: set[str]) -> set[str]:
    """Functions from which durable writes are reachable, spawn-aware."""
    seeds = set(admit_seeds) | set(done_seeds)
    seeds.update(qualname for qualname, summary in summaries.items()
                 if summary.durable_calls)
    return call_closure(summaries, seeds, extra_edges=graph.spawn_pairs)


# ---------------------------------------------------------------------------
# CFG classification


def _own_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions evaluated *at* a CFG node, not in nested bodies."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [stmt]


def _forward_reach(starts: Iterable[_Node],
                   blocked: frozenset[int] = frozenset(),
                   follow_back_edges: bool = True) -> set[_Node]:
    """Nodes reachable over succ ∪ exc; blocked nodes are not expanded.

    With ``follow_back_edges=False``, edges that re-enter a loop head
    from inside its own body are skipped: what is reachable only via
    the next iteration belongs to the *next* request, not this one's
    ordering obligations.
    """
    seen: set[_Node] = set()
    stack = list(starts)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if id(node) in blocked:
            continue
        for succ in [*node.succ, *node.exc]:
            if follow_back_edges or not _is_back_edge(node, succ):
                stack.append(succ)
    return seen


def _is_back_edge(src: _Node, dst: _Node) -> bool:
    """Whether src→dst jumps back to a loop head enclosing ``src``."""
    if src.stmt is None or dst.stmt is None:
        return False
    if not isinstance(dst.stmt, (ast.While, ast.For, ast.AsyncFor)):
        return False
    end = getattr(dst.stmt, "end_lineno", None)
    return (dst.stmt.lineno <= src.stmt.lineno
            and (end is None or src.stmt.lineno <= end))


def check_reply_ordering(tables: ConcurrencyTables, graph: CallGraph,
                         summaries: dict[str, FunctionSummary],
                         admit_closure: set[str], done_closure: set[str],
                         options: "InterlockOptions"
                         ) -> list[ReplyOrderingIssue]:
    """Run the admit-dominates-reply and reply-reaches-done checks."""
    issues: list[ReplyOrderingIssue] = []
    for qualname in sorted(summaries):
        summary = summaries[qualname]
        fn = summary.fn
        has_reply = any(
            isinstance(inner, ast.Call) and _call_tail(inner)
            in options.reply_names
            for inner in ast.walk(fn.node))
        if not has_reply:
            continue
        resolver = FunctionResolver(tables, graph, fn)
        cfg = _Builder().build(fn.node.body)
        reply_nodes: dict[_Node, int] = {}
        admit_nodes: dict[_Node, int] = {}
        done_nodes: set[_Node] = set()
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            for root in _own_exprs(node.stmt):
                for inner in ast.walk(root):
                    if not isinstance(inner, ast.Call):
                        continue
                    tail = _call_tail(inner)
                    if tail in options.reply_names:
                        reply_nodes.setdefault(node, inner.lineno)
                    parts = _dotted_name(inner.func)
                    if parts is None:
                        continue
                    target = resolver.call_target(parts)
                    if target is None:
                        continue
                    if target in admit_closure:
                        admit_nodes[node] = min(
                            admit_nodes.get(node, inner.lineno),
                            inner.lineno)
                    if target in done_closure:
                        done_nodes.add(node)
        if not reply_nodes:
            continue
        entry = cfg.nodes[0]
        if admit_nodes:
            # Check A: no reply may execute while its admit is pending.
            # The pending admit must lie lexically *after* the reply
            # and be reachable without re-entering a loop: what the
            # next iteration admits is the next request, not this one.
            blocked = frozenset(id(node) for node in admit_nodes)
            before_admit = _forward_reach([entry], blocked=blocked)
            for node, lineno in sorted(reply_nodes.items(),
                                       key=lambda item: item[1]):
                if node in admit_nodes or node not in before_admit:
                    continue
                after = _forward_reach([*node.succ, *node.exc],
                                       follow_back_edges=False)
                if any(admit_line > lineno
                       for admit_node, admit_line in admit_nodes.items()
                       if admit_node in after):
                    issues.append(ReplyOrderingIssue(
                        fn=fn, lineno=lineno, kind="reply-before-admit"))
        elif done_nodes:
            # Check B: every reply must be able to reach a done append
            # within its own iteration (a later request's done record
            # does not terminate this request's WAL entry).
            for node, lineno in sorted(reply_nodes.items(),
                                       key=lambda item: item[1]):
                after = _forward_reach([*node.succ, *node.exc],
                                       follow_back_edges=False)
                if not after & done_nodes:
                    issues.append(ReplyOrderingIssue(
                        fn=fn, lineno=lineno, kind="reply-without-done"))
    return issues


def _call_tail(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
