"""Interlock pass driver: options, whole-program model, entry point.

Mirrors the dataflow/contracts engines: ``build_interlock_model``
parses the tree, builds the (thread-spawn-aware) call graph, scans
every function for lock/field/blocking facts, and runs the concurrency
fixpoints once; ``analyze_interlock`` feeds the resulting model to the
``interlock-*`` rule pack with the usual waiver-audit-last ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    ModuleInfo,
    ProjectModel,
    build_project,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    LintConfig,
    Location,
    Severity,
    registry,
    sort_diagnostics,
)
from repro.analysis.interlock.concurrency import (
    ConcurrencyTables,
    FunctionSummary,
    entry_locksets,
    scan_function,
    thread_roots,
    transitive_acquisitions,
    transitive_blocking,
)
from repro.analysis.interlock.durability import (
    ReplyOrderingIssue,
    call_closure,
    check_reply_ordering,
    durable_reachers,
    wal_seeds,
)


@dataclass(frozen=True)
class InterlockOptions:
    """Repo-default knobs for the interlock pass."""

    #: Modules whose public functions seed the collapsed ``caller``
    #: thread root (the embedding process / main thread).
    entry_prefixes: tuple[str, ...] = ("repro.service",)
    #: Callable names that deliver a frame to the client.
    reply_names: tuple[str, ...] = ("reply",)
    #: Class-name substrings marking write-ahead-log classes.
    wal_class_markers: tuple[str, ...] = ("WAL",)
    #: WAL methods whose append must dominate any client reply.
    durable_admit_methods: tuple[str, ...] = ("admit",)
    #: WAL methods that terminate an entry after the reply.
    durable_done_methods: tuple[str, ...] = ("done",)
    #: Blessed atomic-write helpers; ``os.replace`` elsewhere is ad hoc.
    atomic_writers: tuple[str, ...] = (
        "repro.runtime.journal.atomic_write_text",)
    #: Primitives that make bytes durable (used for the daemon-thread
    #: rule's notion of "writes durable state").
    durable_write_calls: tuple[str, ...] = ("os.fsync", "os.fdatasync")


class InterlockModel:
    """Everything the interlock rules need, computed once."""

    def __init__(self, project: ProjectModel, graph: CallGraph,
                 options: InterlockOptions):
        self.project = project
        self.graph = graph
        self.options = options
        self.tables = ConcurrencyTables(project)
        self.summaries: dict[str, FunctionSummary] = {
            qualname: scan_function(self.tables, graph,
                                    project.functions[qualname], options)
            for qualname in sorted(project.functions)}
        self.spawn_targets = {target for _, target in graph.spawn_pairs}
        self.signal_handlers = {
            registration.handler
            for registration in graph.signal_registrations
            if registration.handler is not None}
        self.entry_locksets = entry_locksets(
            self.summaries, self.spawn_targets, self.signal_handlers)
        self.acquired = transitive_acquisitions(self.summaries)
        self.blocking = transitive_blocking(self.summaries)
        self.roots = thread_roots(project, graph, self.summaries,
                                  options.entry_prefixes)
        admit_seeds, done_seeds = wal_seeds(project, options)
        self.admit_closure = call_closure(self.summaries, admit_seeds)
        self.done_closure = call_closure(self.summaries, done_seeds)
        self.durable_closure = durable_reachers(
            self.summaries, graph, admit_seeds, done_seeds)
        self.reply_issues: list[ReplyOrderingIssue] = check_reply_ordering(
            self.tables, graph, self.summaries, self.admit_closure,
            self.done_closure, options)
        self._module_by_path = {module.path: module
                                for module in project.modules.values()}

    def module_at(self, path: str | Path) -> ModuleInfo | None:
        return self._module_by_path.get(Path(path))

    def allows(self, rule_id: str, path: str | Path, lineno: int) -> bool:
        module = self.module_at(path)
        if module is None:
            return False
        return module.source.allows(rule_id, lineno)

    def effective_lockset(self, qualname: str,
                          held: tuple[str, ...]) -> frozenset[str] | None:
        """Lexically held locks ∪ the function's entry lockset.

        ``None`` means ⊤ (the function was never observed being called;
        any guard requirement is vacuously satisfied there).
        """
        entry = self.entry_locksets.get(qualname, frozenset())
        if entry is None:
            return None
        return frozenset(held) | entry


def build_interlock_model(paths: Iterable[str | Path],
                          options: InterlockOptions | None = None
                          ) -> InterlockModel:
    """Parse, build the call graph, run the concurrency fixpoints."""
    opts = options or InterlockOptions()
    project = build_project(paths)
    graph = CallGraph(project)
    return InterlockModel(project=project, graph=graph, options=opts)


def analyze_interlock(paths: Iterable[str | Path],
                      config: LintConfig | None = None,
                      options: InterlockOptions | None = None
                      ) -> list[Diagnostic]:
    """Run every enabled interlock rule over the tree under ``paths``.

    As in the other passes, the waiver audit runs after every other rule
    so it can see which pragmas were consumed.
    """
    from repro.analysis.interlock.rules import WAIVER_AUDIT_RULE

    model = build_interlock_model(paths, options)
    cfg = config or LintConfig()

    out: list[Diagnostic] = []
    for path, (lineno, message) in sorted(model.project.parse_errors.items()):
        out.append(Diagnostic(
            rule="source-syntax-error", severity=Severity.ERROR,
            message=f"syntax error: {message}",
            location=Location(file=str(path), line=lineno)))

    main_cfg = LintConfig(
        disabled=cfg.disabled | {WAIVER_AUDIT_RULE},
        severity_overrides=cfg.severity_overrides)
    out.extend(registry.run("interlock", model, main_cfg))
    if cfg.enabled(WAIVER_AUDIT_RULE):
        audit = registry.get(WAIVER_AUDIT_RULE)
        severity = cfg.severity_for(audit)
        out.extend(replace(d, severity=severity) if d.severity != severity
                   else d for d in audit.check(model))
        sort_diagnostics(out)
    return out


# Importing the rule pack registers every interlock-* rule; it lives at
# the bottom because the rules type-annotate against InterlockModel.
from repro.analysis.interlock import rules as _rules  # noqa: E402,F401
