"""Thread, lock, signal & durability-ordering analysis (`interlock-*`).

The fourth whole-program pass: where the dataflow pass proves process
-pool determinism and the contracts pass proves exception/resource
discipline, this pass proves the *threaded service layer* safe. It
reuses the PR-5 call graph (now thread-spawn aware) and the PR-6
per-function CFG to check:

* lockset race detection — fields touched from two or more thread
  roots must share a consistent guard;
* lock-acquisition ordering — the acquired-while-holding graph must be
  acyclic;
* blocking-call-under-lock — fsync, sleeps, socket and subprocess
  waits, and foreign ``Condition.wait`` must not run while a lock is
  held (flagged transitively through the call graph);
* signal-handler safety — handlers may set events and flags, never
  acquire locks, open handles, or perform I/O;
* durability ordering — on WAL paths the admit record must dominate
  every client reply, delivery functions must follow every reply with
  a terminal ``done`` record, and ad-hoc replace/rename sequences must
  go through the atomic-write idiom;
* ``daemon=True`` threads must not own durable writes without a
  justified waiver.

Entry point: :func:`repro.analysis.interlock.engine.analyze_interlock`.
"""

from repro.analysis.interlock.engine import (
    InterlockModel,
    InterlockOptions,
    analyze_interlock,
    build_interlock_model,
)

__all__ = [
    "InterlockModel",
    "InterlockOptions",
    "analyze_interlock",
    "build_interlock_model",
]
