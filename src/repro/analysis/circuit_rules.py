"""Electrical lint rules over circuit netlists and reduced MNA systems.

Two subjects, two rule categories:

* ``circuit`` rules inspect a :class:`~repro.circuit.netlist.Circuit`
  (the element-level netlist fed to the MNA transient engine and the
  SPICE deck writer): element sign conventions, driver presence, ground
  reference, and DC connectivity of every node.
* ``rc`` rules inspect a reduced ground-referenced RC system — the
  ``(G, c, b)`` triple of :class:`~repro.circuit.analytic.ReducedRC` —
  for the matrix-level invariants the analytic solver relies on:
  symmetry, diagonal dominance, MNA stamp signs, positive capacitances,
  and a driven source row.

A sign-flipped resistance or a floating node produces a *plausible*
delay number from the eigendecomposition; these rules are what turn it
into a diagnostic instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.analysis.diagnostics import (
    Diagnostic,
    LintConfig,
    Location,
    Severity,
    registry,
    rule,
)
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import GROUND, Circuit

if TYPE_CHECKING:  # import cycle guard: rc_builder imports nothing from here
    from repro.delay.parameters import Technology
    from repro.graph.routing_graph import RoutingGraph

#: Relative tolerance for symmetry / dominance comparisons.
MATRIX_REL_TOL = 1e-9


def _circuit_location(circuit: Circuit, obj: str | None = None) -> Location:
    anchor = f"circuit {circuit.name!r}"
    return Location(obj=f"{anchor}: {obj}" if obj else anchor)


# --------------------------------------------------------------- circuit rules

@rule("circuit-nonpositive-resistance", category="circuit",
      severity=Severity.ERROR,
      summary="a resistor has R <= 0",
      rationale="a zero or negative resistance makes the conductance "
                "stamp infinite or sign-flipped, and the Elmore/transient "
                "numbers computed from it are garbage")
def check_nonpositive_resistance(circuit: Circuit) -> Iterator[Diagnostic]:
    r = registry.get("circuit-nonpositive-resistance")
    for element in circuit.resistors():
        if element.value <= 0:
            yield r.diagnostic(
                f"resistor {element.name!r} has R = {element.value:g} ohm",
                location=_circuit_location(circuit, element.name),
                hint="wire resistances are r_per_um * length > 0")


@rule("circuit-nonpositive-capacitance", category="circuit",
      severity=Severity.ERROR,
      summary="a capacitor has C <= 0",
      rationale="negative capacitance flips the sign of a charge term; "
                "zero capacitance is a node the builder should not have "
                "emitted at all")
def check_nonpositive_capacitance(circuit: Circuit) -> Iterator[Diagnostic]:
    r = registry.get("circuit-nonpositive-capacitance")
    for element in circuit.capacitors():
        if element.value <= 0:
            yield r.diagnostic(
                f"capacitor {element.name!r} has C = {element.value:g} F",
                location=_circuit_location(circuit, element.name),
                hint="wire and sink capacitances are strictly positive")


@rule("circuit-nonpositive-inductance", category="circuit",
      severity=Severity.ERROR,
      summary="an inductor has L <= 0",
      rationale="the inductance ablation only ever adds positive series "
                "inductance; a non-positive value is a sign error")
def check_nonpositive_inductance(circuit: Circuit) -> Iterator[Diagnostic]:
    r = registry.get("circuit-nonpositive-inductance")
    for element in circuit.inductors():
        if element.value <= 0:
            yield r.diagnostic(
                f"inductor {element.name!r} has L = {element.value:g} H",
                location=_circuit_location(circuit, element.name),
                hint="drop the element instead of zeroing it")


@rule("circuit-no-source", category="circuit", severity=Severity.ERROR,
      summary="the circuit has no voltage or current source",
      rationale="an interconnect circuit with no driver has the trivial "
                "all-zero response; a missing source means the builder "
                "forgot the step input")
def check_no_source(circuit: Circuit) -> Iterator[Diagnostic]:
    r = registry.get("circuit-no-source")
    if not circuit.voltage_sources() and not circuit.current_sources():
        yield r.diagnostic(
            "no voltage or current source drives the circuit",
            location=_circuit_location(circuit),
            hint="interconnect decks need the step source behind the "
                 "driver resistance")


@rule("circuit-no-ground", category="circuit", severity=Severity.ERROR,
      summary="no element references the ground node",
      rationale="nodal analysis needs a reference; without ground the "
                "conductance matrix is singular")
def check_no_ground(circuit: Circuit) -> Iterator[Diagnostic]:
    r = registry.get("circuit-no-ground")
    if circuit.elements and not any(
            GROUND in _terminals(e) for e in circuit.elements):
        yield r.diagnostic(
            f"no element touches the reference node {GROUND!r}",
            location=_circuit_location(circuit),
            hint="sink loads and the step source return to ground")


@rule("circuit-floating-node", category="circuit", severity=Severity.ERROR,
      summary="a node has no DC path to ground",
      rationale="a node reachable only through capacitors (or not at "
                "all) has an undefined operating point; in a routing "
                "circuit it means a wire chain was broken mid-edge")
def check_floating_node(circuit: Circuit) -> Iterator[Diagnostic]:
    r = registry.get("circuit-floating-node")
    parent: dict[str, str] = {node: node for node in circuit.nodes}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for element in circuit.elements:
        # Only R, L and V sources conduct at DC.
        if isinstance(element, (Resistor, Inductor, VoltageSource)):
            a, b = _terminals(element)
            parent[find(a)] = find(b)
    ground_root = find(GROUND)
    floating = sorted(node for node in circuit.nodes
                      if find(node) != ground_root)
    for node in floating:
        yield r.diagnostic(
            f"node {node!r} has no DC path to ground",
            location=_circuit_location(circuit, f"node {node!r}"),
            hint="every node must reach ground through resistors, "
                 "inductors, or sources")


@rule("circuit-dangling-node", category="circuit", severity=Severity.WARNING,
      summary="a node is touched by exactly one element terminal",
      rationale="current cannot flow through a one-terminal node; it is "
                "dead weight from an incomplete edit of the netlist")
def check_dangling_node(circuit: Circuit) -> Iterator[Diagnostic]:
    r = registry.get("circuit-dangling-node")
    touches: dict[str, int] = {}
    for element in circuit.elements:
        for node in _terminals(element):
            touches[node] = touches.get(node, 0) + 1
    for node in sorted(touches):
        if node != GROUND and touches[node] == 1:
            yield r.diagnostic(
                f"node {node!r} is touched by a single element terminal",
                location=_circuit_location(circuit, f"node {node!r}"),
                hint="a live node needs at least two connections")


def _terminals(element: object) -> tuple[str, str]:
    if isinstance(element, (Resistor, Capacitor, Inductor)):
        return (element.n1, element.n2)
    assert isinstance(element, (VoltageSource, CurrentSource))
    return (element.pos, element.neg)


def lint_circuit(circuit: Circuit,
                 config: LintConfig | None = None) -> list[Diagnostic]:
    """Run every enabled circuit rule against ``circuit``."""
    return registry.run("circuit", circuit, config)


# -------------------------------------------------------------------- rc rules

@dataclass(frozen=True)
class RCSystem:
    """A reduced RC system ``(G, c, b)`` presented for linting.

    Mirrors :class:`~repro.circuit.analytic.ReducedRC` but performs no
    validation of its own, so deliberately broken systems can be linted
    (``ReducedRC`` raises on construction).
    """

    G: np.ndarray
    c: np.ndarray
    b: np.ndarray
    labels: Sequence[object] = field(default_factory=tuple)
    name: str = "rc"

    def label(self, row: int) -> object:
        return self.labels[row] if row < len(self.labels) else row


def _rc_location(system: RCSystem, obj: str | None = None) -> Location:
    anchor = f"rc system {system.name!r}"
    return Location(obj=f"{anchor}: {obj}" if obj else anchor)


@rule("rc-asymmetric-conductance", category="rc", severity=Severity.ERROR,
      summary="the conductance matrix is not symmetric",
      rationale="a reciprocal RC network always stamps symmetrically; "
                "asymmetry means a one-sided stamp, and the symmetrized "
                "eigendecomposition would silently solve a different "
                "circuit")
def check_asymmetric_conductance(system: RCSystem) -> Iterator[Diagnostic]:
    r = registry.get("rc-asymmetric-conductance")
    G = np.asarray(system.G, dtype=float)
    scale = max(float(np.abs(G).max()), 1.0)
    mismatch = np.abs(G - G.T)
    if float(mismatch.max()) > MATRIX_REL_TOL * scale:
        i, j = np.unravel_index(int(mismatch.argmax()), mismatch.shape)
        yield r.diagnostic(
            f"G[{i}, {j}] = {G[i, j]:g} but G[{j}, {i}] = {G[j, i]:g} "
            f"(nodes {system.label(int(i))!r}, {system.label(int(j))!r})",
            location=_rc_location(system),
            hint="stamp each conductance into both (i, j) and (j, i)")


@rule("rc-positive-offdiagonal", category="rc", severity=Severity.ERROR,
      summary="an off-diagonal conductance entry is positive",
      rationale="pure-RC MNA stamps put -g on off-diagonals; a positive "
                "entry is a sign-flipped resistance, which produces "
                "plausible but wrong delays")
def check_positive_offdiagonal(system: RCSystem) -> Iterator[Diagnostic]:
    r = registry.get("rc-positive-offdiagonal")
    G = np.asarray(system.G, dtype=float)
    scale = max(float(np.abs(G).max()), 1.0)
    mask = G > MATRIX_REL_TOL * scale
    np.fill_diagonal(mask, False)
    for i, j in zip(*np.nonzero(mask)):
        if i < j:  # report each (symmetric) offense once
            yield r.diagnostic(
                f"G[{i}, {j}] = {G[i, j]:g} > 0 (nodes "
                f"{system.label(int(i))!r}, {system.label(int(j))!r})",
                location=_rc_location(system),
                hint="off-diagonal stamps are -1/R; check the sign")


@rule("rc-not-diagonally-dominant", category="rc", severity=Severity.WARNING,
      summary="a row of G is not weakly diagonally dominant",
      rationale="a grounded RC conductance matrix is a Laplacian plus "
                "non-negative shunt terms, hence weakly diagonally "
                "dominant; violation signals a corrupted or sign-flipped "
                "stamp even when symmetry still holds")
def check_diagonal_dominance(system: RCSystem) -> Iterator[Diagnostic]:
    r = registry.get("rc-not-diagonally-dominant")
    G = np.asarray(system.G, dtype=float)
    scale = max(float(np.abs(G).max()), 1.0)
    for i in range(G.shape[0]):
        off = float(np.abs(G[i]).sum() - np.abs(G[i, i]))
        if np.abs(G[i, i]) < off - MATRIX_REL_TOL * scale:
            yield r.diagnostic(
                f"row {i} (node {system.label(i)!r}): |diag| = "
                f"{abs(G[i, i]):g} < off-diagonal sum {off:g}",
                location=_rc_location(system),
                hint="every branch conductance must appear on the "
                     "diagonal of both endpoint rows")


@rule("rc-nonpositive-capacitance", category="rc", severity=Severity.ERROR,
      summary="a node capacitance is zero or negative",
      rationale="the state equation C dv/dt = b - G v needs C positive "
                "definite; a non-positive entry makes the node's dynamics "
                "ill-posed")
def check_rc_nonpositive_capacitance(system: RCSystem) -> Iterator[Diagnostic]:
    r = registry.get("rc-nonpositive-capacitance")
    c = np.asarray(system.c, dtype=float)
    for i in np.nonzero(c <= 0)[0]:
        yield r.diagnostic(
            f"node {system.label(int(i))!r} has capacitance {c[i]:g} F",
            location=_rc_location(system),
            hint="every node carries wire or sink capacitance > 0")


@rule("rc-undriven", category="rc", severity=Severity.ERROR,
      summary="the excitation vector is identically zero",
      rationale="b carries the driver conductance on the source row; an "
                "all-zero b means the source node is missing its driver "
                "and the step response is identically zero")
def check_rc_undriven(system: RCSystem) -> Iterator[Diagnostic]:
    r = registry.get("rc-undriven")
    b = np.asarray(system.b, dtype=float)
    if b.size and not np.any(b != 0.0):
        yield r.diagnostic(
            "excitation vector b is identically zero",
            location=_rc_location(system),
            hint="the source row gets g_driver = 1/R_driver")


def lint_rc_system(G: np.ndarray, c: np.ndarray, b: np.ndarray,
                   labels: Sequence[object] = (),
                   name: str = "rc",
                   config: LintConfig | None = None) -> list[Diagnostic]:
    """Run every enabled rc rule against a raw ``(G, c, b)`` system."""
    system = RCSystem(G=np.asarray(G, dtype=float),
                      c=np.asarray(c, dtype=float),
                      b=np.asarray(b, dtype=float),
                      labels=tuple(labels), name=name)
    return registry.run("rc", system, config)


def lint_routing_rc(graph: "RoutingGraph", tech: "Technology",
                    segments: int = 1,
                    config: LintConfig | None = None) -> list[Diagnostic]:
    """Build the routing's reduced RC system and lint it.

    When the routing does not span its net the electrical model cannot
    even be built; that is reported as a diagnostic rather than raised,
    so data linting never crashes on bad inputs.
    """
    from repro.delay.rc_builder import build_reduced_rc
    from repro.graph.routing_graph import RoutingGraphError

    try:
        reduced = build_reduced_rc(graph, tech, segments=segments)
    except RoutingGraphError as exc:
        return [Diagnostic(
            rule="rc-unbuildable", severity=Severity.ERROR,
            message=f"cannot build the RC model: {exc}",
            location=Location(obj=f"net {graph.net.name!r}"),
            hint="fix the graph-level errors first")]
    return lint_rc_system(reduced.G, reduced.c, reduced.b,
                          labels=reduced.labels,
                          name=f"route_{graph.net.name}", config=config)
