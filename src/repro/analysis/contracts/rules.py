"""The service-readiness contracts rule pack.

Each rule receives the whole-program :class:`~repro.analysis.contracts
.engine.ContractsModel` (project + call graph + may-raise fixpoint) and
yields diagnostics anchored at the site where the contract breaks — the
``raise`` or intrinsic raiser call whose exception escapes a boundary,
the ``except`` clause that swallows, the acquisition that leaks. Every
rule is waivable with the standard ``# repro: allow=<rule-id>`` pragma
on the flagged line; the engine audits pragmas that waive nothing.

Rule ids are stable; the catalog lives in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    registry,
    rule,
)
from repro.analysis.dataflow.callgraph import FunctionInfo
from repro.analysis.contracts.lifecycle import (
    find_resource_leaks,
    find_unbounded_cache_attrs,
    find_unbounded_globals,
)

if TYPE_CHECKING:
    from repro.analysis.contracts.engine import ContractsModel


def _in_modules(fn: FunctionInfo, prefixes: tuple[str, ...]) -> bool:
    return any(fn.module == p or fn.module.startswith(p + ".")
               for p in prefixes)


def _short(type_name: str) -> str:
    return type_name.rsplit(".", 1)[-1]


@rule("contracts-exception-escape", category="contracts",
      severity=Severity.ERROR,
      summary="an exception type escapes a service boundary that must "
              "absorb it",
      rationale="the boundaries are the repo's failure contracts: the "
                "guard layer converts raw LinAlgError into "
                "NumericalIncident, the pool wrappers convert trial "
                "exceptions into TrialFailure rows, and the CLI maps "
                "everything to documented exit codes — an escaping raw "
                "exception turns a contained failure into an outage")
def check_exception_escape(model: "ContractsModel") -> Iterator[Diagnostic]:
    r = registry.get("contracts-exception-escape")
    opts = model.options
    hierarchy = model.raises.hierarchy
    reported: set[tuple[str, int, str]] = set()

    def emit(site, boundary_desc: str, hint: str):
        key = (str(site.path), site.lineno, site.exc_type)
        if key in reported:
            return None
        reported.add(key)
        if model.allows(r.id, site.path, site.lineno):
            return None
        return r.diagnostic(
            f"{_short(site.exc_type)} may escape {boundary_desc} "
            f"({site.detail}, raised in {site.function})",
            location=Location(file=str(site.path), line=site.lineno,
                              obj=site.function),
            hint=hint)

    # Guarded numeric layer: public functions must not surface raw
    # linear-algebra failures.
    for qualname in sorted(model.project.functions):
        fn = model.project.functions[qualname]
        if not _in_modules(fn, opts.guarded_prefixes) or not fn.is_public:
            continue
        for exc_type, site in sorted(model.escapes_of(qualname).items()):
            if not any(hierarchy.is_subtype(exc_type, forbidden)
                       for forbidden in opts.forbidden_numeric):
                continue
            diag = emit(site, f"guarded numeric boundary {qualname}",
                        "route the solve through repro.guard.numerics."
                        "guarded_solve (or catch and re-raise as "
                        "NumericalIncident with a system fingerprint)")
            if diag is not None:
                yield diag

    # Pool trial functions: a raw numeric failure crossing the worker
    # boundary aborts the trial with a pickled traceback instead of a
    # structured TrialFailure row.
    for qualname in model.pool_entries:
        for exc_type, site in sorted(model.escapes_of(qualname).items()):
            if not any(hierarchy.is_subtype(exc_type, forbidden)
                       for forbidden in opts.forbidden_numeric):
                continue
            diag = emit(site, f"pool trial function {qualname}",
                        "guard the numeric kernel so the worker surfaces "
                        "a NumericalIncident the runtime policy can "
                        "convert to a TrialFailure")
            if diag is not None:
                yield diag

    # Pool wrappers: everything except the allowed I/O surface must be
    # converted, not propagated.
    for qualname in opts.pool_wrappers:
        for exc_type, site in sorted(model.escapes_of(qualname).items()):
            if any(hierarchy.is_subtype(exc_type, allowed)
                   for allowed in opts.pool_wrapper_allowed):
                continue
            diag = emit(site, f"pool wrapper {qualname}",
                        "convert the exception into a TrialFailure row "
                        "(only journal/pipe OSError may propagate)")
            if diag is not None:
                yield diag

    # CLI entries: every escape must already be mapped to an exit code.
    for qualname in opts.cli_entries:
        for exc_type, site in sorted(model.escapes_of(qualname).items()):
            if any(hierarchy.is_subtype(exc_type, allowed)
                   for allowed in opts.cli_allowed):
                continue
            diag = emit(site, f"CLI entry point {qualname}",
                        "map the exception to a documented exit code in "
                        "the entry point's catch ladder")
            if diag is not None:
                yield diag


@rule("contracts-broad-catch-swallow", category="contracts",
      severity=Severity.ERROR,
      summary="an except clause silently swallows the failure",
      rationale="a handler whose body neither re-raises, logs, nor "
                "records anything erases the only evidence a failure "
                "happened; in a long-running service that is how "
                "corrupted journals and half-dead workers go unnoticed "
                "— intentional best-effort sites must carry a justified "
                "waiver")
def check_broad_catch_swallow(model: "ContractsModel") -> Iterator[Diagnostic]:
    r = registry.get("contracts-broad-catch-swallow")
    for name in sorted(model.project.modules):
        module = model.project.modules[name]
        for node in ast.walk(module.source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_silent_swallow(node.body):
                continue
            if model.allows(r.id, module.path, node.lineno):
                continue
            caught = (ast.unparse(node.type) if node.type is not None
                      else "BaseException")
            yield r.diagnostic(
                f"except {caught} swallows the exception without "
                f"re-raising, recording, or reporting it",
                location=Location(file=str(module.path), line=node.lineno),
                hint="handle it, record provenance/stderr before "
                     "suppressing, or waive with a one-line "
                     "justification if best-effort is the contract")


def _is_silent_swallow(body: list[ast.stmt]) -> bool:
    """A handler body that destroys all evidence of the exception.

    ``pass``/``continue``/``break``, bare or constant ``return``, docstring
    expressions — and ``os._exit(...)``, which kills the process without
    letting any finally/atexit reporting run.
    """
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Return):
            if stmt.value is None or isinstance(stmt.value, ast.Constant):
                continue
            return False
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Constant):
                continue
            if (isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Attribute)
                    and stmt.value.func.attr == "_exit"):
                continue
            return False
        return False
    return True


@rule("contracts-undeclared-raise", category="contracts",
      severity=Severity.ERROR,
      summary="a declared boundary may raise a type its contract omits",
      rationale="@boundary(raises=...) is a promise callers build their "
                "own handling on; an escaping type outside the "
                "declaration means either the declaration or the "
                "implementation is wrong, and callers find out in "
                "production")
def check_undeclared_raise(model: "ContractsModel") -> Iterator[Diagnostic]:
    r = registry.get("contracts-undeclared-raise")
    hierarchy = model.raises.hierarchy
    for qualname in sorted(model.boundaries):
        decl = model.boundaries[qualname]
        fn = model.project.functions.get(qualname)
        if fn is None:
            continue
        undeclared = []
        for exc_type, site in sorted(model.escapes_of(qualname).items()):
            if any(hierarchy.is_subtype(exc_type, declared)
                   for declared in decl.raises):
                continue
            undeclared.append((exc_type, site))
        if not undeclared:
            continue
        if model.allows(r.id, fn.path, decl.lineno):
            continue
        listing = "; ".join(
            f"{_short(t)} ({site.detail}, line {site.lineno})"
            for t, site in undeclared)
        declared = ", ".join(_short(t) for t in decl.raises)
        yield r.diagnostic(
            f"{qualname} declares raises=({declared}) but may also "
            f"raise {listing}",
            location=Location(file=str(fn.path), line=decl.lineno,
                              obj=qualname),
            hint="extend the declaration or catch-and-convert inside "
                 "the boundary")


@rule("contracts-resource-leak", category="contracts",
      severity=Severity.ERROR,
      summary="an acquired handle can reach the function exit without "
              "release",
      rationale="a file descriptor, temp file, pipe end, or child "
                "process left open on an early-return or exception path "
                "accumulates for the lifetime of a routing daemon until "
                "the fd table or process table runs out — every "
                "acquisition must reach a release on all paths (with, "
                "try/finally, or explicit close)")
def check_resource_leak(model: "ContractsModel") -> Iterator[Diagnostic]:
    r = registry.get("contracts-resource-leak")
    for qualname in sorted(model.project.functions):
        fn = model.project.functions[qualname]
        for leak in find_resource_leaks(fn.node):
            if model.allows(r.id, fn.path, leak.lineno):
                continue
            yield r.diagnostic(
                f"{leak.resource} {leak.variable!r} acquired here may "
                f"reach the exit of {qualname} without being released",
                location=Location(file=str(fn.path), line=leak.lineno,
                                  obj=qualname),
                hint="use a with-block, or release in a finally that "
                     "dominates every exit")


@rule("contracts-unbounded-growth", category="contracts",
      severity=Severity.ERROR,
      summary="a long-lived container grows without any bound",
      rationale="module globals and *Memo/*Cache instance containers "
                "outlive every request in a long-running service; one "
                "that is only ever grown is a slow memory leak — bound "
                "it (LRU eviction, deque(maxlen=...)) or scope it to "
                "the request")
def check_unbounded_growth(model: "ContractsModel") -> Iterator[Diagnostic]:
    r = registry.get("contracts-unbounded-growth")
    markers = model.options.growth_class_markers
    for name in sorted(model.project.modules):
        module = model.project.modules[name]
        tree = module.source.tree
        for site in find_unbounded_globals(tree):
            if model.allows(r.id, module.path, site.lineno):
                continue
            yield r.diagnostic(
                f"module-level container {site.owner!r} is grown (line "
                f"{site.grow_lineno}) but never shrunk or bounded",
                location=Location(file=str(module.path), line=site.lineno),
                hint="evict under a size bound like the delay memo "
                     "(popitem under a length guard) or move the state "
                     "into a request-scoped object")
        for site in find_unbounded_cache_attrs(tree, markers):
            if model.allows(r.id, module.path, site.lineno):
                continue
            yield r.diagnostic(
                f"cache attribute {site.owner} is grown (line "
                f"{site.grow_lineno}) with no eviction anywhere in the "
                f"class",
                location=Location(file=str(module.path), line=site.lineno),
                hint="add a capacity bound with LRU eviction, as "
                     "DelayMemo.put does")


#: The contracts waiver audit; the engine runs it after every other rule.
WAIVER_AUDIT_RULE = "contracts-unused-waiver"


@rule(WAIVER_AUDIT_RULE, category="contracts", severity=Severity.WARNING,
      summary="a contracts allow-pragma waives nothing",
      rationale="a stale waiver hides the next real violation on its "
                "line; contracts waivers must each suppress a live "
                "diagnostic and carry a justification")
def check_unused_contracts_waiver(model: "ContractsModel"
                                  ) -> Iterator[Diagnostic]:
    r = registry.get(WAIVER_AUDIT_RULE)
    for name in sorted(model.project.modules):
        module = model.project.modules[name]
        for lineno, rule_id in module.source.waiver_lines():
            if rule_id == "all" or rule_id not in registry:
                continue  # unknown ids are the source pass's finding
            if registry.get(rule_id).category != "contracts":
                continue
            if (lineno, rule_id) not in module.source.used_waivers:
                yield r.diagnostic(
                    f"pragma waives {rule_id!r} but nothing here "
                    f"violates it",
                    location=Location(file=str(module.path), line=lineno),
                    hint="delete the stale pragma (or fix the rule id)")
