"""Resource-lifecycle and container-growth analyses.

Two intraprocedural checks complement the whole-program may-raise
fixpoint:

* **Resource leaks** — a statement-level control-flow graph per function
  tracks handles acquired by ``open``/``os.open``/``tempfile.*``/
  ``subprocess.Popen``/``multiprocessing.Pipe``: every CFG path from the
  acquisition must hit a *release* (``.close()``, ``.cleanup()``,
  ``os.close(fd)``, …) before the function exit. Passing the handle to
  any other expression — returning it, storing it on ``self``, handing
  it to another call — is a *transfer*: ownership moved, tracking stops.
  ``with``-managed acquisitions never enter tracking (the context
  manager is the release).

* **Unbounded growth** — module-level raw containers (dict/list/set
  literals or constructor calls) that functions grow (``append``,
  ``update``, subscript-assignment, …) with no shrink operation
  anywhere in the module, and ``*Memo``/``*Cache`` classes whose
  instance containers grow in methods with no bounding eviction. The
  bounded-LRU idiom (``popitem``/``pop`` under a length guard, or
  ``deque(maxlen=...)``) is recognized as safe.

The CFG is deliberately modest: explicit ``raise``/``return`` are exit
edges (routed through enclosing ``finally`` blocks), every statement in
a ``try`` body may jump to each handler, and implicit exceptions from
arbitrary calls are *not* modeled — that is the may-raise analysis' job.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.dataflow.callgraph import _dotted_name

#: Acquisition calls, full dotted spelling → human-readable handle kind.
_ACQUISITION_CALLS = {
    "open": "file handle",
    "os.open": "file descriptor",
    "os.fdopen": "file handle",
    "os.pipe": "pipe descriptor pair",
    "tempfile.NamedTemporaryFile": "temporary file",
    "tempfile.TemporaryDirectory": "temporary directory",
    "tempfile.mkstemp": "temporary file descriptor",
    "subprocess.Popen": "child process",
    "multiprocessing.Pipe": "connection pair",
}

#: Bare-name spellings (``from subprocess import Popen``) accepted too.
_ACQUISITION_TAILS = {
    "Popen": "subprocess.Popen",
    "NamedTemporaryFile": "tempfile.NamedTemporaryFile",
    "TemporaryDirectory": "tempfile.TemporaryDirectory",
    "mkstemp": "tempfile.mkstemp",
    "Pipe": "multiprocessing.Pipe",
}

#: Methods that relinquish the handle they are called on.
_RELEASE_METHODS = frozenset({
    "close", "cleanup", "terminate", "kill", "wait", "communicate",
    "release", "shutdown",
})

_GROW_METHODS = frozenset({
    "append", "appendleft", "add", "insert", "extend", "setdefault",
    "update",
})
_SHRINK_METHODS = frozenset({
    "pop", "popitem", "popleft", "clear", "remove", "discard",
})

_RAW_CONTAINER_CALLS = frozenset({
    "dict", "list", "set", "defaultdict", "collections.defaultdict",
    "OrderedDict", "collections.OrderedDict", "deque",
    "collections.deque",
})


# ---------------------------------------------------------------------------
# statement-level CFG


class _Node:
    __slots__ = ("stmt", "succ", "exc")

    def __init__(self, stmt: ast.stmt | None = None):
        self.stmt = stmt
        self.succ: list[_Node] = []
        #: Exception edges: taken only when this statement raises. An
        #: acquisition's own exception edge means the handle was never
        #: acquired, so leak traversal skips it at the origin.
        self.exc: list[_Node] = []


class _CFG:
    def __init__(self) -> None:
        self.exit = _Node()
        self.nodes: list[_Node] = []

    def node(self, stmt: ast.stmt | None = None) -> _Node:
        fresh = _Node(stmt)
        self.nodes.append(fresh)
        return fresh


class _Builder:
    """Build a conservative statement CFG for one function body."""

    def __init__(self) -> None:
        self.cfg = _CFG()
        # (finally-entry node, [entered-abnormally flag]) innermost last
        self._finallies: list[tuple[_Node, list[bool]]] = []
        # (continue target, break sinks) innermost last
        self._loops: list[tuple[_Node, list[_Node]]] = []

    def build(self, body: list[ast.stmt]) -> _CFG:
        frontier = self._block(body, [self.cfg.node()])
        self._link(frontier, self.cfg.exit)
        return self.cfg

    @staticmethod
    def _link(frontier: list[_Node], target: _Node) -> None:
        for node in frontier:
            node.succ.append(target)

    def _abnormal(self, node: _Node) -> None:
        """Route a function-exiting statement through pending finallys."""
        if self._finallies:
            entry, flag = self._finallies[-1]
            node.succ.append(entry)
            flag[0] = True
        else:
            node.succ.append(self.cfg.exit)

    def _block(self, stmts: list[ast.stmt],
               frontier: list[_Node]) -> list[_Node]:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt,
              frontier: list[_Node]) -> list[_Node]:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = self.cfg.node(stmt)
            self._link(frontier, node)
            self._abnormal(node)
            return []
        if isinstance(stmt, ast.Break):
            node = self.cfg.node(stmt)
            self._link(frontier, node)
            if self._loops:
                self._loops[-1][1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self.cfg.node(stmt)
            self._link(frontier, node)
            if self._loops:
                node.succ.append(self._loops[-1][0])
            return []
        if isinstance(stmt, ast.If):
            head = self.cfg.node(stmt)
            self._link(frontier, head)
            taken = self._block(stmt.body, [head])
            skipped = self._block(stmt.orelse, [head])
            return taken + skipped if stmt.orelse else taken + [head]
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self.cfg.node(stmt)
            self._link(frontier, head)
            return self._block(stmt.body, [head])
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        # Nested defs, simple statements: one node, straight through.
        node = self.cfg.node(stmt)
        self._link(frontier, node)
        return [node]

    def _loop(self, stmt: ast.For | ast.AsyncFor | ast.While,
              frontier: list[_Node]) -> list[_Node]:
        head = self.cfg.node(stmt)
        self._link(frontier, head)
        breaks: list[_Node] = []
        self._loops.append((head, breaks))
        body = self._block(stmt.body, [head])
        self._loops.pop()
        self._link(body, head)  # back edge
        out = self._block(stmt.orelse, [head]) if stmt.orelse else [head]
        return out + breaks

    def _try(self, stmt: ast.Try,
             frontier: list[_Node]) -> list[_Node]:
        fin_entry: _Node | None = None
        flag = [False]
        if stmt.finalbody:
            fin_entry = self.cfg.node()
            self._finallies.append((fin_entry, flag))
        handler_entries = [self.cfg.node() for _ in stmt.handlers]
        before = len(self.cfg.nodes)
        body_frontier = self._block(stmt.body, frontier)
        # Any statement in the body region may raise into any handler
        # (or straight into the finally when there is no handler).
        for node in self.cfg.nodes[before:]:
            node.exc.extend(handler_entries)
            if fin_entry is not None and not handler_entries:
                node.exc.append(fin_entry)
                flag[0] = True
        out = self._block(stmt.orelse, body_frontier)
        for entry, handler in zip(handler_entries, stmt.handlers):
            out = out + self._block(handler.body, [entry])
        if fin_entry is not None:
            self._finallies.pop()
            self._link(out, fin_entry)
            out = self._block(stmt.finalbody, [fin_entry])
            if flag[0]:
                # A return/raise passed through: after the finally it
                # keeps exiting the function.
                for node in out:
                    self._abnormal(node)
        return out


# ---------------------------------------------------------------------------
# resource-leak check


@dataclass(frozen=True)
class ResourceLeak:
    """A handle that can reach the function exit without release."""

    variable: str
    resource: str
    lineno: int


def _acquisition_kind(call: ast.Call) -> str | None:
    parts = _dotted_name(call.func)
    if parts is None:
        return None
    dotted = ".".join(parts)
    if dotted in _ACQUISITION_CALLS:
        return dotted
    return _ACQUISITION_TAILS.get(parts[-1])


def _acquired_names(stmt: ast.stmt) -> list[tuple[str, str, int]]:
    """``(variable, resource, lineno)`` for tracked acquisitions."""
    if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.value, ast.Call)):
        return []
    kind = _acquisition_kind(stmt.value)
    if kind is None:
        return []
    label = _ACQUISITION_CALLS[kind]
    target = stmt.targets[0]
    if isinstance(target, ast.Name):
        return [(target.id, label, stmt.lineno)]
    if isinstance(target, ast.Tuple) and kind in (
            "os.pipe", "multiprocessing.Pipe", "tempfile.mkstemp"):
        names = [e.id for e in target.elts if isinstance(e, ast.Name)]
        if kind == "tempfile.mkstemp":
            names = names[:1]  # (fd, path): only the fd needs closing
        return [(n, label, stmt.lineno) for n in names]
    return []


def _releases(stmt: ast.stmt, var: str) -> bool:
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == var
                and func.attr in _RELEASE_METHODS):
            return True
        parts = _dotted_name(func)
        if parts is not None and ".".join(parts) == "os.close":
            if any(isinstance(a, ast.Name) and a.id == var
                   for a in node.args):
                return True
    return False


def _rebinds(stmt: ast.stmt, var: str) -> bool:
    if isinstance(stmt, ast.Delete):
        return any(isinstance(t, ast.Name) and t.id == var
                   for t in stmt.targets)
    for node in ast.walk(stmt):
        if (isinstance(node, ast.Name) and node.id == var
                and isinstance(node.ctx, ast.Store)):
            return True
    return False


#: fd-consuming calls that merely *use* the descriptor: passing the
#: handle to these does not move ownership (unlike ``os.fdopen`` or a
#: worker spawn, which do).
_HANDLE_USE_CALLS = frozenset({
    "os.read", "os.write", "os.pread", "os.pwrite", "os.lseek",
    "os.fsync", "os.fstat", "os.ftruncate", "os.isatty",
    "os.get_blocking", "os.set_blocking",
})


def _transfers(stmt: ast.stmt, var: str) -> bool:
    """A Name-load of ``var`` outside a method receiver moves ownership."""
    for parent in ast.walk(stmt):
        if isinstance(parent, ast.Call):
            parts = _dotted_name(parent.func)
            if parts is not None and ".".join(parts) in _HANDLE_USE_CALLS:
                continue  # reading/seeking through the fd, not handing it off
        for child in ast.iter_child_nodes(parent):
            if (isinstance(child, ast.Name) and child.id == var
                    and isinstance(child.ctx, ast.Load)
                    and not isinstance(parent, ast.Attribute)):
                return True
    return False


def find_resource_leaks(fn_node: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> list[ResourceLeak]:
    """Handles in one function that may escape without a release."""
    cfg = _Builder().build(fn_node.body)
    leaks: list[ResourceLeak] = []
    for node in cfg.nodes:
        if node.stmt is None:
            continue
        for var, resource, lineno in _acquired_names(node.stmt):
            if _escapes_unreleased(cfg, node, var):
                leaks.append(ResourceLeak(variable=var, resource=resource,
                                          lineno=lineno))
    leaks.sort(key=lambda leak: (leak.lineno, leak.variable))
    return leaks


def _escapes_unreleased(cfg: _CFG, origin: _Node, var: str) -> bool:
    seen: set[int] = set()
    stack = list(origin.succ)
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node is cfg.exit:
            return True
        stmt = node.stmt
        if stmt is not None:
            if _releases(stmt, var):
                continue
            if _rebinds(stmt, var) or _transfers(stmt, var):
                continue
        stack.extend(node.succ)
        stack.extend(node.exc)
    return False


# ---------------------------------------------------------------------------
# unbounded-growth check


@dataclass(frozen=True)
class GrowthSite:
    """A long-lived container grown without any bounding eviction."""

    owner: str  # global name, or ``Class.attr`` for cache classes
    lineno: int
    grow_lineno: int


def _is_raw_container(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        parts = _dotted_name(value.func)
        if parts is None or ".".join(parts) not in _RAW_CONTAINER_CALLS:
            return False
        if parts[-1] == "deque":
            for kw in value.keywords:
                if kw.arg == "maxlen" and not (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value is None):
                    return False  # deque(maxlen=...) is bounded
        return True
    return False


def _receiver_matches(node: ast.expr, name: str, *,
                      attr: str | None = None) -> bool:
    """Whether ``node`` is ``name`` (attr None) or ``name.attr``."""
    if attr is None:
        return isinstance(node, ast.Name) and node.id == name
    return (isinstance(node, ast.Attribute) and node.attr == attr
            and isinstance(node.value, ast.Name)
            and node.value.id == name)


def _growth_lineno(scope: ast.AST, name: str, *,
                   attr: str | None = None) -> int | None:
    """Line of the first growth operation on the container, if any."""
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _GROW_METHODS
                    and _receiver_matches(func.value, name, attr=attr)):
                return node.lineno
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Subscript)
                        and _receiver_matches(target.value, name,
                                              attr=attr)):
                    return node.lineno
            if (isinstance(node, ast.AugAssign)
                    and _receiver_matches(node.target, name, attr=attr)
                    and (isinstance(node.op, ast.BitOr)
                         or _is_raw_container(node.value))):
                # ``d |= other`` / ``xs += [item]`` grow; ``n += 1`` is
                # a scalar counter, not a container.
                return node.lineno
    return None


def _shrinks(scope: ast.AST, name: str, *,
             attr: str | None = None) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _SHRINK_METHODS
                    and _receiver_matches(func.value, name, attr=attr)):
                return True
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and _receiver_matches(target.value, name,
                                              attr=attr)):
                    return True
    return False


def find_unbounded_globals(module: ast.Module) -> list[GrowthSite]:
    """Module-level raw containers grown inside functions with no shrink.

    Growth at module top level runs once at import and is bounded by the
    source itself; only growth reachable from function bodies (which run
    arbitrarily often in a long-lived process) counts.
    """
    candidates: dict[str, int] = {}
    for stmt in module.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        else:
            continue
        if isinstance(target, ast.Name) and _is_raw_container(value):
            candidates[target.id] = stmt.lineno

    functions = [node for node in ast.walk(module)
                 if isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))]
    out = []
    for name, lineno in candidates.items():
        grow = None
        for fn in functions:
            grow = _growth_lineno(fn, name)
            if grow is not None:
                break
        if grow is not None and not _shrinks(module, name):
            out.append(GrowthSite(owner=name, lineno=lineno,
                                  grow_lineno=grow))
    out.sort(key=lambda site: site.lineno)
    return out


def find_unbounded_cache_attrs(module: ast.Module,
                               markers: tuple[str, ...]) -> list[GrowthSite]:
    """``*Memo``/``*Cache`` classes growing instance containers unboundedly.

    A class whose name carries one of ``markers`` is assumed long-lived;
    every ``self.<attr>`` its methods grow must also be shrunk somewhere
    in the class (the bounded-LRU ``popitem`` under a length guard
    qualifies), else the attribute is flagged.
    """
    out = []
    for node in ast.walk(module):
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(marker in node.name for marker in markers):
            continue
        grown: dict[str, int] = {}
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            for attr in _self_container_attrs(method):
                lineno = _growth_lineno(method, "self", attr=attr)
                if lineno is not None and attr not in grown:
                    grown[attr] = lineno
        for attr, lineno in sorted(grown.items()):
            if not _shrinks(node, "self", attr=attr):
                out.append(GrowthSite(owner=f"{node.name}.{attr}",
                                      lineno=node.lineno,
                                      grow_lineno=lineno))
    out.sort(key=lambda site: (site.lineno, site.owner))
    return out


def _self_container_attrs(method: ast.AST) -> list[str]:
    """Attribute names the method touches as ``self.<attr>`` receivers."""
    attrs = []
    for node in ast.walk(method):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr not in attrs):
            attrs.append(node.attr)
    return attrs
