"""Whole-program may-raise analysis over the project call graph.

Each function gets an *escape set*: the exception types that may
propagate out of a call to it, as a mapping ``type name → origin site``
(the raise statement or intrinsic raiser call where the exception
actually enters the program). The analysis is a worklist fixpoint in the
style of :func:`repro.analysis.dataflow.effects.analyze_effects`:

1. scan each function body, collecting explicit ``raise`` statements and
   *intrinsic raisers* — library calls with a documented failure type
   (``np.linalg.solve`` → ``LinAlgError``, ``open`` → ``OSError``,
   ``json.loads`` → ``JSONDecodeError``, ``subprocess.run`` →
   ``OSError``);
2. at every call site, fold in the callee's current escape set;
3. filter everything through the enclosing ``try`` handlers — a handler
   catches a type when the type is the handler's class or a subclass of
   it in the :class:`Hierarchy` (builtin bases plus project class
   bases), a bare ``raise`` in a handler re-raises exactly the types the
   handler caught, and ``finally``/``else`` bodies are (correctly) not
   covered by the handlers;
4. iterate to a fixpoint (escape sets only grow, so this terminates).

The analysis is deliberately *under*-approximate outside its alphabet:
exceptions Python can raise anywhere (``MemoryError``, ``TypeError``
from arbitrary operators) are not tracked, calls through unresolvable
values (``fn(*args)`` where ``fn`` is a parameter) contribute nothing,
and nested ``def``/``lambda`` bodies are skipped (defining a function
raises nothing). That keeps boundary contracts checkable without
drowning them in "anything may raise anything".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    FunctionInfo,
    ProjectModel,
    _dotted_name,
)

#: Alternate spellings canonicalized before hierarchy lookups.
_ALIASES = {
    "IOError": "OSError",
    "EnvironmentError": "OSError",
    "socket.error": "OSError",
    "scipy.linalg.LinAlgError": "numpy.linalg.LinAlgError",
    "json.decoder.JSONDecodeError": "json.JSONDecodeError",
}

#: Base-class table for builtin and well-known external exceptions.
_BUILTIN_BASES: dict[str, str] = {
    "Exception": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "InterruptedError": "OSError",
    "BlockingIOError": "OSError",
    "ChildProcessError": "OSError",
    "ProcessLookupError": "OSError",
    "TimeoutError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    # well-known externals (the intrinsic-raiser alphabet)
    "numpy.linalg.LinAlgError": "ValueError",
    "json.JSONDecodeError": "ValueError",
    "pickle.PickleError": "Exception",
    "pickle.PicklingError": "pickle.PickleError",
    "pickle.UnpicklingError": "pickle.PickleError",
    "subprocess.SubprocessError": "Exception",
    "subprocess.TimeoutExpired": "subprocess.SubprocessError",
    "subprocess.CalledProcessError": "subprocess.SubprocessError",
}

#: ``numpy.linalg`` functions that raise ``LinAlgError`` on singular or
#: non-convergent systems.
_NUMPY_LINALG_RAISERS = frozenset({
    "solve", "inv", "cholesky", "eig", "eigh", "eigvals", "eigvalsh",
    "lstsq", "pinv", "svd", "qr", "matrix_power", "tensorsolve",
    "tensorinv",
})

#: ``scipy.linalg`` *decomposition* functions that raise ``LinAlgError``.
#: ``lu_factor``/``lu_solve``/``cho_solve`` are excluded: applying an
#: existing factorization cannot fail, and scipy's LU only *warns* on
#: singularity (the guard layer's rcond estimate is the real verdict).
_SCIPY_LINALG_RAISERS = frozenset({
    "cho_factor", "cholesky", "solve", "solve_banded", "inv",
    "eig", "eigh", "svd", "schur", "qr",
})

#: Calls raising ``OSError`` on filesystem/process trouble.
_OSERROR_CALLS = frozenset({
    "open", "os.open", "os.fdopen", "os.close", "os.replace", "os.rename",
    "os.unlink", "os.remove", "os.makedirs", "os.mkdir", "os.rmdir",
    "os.fsync", "os.kill", "os.pipe", "shutil.rmtree", "shutil.copy",
    "shutil.copytree", "shutil.move", "tempfile.mkdtemp",
    "tempfile.mkstemp", "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryDirectory",
})

#: Bare method names treated as filesystem OSError raisers on any
#: receiver (``path.write_text`` — receiver types are unknown
#: statically; mirrors the effect layer's convention).
_OSERROR_METHOD_TAILS = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes",
    "mkdir", "rmdir", "unlink", "touch",
})

#: ``subprocess`` launchers: OSError when the binary cannot be spawned.
_SUBPROCESS_LAUNCHERS = frozenset({
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
})


def canonical(name: str) -> str:
    """The canonical spelling of an exception type name."""
    return _ALIASES.get(name, name)


def intrinsic_raises(name: str) -> list[tuple[str, str]]:
    """``(exception type, detail)`` pairs one external call may raise."""
    name = canonical(name)
    head, _, tail = name.rpartition(".")
    out: list[tuple[str, str]] = []
    if head == "numpy.linalg" and tail in _NUMPY_LINALG_RAISERS:
        out.append(("numpy.linalg.LinAlgError",
                    f"{name}() raises LinAlgError on a singular or "
                    f"non-convergent system"))
    elif head == "scipy.linalg" and tail in _SCIPY_LINALG_RAISERS:
        out.append(("numpy.linalg.LinAlgError",
                    f"{name}() raises LinAlgError when the decomposition "
                    f"fails"))
    elif name in _OSERROR_CALLS or tail in _OSERROR_METHOD_TAILS:
        out.append(("OSError", f"{name}() raises OSError on I/O failure"))
    elif name in _SUBPROCESS_LAUNCHERS:
        out.append(("OSError",
                    f"{name}() raises OSError when the binary cannot "
                    f"be spawned"))
        out.append(("subprocess.TimeoutExpired",
                    f"{name}() raises TimeoutExpired past its timeout"))
    elif name in ("json.loads", "json.load"):
        out.append(("json.JSONDecodeError",
                    f"{name}() raises JSONDecodeError on malformed input"))
    return out


class Hierarchy:
    """Subtype queries over builtin bases plus project exception classes."""

    def __init__(self, project: ProjectModel):
        self._project = project
        self._bases: dict[str, tuple[str, ...]] = {}

    def bases_of(self, name: str) -> tuple[str, ...]:
        """Immediate base type names of ``name`` (canonicalized)."""
        name = canonical(name)
        cached = self._bases.get(name)
        if cached is not None:
            return cached
        bases: tuple[str, ...]
        cls = self._project.classes.get(name)
        if cls is not None:
            resolved = []
            module = self._project.modules[cls.module]
            for base in cls.base_names:
                target = module.imports.get(base)
                if target is not None and target in self._project.classes:
                    resolved.append(target)
                elif f"{cls.module}.{base}" in self._project.classes:
                    resolved.append(f"{cls.module}.{base}")
                else:
                    resolved.append(canonical(base))
            bases = tuple(resolved) or ("Exception",)
        elif name == "BaseException":
            bases = ()
        elif name in _BUILTIN_BASES:
            bases = (_BUILTIN_BASES[name],)
        else:
            # Unknown type (third-party, unresolvable): assume a plain
            # Exception subclass — broad handlers catch it, narrow ones
            # do not.
            bases = ("Exception",)
        self._bases[name] = bases
        return bases

    def is_subtype(self, name: str, ancestor: str) -> bool:
        """Whether ``name`` is ``ancestor`` or derives from it."""
        name, ancestor = canonical(name), canonical(ancestor)
        if ancestor == "BaseException":
            return True
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            cursor = frontier.pop()
            if cursor == ancestor:
                return True
            if cursor in seen:
                continue
            seen.add(cursor)
            frontier.extend(self.bases_of(cursor))
        return False

    def caught_by(self, handler_types: tuple[str, ...],
                  raised: str) -> bool:
        return any(self.is_subtype(raised, h) for h in handler_types)


@dataclass(frozen=True)
class RaiseSite:
    """Where an exception type enters the program."""

    exc_type: str
    function: str
    path: Path
    lineno: int
    detail: str


@dataclass
class RaiseAnalysis:
    """Per-function escape sets: ``type name → origin site``."""

    escapes: dict[str, dict[str, RaiseSite]] = field(default_factory=dict)
    hierarchy: Hierarchy | None = None

    def of(self, qualname: str) -> dict[str, RaiseSite]:
        return self.escapes.get(qualname, {})


#: A re-raise context inside an ``except`` handler: the types the
#: handler caught (with their origin sites) and the bound name, if any.
_Reraise = tuple[dict[str, RaiseSite], str | None]

_EMPTY_RERAISE: _Reraise = ({}, None)


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    """Every call in an expression tree, skipping lambda bodies."""
    stack = [node]
    while stack:
        cursor = stack.pop()
        if isinstance(cursor, ast.Lambda):
            continue
        if isinstance(cursor, ast.Call):
            yield cursor
        stack.extend(ast.iter_child_nodes(cursor))


class _FunctionScanner:
    """One structural scan of a function body against current state."""

    def __init__(self, fn: FunctionInfo, graph: CallGraph,
                 escapes_of: Callable[[str], dict[str, RaiseSite]],
                 hierarchy: Hierarchy, *, track_subscripts: bool = False):
        self.fn = fn
        self.graph = graph
        self.escapes_of = escapes_of
        self.hierarchy = hierarchy
        self.track_subscripts = track_subscripts
        resolve, resolve_class, resolve_external = graph._resolver(fn)
        self.resolve = resolve
        self.resolve_class = resolve_class
        self.resolve_external = resolve_external

    def scan(self) -> dict[str, RaiseSite]:
        return self._block(self.fn.node.body, _EMPTY_RERAISE)

    # -- structure --

    def _block(self, stmts: list[ast.stmt],
               reraise: _Reraise) -> dict[str, RaiseSite]:
        out: dict[str, RaiseSite] = {}
        for stmt in stmts:
            _merge(out, self._stmt(stmt, reraise))
        return out

    def _stmt(self, stmt: ast.stmt,
              reraise: _Reraise) -> dict[str, RaiseSite]:
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, reraise)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, reraise)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return {}  # defining a function/class raises nothing
        if isinstance(stmt, ast.If):
            out = self._expr(stmt.test)
            _merge(out, self._block(stmt.body, reraise))
            _merge(out, self._block(stmt.orelse, reraise))
            return out
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            out = self._expr(stmt.iter)
            _merge(out, self._block(stmt.body, reraise))
            _merge(out, self._block(stmt.orelse, reraise))
            return out
        if isinstance(stmt, ast.While):
            out = self._expr(stmt.test)
            _merge(out, self._block(stmt.body, reraise))
            _merge(out, self._block(stmt.orelse, reraise))
            return out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            out: dict[str, RaiseSite] = {}
            for item in stmt.items:
                _merge(out, self._expr(item.context_expr))
            _merge(out, self._block(stmt.body, reraise))
            return out
        # Leaf statements: whatever their expressions may call.
        return self._expr(stmt)

    def _try(self, stmt: ast.Try,
             reraise: _Reraise) -> dict[str, RaiseSite]:
        body = self._block(stmt.body, reraise)
        handler_types = [self._handler_types(h) for h in stmt.handlers]
        caught: list[dict[str, RaiseSite]] = [{} for _ in stmt.handlers]
        out: dict[str, RaiseSite] = {}
        for exc_type in sorted(body):
            for index, types in enumerate(handler_types):
                if self.hierarchy.caught_by(types, exc_type):
                    caught[index][exc_type] = body[exc_type]
                    break
            else:
                out[exc_type] = body[exc_type]
        for handler, handled in zip(stmt.handlers, caught):
            _merge(out, self._block(handler.body, (handled, handler.name)))
        # else/finally run outside the handlers' protection.
        _merge(out, self._block(stmt.orelse, reraise))
        _merge(out, self._block(stmt.finalbody, reraise))
        return out

    def _handler_types(self, handler: ast.ExceptHandler) -> tuple[str, ...]:
        if handler.type is None:
            return ("BaseException",)
        nodes = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                 else [handler.type])
        types = []
        for node in nodes:
            name = self._type_name(node)
            if name is not None:
                types.append(name)
        return tuple(types) or ("BaseException",)

    def _type_name(self, node: ast.expr) -> str | None:
        """The canonical exception type a name expression denotes."""
        parts = _dotted_name(node)
        if parts is None:
            return None
        cls = self.resolve_class(parts)
        if cls is not None:
            return cls
        if len(parts) > 1:
            # ``ConfigError.for_env(...)`` — a classmethod constructor.
            cls = self.resolve_class(parts[:-1])
            if cls is not None:
                return cls
        return canonical(self.resolve_external(parts))

    # -- leaves --

    def _raise(self, stmt: ast.Raise,
               reraise: _Reraise) -> dict[str, RaiseSite]:
        caught, bound_name = reraise
        if stmt.exc is None:
            return dict(caught)  # bare re-raise
        if (isinstance(stmt.exc, ast.Name) and bound_name is not None
                and stmt.exc.id == bound_name):
            return dict(caught)  # ``raise e`` of the handler's binding
        out: dict[str, RaiseSite] = {}
        # Constructor arguments evaluate (and may raise) first.
        _merge(out, self._expr(stmt.exc))
        if stmt.cause is not None:
            _merge(out, self._expr(stmt.cause))
        type_expr = (stmt.exc.func if isinstance(stmt.exc, ast.Call)
                     else stmt.exc)
        name = self._type_name(type_expr) or "Exception"
        site = RaiseSite(
            exc_type=name, function=self.fn.qualname, path=self.fn.path,
            lineno=stmt.lineno,
            detail=f"raise {name.rsplit('.', 1)[-1]}")
        out.setdefault(name, site)
        return out

    def _expr(self, node: ast.AST) -> dict[str, RaiseSite]:
        out: dict[str, RaiseSite] = {}
        for call in _calls_in(node):
            _merge(out, self._call(call))
        if self.track_subscripts:
            for sub in ast.walk(node):
                if (isinstance(sub, ast.Subscript)
                        and isinstance(sub.ctx, ast.Load)):
                    _merge(out, {"LookupError": RaiseSite(
                        exc_type="LookupError",
                        function=self.fn.qualname, path=self.fn.path,
                        lineno=sub.lineno,
                        detail="subscript access may raise "
                               "KeyError/IndexError")})
        return out

    def _call(self, call: ast.Call) -> dict[str, RaiseSite]:
        parts = _dotted_name(call.func)
        if parts is None:
            # The dispatch-table idiom: ``handlers[cmd](args)`` where
            # ``handlers`` is a dict of function references. Any entry
            # may be the callee, so fold in all of them.
            if isinstance(call.func, ast.Subscript):
                return self._dispatch_entries(call.func)
            return {}
        target = self.resolve(parts)
        if target is not None:
            return dict(self.escapes_of(target))
        cls = self.resolve_class(parts)
        if cls is not None:
            init = f"{cls}.__init__"
            return dict(self.escapes_of(init))
        if len(parts) == 1:
            # ``handler = handlers[cmd]`` then ``handler(args)``: the
            # local carries one entry of a dispatch table.
            bound = self._local_dispatch_value(parts[0])
            if bound is not None:
                return bound
        name = self.resolve_external(parts)
        out: dict[str, RaiseSite] = {}
        for exc_type, detail in intrinsic_raises(name):
            out.setdefault(exc_type, RaiseSite(
                exc_type=exc_type, function=self.fn.qualname,
                path=self.fn.path, lineno=call.lineno, detail=detail))
        return out

    def _dispatch_entries(self, subscript: ast.Subscript
                          ) -> dict[str, RaiseSite]:
        table = subscript.value
        if isinstance(table, ast.Dict):
            return self._fold_table(table)
        if isinstance(table, ast.Name):
            assigned = self._local_assignment(table.id)
            if isinstance(assigned, ast.Dict):
                return self._fold_table(assigned)
        return {}

    def _local_dispatch_value(self, name: str) -> dict[str, RaiseSite] | None:
        assigned = self._local_assignment(name)
        if isinstance(assigned, ast.Subscript):
            folded = self._dispatch_entries(assigned)
            if folded:
                return folded
        return None

    def _local_assignment(self, name: str) -> ast.expr | None:
        for node in ast.walk(self.fn.node):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == name):
                return node.value
        return None

    def _fold_table(self, table: ast.Dict) -> dict[str, RaiseSite]:
        out: dict[str, RaiseSite] = {}
        for value in table.values:
            ref_parts = _dotted_name(value)
            if ref_parts is None:
                continue
            target = self.resolve(ref_parts)
            if target is not None:
                _merge(out, self.escapes_of(target))
        return out


def _merge(into: dict[str, RaiseSite],
           update: dict[str, RaiseSite]) -> None:
    for exc_type, site in update.items():
        into.setdefault(exc_type, site)


def analyze_raises(project: ProjectModel, graph: CallGraph, *,
                   track_subscripts: bool = False) -> RaiseAnalysis:
    """Fixpoint may-raise analysis over every project function."""
    hierarchy = Hierarchy(project)
    escapes: dict[str, dict[str, RaiseSite]] = {
        q: {} for q in project.functions}

    callers: dict[str, set[str]] = {q: set() for q in project.functions}
    for caller, callees in graph.edges.items():
        for callee in callees:
            if callee in callers:
                callers[callee].add(caller)

    def escapes_of(qualname: str) -> dict[str, RaiseSite]:
        return escapes.get(qualname, {})

    worklist = sorted(project.functions)
    pending = set(worklist)
    while worklist:
        qualname = worklist.pop()
        pending.discard(qualname)
        fn = project.functions[qualname]
        scanner = _FunctionScanner(fn, graph, escapes_of, hierarchy,
                                   track_subscripts=track_subscripts)
        fresh = scanner.scan()
        if fresh.keys() != escapes[qualname].keys():
            escapes[qualname] = fresh
            for caller in sorted(callers.get(qualname, ())):
                if caller not in pending:
                    pending.add(caller)
                    worklist.append(caller)
        else:
            escapes[qualname] = fresh
    return RaiseAnalysis(escapes=escapes, hierarchy=hierarchy)
