"""Service-readiness contracts: exception flow and resource lifecycle.

ROADMAP item 1 turns this repo into a long-running routing service;
there, a leaked file descriptor, an unbounded cache, or a raw
``LinAlgError`` escaping the worker boundary is an outage, not a failed
trial. PR 2 (``TrialFailure``) and PR 4 (``NumericalIncident``)
established the structured-failure contracts; this package verifies
statically that they hold on every path, as a third-generation pass on
the :mod:`repro.analysis` rule framework:

* :mod:`repro.analysis.contracts.raises` — whole-program may-raise
  analysis: explicit ``raise`` statements plus intrinsic raisers
  (``np.linalg.*``, ``open``/``os.open``, ``subprocess``,
  ``json.loads``) propagated through the PR-5 call graph to a worklist
  fixpoint, with ``try``/``except`` filtering over a builtin + project
  exception hierarchy;
* :mod:`repro.analysis.contracts.lifecycle` — a statement-level CFG per
  function proving every acquired handle (``open``, ``tempfile.*``,
  ``Popen``, ``multiprocessing.Pipe``) reaches a release on all paths,
  and the unbounded-growth detector for long-lived containers (the
  bounded-LRU eviction idiom of ``repro.delay`` memoization is
  recognized as safe);
* :mod:`repro.analysis.contracts.rules` — the contracts rule pack
  (stable ``contracts-*`` ids, pragma-waivable like every other pass):
  boundary escapes (guard layer, pool workers, CLI exit codes),
  silent swallows, undeclared raises against
  :func:`repro.contracts.boundary` declarations, resource leaks, and
  unbounded growth;
* :mod:`repro.analysis.contracts.engine` — orchestration:
  ``analyze_contracts(paths)`` builds the model, runs the rules, and
  audits unused waiver pragmas.

Run it via ``python -m repro.analysis --pass contracts`` or
``repro-route lint --pass contracts`` (CI gates on it).
"""

from repro.analysis.contracts.engine import (
    BoundaryDecl,
    ContractOptions,
    ContractsModel,
    analyze_contracts,
    build_contracts_model,
)
from repro.analysis.contracts.lifecycle import (
    GrowthSite,
    ResourceLeak,
    find_resource_leaks,
    find_unbounded_cache_attrs,
    find_unbounded_globals,
)
from repro.analysis.contracts.raises import (
    Hierarchy,
    RaiseAnalysis,
    RaiseSite,
    analyze_raises,
)

__all__ = [
    "BoundaryDecl",
    "ContractOptions",
    "ContractsModel",
    "GrowthSite",
    "Hierarchy",
    "RaiseAnalysis",
    "RaiseSite",
    "ResourceLeak",
    "analyze_contracts",
    "analyze_raises",
    "build_contracts_model",
    "find_resource_leaks",
    "find_unbounded_cache_attrs",
    "find_unbounded_globals",
]
