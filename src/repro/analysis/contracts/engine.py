"""The contracts pass driver: options, model assembly, rule execution.

:func:`analyze_contracts` mirrors :func:`repro.analysis.dataflow.engine
.analyze_dataflow`: parse the tree into one project model, run the
may-raise fixpoint, locate the declared boundaries, and hand the
resulting :class:`ContractsModel` to every registered
``contracts``-category rule. :class:`ContractOptions` names the repo's
service boundaries — which module prefixes are guarded numeric code,
which functions wrap pool workers, which function is the CLI entry —
and what each boundary is allowed to let escape.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable

from repro.analysis.diagnostics import (
    Diagnostic,
    LintConfig,
    Location,
    Severity,
    registry,
    sort_diagnostics,
)
from repro.analysis.dataflow.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    _dotted_name,
    build_project,
)
from repro.analysis.contracts.raises import (
    RaiseAnalysis,
    analyze_raises,
    canonical,
)


@dataclass(frozen=True)
class ContractOptions:
    """The repo's service boundaries and their allowed failure surfaces."""

    #: Module prefixes forming the guarded numeric layer: no public
    #: function here may surface a raw linear-algebra failure.
    guarded_prefixes: tuple[str, ...] = ("repro.delay", "repro.guard",
                                         "repro.circuit")
    #: The raw numeric failure types the guard layer exists to absorb.
    forbidden_numeric: tuple[str, ...] = ("numpy.linalg.LinAlgError",
                                          "FloatingPointError")
    #: Pool wrapper functions: they convert every trial exception into a
    #: ``TrialFailure`` value, so (almost) nothing may escape them.
    pool_wrappers: tuple[str, ...] = (
        "repro.runtime.pool._worker_main",
        "repro.runtime.pool._run_serial",
        "repro.runtime.pool._run_parallel",
    )
    #: Types a pool wrapper may still surface: journal/pipe I/O failures
    #: happen outside the per-trial conversion and must reach the
    #: caller rather than masquerade as trial results.
    pool_wrapper_allowed: tuple[str, ...] = ("OSError",)
    #: Worker trial functions beyond ``PoolTask(fn=...)`` detection
    #: (same convention as ``DataflowOptions.worker_entries``).
    worker_entries: tuple[str, ...] = (
        "repro.runtime.execute.run_trial",
        "repro.delay.incremental._addition_score",
        "repro.delay.incremental._upgrade_score",
    )
    #: CLI entry points: every escaping exception must be mapped to a
    #: documented exit code (i.e. only SystemExit may leave).
    cli_entries: tuple[str, ...] = ("repro.cli.main",)
    cli_allowed: tuple[str, ...] = ("SystemExit",)
    #: Decorator (bare name) marking declared boundaries.
    decorator_name: str = "boundary"
    #: Class-name substrings marking long-lived caches for the
    #: unbounded-growth rule.
    growth_class_markers: tuple[str, ...] = ("Memo", "Cache")
    #: Opt-in: treat every subscript read as a potential LookupError
    #: raiser (very noisy; off by default, per-run flag).
    intrinsic_subscripts: bool = False


@dataclass(frozen=True)
class BoundaryDecl:
    """One ``@boundary(raises=...)`` declaration, read statically."""

    qualname: str
    raises: tuple[str, ...]  # canonical exception type names
    lineno: int


class ContractsModel:
    """Everything a contracts rule may consult, precomputed once."""

    def __init__(self, project: ProjectModel, graph: CallGraph,
                 raises: RaiseAnalysis, options: ContractOptions,
                 pool_entries: tuple[str, ...],
                 boundaries: dict[str, BoundaryDecl]):
        self.project = project
        self.graph = graph
        self.raises = raises
        self.options = options
        self.pool_entries = pool_entries
        self.boundaries = boundaries
        self._module_by_path: dict[Path, ModuleInfo] = {
            info.path: info for info in project.modules.values()}

    def module_at(self, path: str | Path) -> ModuleInfo | None:
        return self._module_by_path.get(Path(path))

    def allows(self, rule_id: str, path: str | Path, lineno: int) -> bool:
        """Whether an allow-pragma waives ``rule_id`` at this site."""
        module = self.module_at(path)
        if module is None:
            return False
        return module.source.allows(rule_id, lineno)

    def escapes_of(self, qualname: str):
        return self.raises.of(qualname)


def _decorated_boundaries(project: ProjectModel, graph: CallGraph,
                          decorator_name: str) -> dict[str, BoundaryDecl]:
    """Every ``@boundary(raises=...)`` declaration in the tree."""
    out: dict[str, BoundaryDecl] = {}
    for qualname in sorted(project.functions):
        fn = project.functions[qualname]
        decl = _boundary_decl(fn, graph, decorator_name)
        if decl is not None:
            out[qualname] = decl
    return out


def _boundary_decl(fn: FunctionInfo, graph: CallGraph,
                   decorator_name: str) -> BoundaryDecl | None:
    for deco in fn.node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        parts = _dotted_name(deco.func)
        if parts is None or parts[-1] != decorator_name:
            continue
        raises_expr = None
        for kw in deco.keywords:
            if kw.arg == "raises":
                raises_expr = kw.value
        if raises_expr is None:
            continue
        elements = (raises_expr.elts
                    if isinstance(raises_expr, ast.Tuple)
                    else [raises_expr])
        resolve, resolve_class, resolve_external = graph._resolver(fn)
        names = []
        for element in elements:
            name_parts = _dotted_name(element)
            if name_parts is None:
                continue
            cls = resolve_class(name_parts)
            names.append(cls if cls is not None
                         else canonical(resolve_external(name_parts)))
        return BoundaryDecl(qualname=fn.qualname, raises=tuple(names),
                            lineno=fn.node.lineno)
    return None


def build_contracts_model(paths: Iterable[str | Path],
                          options: ContractOptions | None = None
                          ) -> ContractsModel:
    """Parse, build the call graph, run the may-raise fixpoint."""
    from repro.analysis.dataflow.rules import detect_pool_entries

    opts = options or ContractOptions()
    project = build_project(paths)
    graph = CallGraph(project)
    raises = analyze_raises(project, graph,
                            track_subscripts=opts.intrinsic_subscripts)
    pool_entries = tuple(sorted(
        (set(opts.worker_entries) & project.functions.keys())
        | detect_pool_entries(project, graph)))
    boundaries = _decorated_boundaries(project, graph, opts.decorator_name)
    return ContractsModel(project=project, graph=graph, raises=raises,
                          options=opts, pool_entries=pool_entries,
                          boundaries=boundaries)


def analyze_contracts(paths: Iterable[str | Path],
                      config: LintConfig | None = None,
                      options: ContractOptions | None = None
                      ) -> list[Diagnostic]:
    """Run every enabled contracts rule over the tree under ``paths``.

    As in the other passes, the waiver audit runs after every other rule
    so it can see which pragmas were consumed.
    """
    from repro.analysis.contracts.rules import WAIVER_AUDIT_RULE

    model = build_contracts_model(paths, options)
    cfg = config or LintConfig()

    out: list[Diagnostic] = []
    for path, (lineno, message) in sorted(model.project.parse_errors.items()):
        out.append(Diagnostic(
            rule="source-syntax-error", severity=Severity.ERROR,
            message=f"syntax error: {message}",
            location=Location(file=str(path), line=lineno)))

    main_cfg = LintConfig(
        disabled=cfg.disabled | {WAIVER_AUDIT_RULE},
        severity_overrides=cfg.severity_overrides)
    out.extend(registry.run("contracts", model, main_cfg))
    if cfg.enabled(WAIVER_AUDIT_RULE):
        audit = registry.get(WAIVER_AUDIT_RULE)
        severity = cfg.severity_for(audit)
        out.extend(replace(d, severity=severity) if d.severity != severity
                   else d for d in audit.check(model))
        sort_diagnostics(out)
    return out


# Importing the rule pack registers every contracts-* rule; it lives at
# the bottom because the rules type-annotate against ContractsModel.
from repro.analysis.contracts import rules as _rules  # noqa: E402,F401
