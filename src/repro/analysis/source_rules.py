"""AST-level lint rules enforcing repo discipline on the Python sources.

The routing library has a few conventions that a type checker cannot
express but whose violation has burned EDA codebases forever:

* coordinates are floats, so ``==``/``!=`` on them (or on Manhattan
  distances and costs) is a latent nondeterminism bug — compare against
  tolerances instead;
* :class:`~repro.geometry.net.Net` and
  :class:`~repro.geometry.point.Point` are frozen; sneaking past the
  freeze with ``object.__setattr__`` from outside the class invalidates
  hashes and every cached routing built on them;
* every algorithm module in ``core/`` must validate its routing at the
  boundary (via :mod:`repro.graph.validation` or :mod:`repro.analysis`)
  so malformed graphs fail at construction, not deep in delay code;
* mutable default arguments alias state across calls.

Run one file through :func:`lint_source` or a whole tree through
:func:`lint_source_tree` (also exposed as ``python -m repro.analysis``).
A violation can be locally waived with a ``# repro: allow=<rule-id>``
comment on the offending line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.diagnostics import (
    Diagnostic,
    LintConfig,
    Location,
    Severity,
    registry,
    rule,
    sort_diagnostics,
)

#: Attribute names treated as plane coordinates.
COORDINATE_ATTRS = frozenset({"x", "y"})

#: Functions/methods returning geometric lengths — never compare with ==.
LENGTH_FUNCTIONS = frozenset(
    {"manhattan", "euclidean", "distance", "cost", "edge_length"})

#: Names that count as a routing-boundary validation call.
BOUNDARY_CHECKS = frozenset({
    "check_connected", "check_spanning", "check_tree",
    "lint_graph", "validate_routing",
})

#: ``core/`` modules that define no routing-producing algorithms.
BOUNDARY_EXEMPT = frozenset({"__init__.py", "result.py"})

#: Comment waiving a rule on its line: ``# repro: allow=<rule-id>``.
ALLOW_PRAGMA = "# repro: allow="

#: What a waiver's rule-id token may look like (``all`` included).
_RULE_ID_TOKEN = re.compile(r"[a-z][a-z0-9-]*")


@dataclass(frozen=True)
class ParsedSource:
    """One Python file parsed for linting.

    Waiver pragmas are consulted through :meth:`allows` (one line) or
    :meth:`allows_statement` (a whole statement's span, including the
    decorator lines of a decorated def). Every *consulted-and-matched*
    pragma is recorded in ``used_waivers`` so an audit pass can flag
    pragmas that waive nothing.
    """

    path: Path
    tree: ast.Module
    lines: tuple[str, ...]
    #: ``(lineno, rule-id-as-written)`` of every pragma that waived a
    #: diagnostic this run. Mutable bookkeeping, excluded from equality.
    used_waivers: set[tuple[int, str]] = field(
        default_factory=set, compare=False, repr=False)

    def _pragma_on(self, line: int) -> tuple[int, str] | None:
        """The ``(lineno, rule_id)`` pragma on ``line``, if any.

        Only well-formed rule-id tokens count: mentions of the pragma
        syntax inside docstrings or string literals are not pragmas.
        """
        if not 1 <= line <= len(self.lines):
            return None
        text = self.lines[line - 1]
        marker = text.find(ALLOW_PRAGMA)
        if marker < 0:
            return None
        tokens = text[marker + len(ALLOW_PRAGMA):].split()
        if not tokens or not _RULE_ID_TOKEN.fullmatch(tokens[0]):
            return None
        return (line, tokens[0])

    def waiver_lines(self) -> list[tuple[int, str]]:
        """Every pragma in the file as ``(lineno, rule-id-as-written)``."""
        found = []
        for line in range(1, len(self.lines) + 1):
            pragma = self._pragma_on(line)
            if pragma is not None:
                found.append(pragma)
        return found

    def allows(self, rule_id: str, line: int) -> bool:
        """Whether ``line`` carries an allow-pragma for ``rule_id``."""
        pragma = self._pragma_on(line)
        if pragma is None or pragma[1] not in (rule_id, "all"):
            return False
        self.used_waivers.add(pragma)
        return True

    def allows_statement(self, rule_id: str, node: ast.AST) -> bool:
        """Whether any line of ``node``'s statement waives ``rule_id``.

        The span runs from the first decorator (for decorated defs)
        through the statement's last line — but for function/class
        definitions it stops at the signature, so a pragma deep inside a
        body never waives a definition-level diagnostic.
        """
        start = getattr(node, "lineno", None)
        if start is None:
            return False
        decorators = getattr(node, "decorator_list", [])
        if decorators:
            start = min(start, decorators[0].lineno)
        end = getattr(node, "end_lineno", None) or start
        body = getattr(node, "body", None)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)) and body:
            end = min(end, max(node.lineno, body[0].lineno - 1))
        return any(self.allows(rule_id, line)
                   for line in range(start, end + 1))

    def location(self, node: ast.AST) -> Location:
        return Location(file=str(self.path),
                        line=getattr(node, "lineno", None))


def _call_name(node: ast.AST) -> str | None:
    """The bare name of a called function, for ``f(...)`` and ``o.f(...)``."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


def _is_coordinate_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute) and node.attr in COORDINATE_ATTRS:
        return True
    return _call_name(node) in LENGTH_FUNCTIONS


@rule("source-float-eq", category="source", severity=Severity.ERROR,
      summary="== or != on coordinates or geometric lengths",
      rationale="coordinates and wirelengths are floats; exact equality "
                "depends on summation order and silently flips between "
                "platforms — compare against a tolerance instead")
def check_float_eq(source: ParsedSource) -> Iterator[Diagnostic]:
    r = registry.get("source-float-eq")
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        offender = next((o for o in operands if _is_coordinate_expr(o)), None)
        if offender is None or source.allows_statement(r.id, node):
            continue
        yield r.diagnostic(
            f"floating-point equality on {ast.unparse(offender)!r}",
            location=source.location(node),
            hint="use abs(a - b) <= tol, or math.isclose")


@rule("source-frozen-mutation", category="source", severity=Severity.ERROR,
      summary="object.__setattr__ used outside the defining class",
      rationale="Net and Point are frozen and hashable; mutating one "
                "from outside its own __post_init__ corrupts every dict "
                "or set the instance already lives in")
def check_frozen_mutation(source: ParsedSource) -> Iterator[Diagnostic]:
    r = registry.get("source-frozen-mutation")
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"):
            continue
        target = node.args[0] if node.args else None
        if isinstance(target, ast.Name) and target.id == "self":
            continue  # a class may complete its own frozen __init__
        if source.allows_statement(r.id, node):
            continue
        yield r.diagnostic(
            f"object.__setattr__ on {ast.unparse(target) if target else '?'}",
            location=source.location(node),
            hint="build a new instance instead of mutating a frozen one")


@rule("source-missing-boundary-check", category="source",
      severity=Severity.ERROR,
      summary="a core/ algorithm module performs no boundary validation",
      rationale="core algorithms must call a graph.validation or "
                "analysis check before trusting a routing, so malformed "
                "graphs fail at the boundary instead of producing a "
                "plausible-looking delay downstream")
def check_boundary_validation(source: ParsedSource) -> Iterator[Diagnostic]:
    r = registry.get("source-missing-boundary-check")
    if "core" not in source.path.parent.parts:
        return
    if (source.path.name in BOUNDARY_EXEMPT
            or source.path.name.startswith("test_")
            or source.path.name == "conftest.py"):
        return
    for node in ast.walk(source.tree):
        if _call_name(node) in BOUNDARY_CHECKS:
            return
    yield r.diagnostic(
        f"module {source.path.name} never calls any of "
        f"{', '.join(sorted(BOUNDARY_CHECKS))}",
        location=Location(file=str(source.path), line=1),
        hint="call check_spanning/check_tree (or lint_graph) on the "
             "routing the module builds or consumes")


@rule("source-mutable-default", category="source", severity=Severity.ERROR,
      summary="a function has a mutable default argument",
      rationale="list/dict/set defaults are evaluated once and shared "
                "across calls; state leaks between independent routings")
def check_mutable_default(source: ParsedSource) -> Iterator[Diagnostic]:
    r = registry.get("source-mutable-default")
    mutable = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
               ast.SetComp)
    constructors = frozenset({"list", "dict", "set"})
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            bad = (isinstance(default, mutable)
                   or _call_name(default) in constructors)
            if bad and not (source.allows(r.id, default.lineno)
                            or source.allows_statement(r.id, node)):
                yield r.diagnostic(
                    f"function {node.name!r} has mutable default "
                    f"{ast.unparse(default)!r}",
                    location=source.location(default),
                    hint="default to None and build inside the function")


@rule("source-invariant-assert", category="source", severity=Severity.ERROR,
      summary="a core/ algorithm guards a runtime invariant with assert",
      rationale="assert statements disappear under python -O, silently "
                "disabling the invariant they guard; core algorithms "
                "must raise through the guard sentinels instead so the "
                "check survives every interpreter mode")
def check_invariant_assert(source: ParsedSource) -> Iterator[Diagnostic]:
    r = registry.get("source-invariant-assert")
    if "core" not in source.path.parent.parts:
        return
    if (source.path.name.startswith("test_")
            or source.path.name == "conftest.py"):
        return
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Assert):
            continue
        if source.allows_statement(r.id, node):
            continue
        yield r.diagnostic(
            f"runtime invariant asserted: {ast.unparse(node.test)!r}",
            location=source.location(node),
            hint="use repro.guard.sentinels.ensure(...) or "
                 "ensure_found(...) — they raise InvariantViolation in "
                 "every interpreter mode (python -O included)")


#: The waiver-audit rule id; it must run *after* every other rule of its
#: pass so the used-waiver bookkeeping is complete (see lint_source).
WAIVER_AUDIT_RULE = "source-unused-waiver"


@rule(WAIVER_AUDIT_RULE, category="source", severity=Severity.WARNING,
      summary="an allow-pragma waives nothing (stale or misspelled)",
      rationale="a pragma that no longer suppresses a diagnostic hides "
                "the next real violation on its line; stale waivers must "
                "be deleted, and a typo in the rule id means the "
                "intended waiver never worked at all")
def check_unused_waiver(source: ParsedSource) -> Iterator[Diagnostic]:
    r = registry.get(WAIVER_AUDIT_RULE)
    for lineno, rule_id in source.waiver_lines():
        if rule_id == "all":
            continue  # blanket waivers cannot be attributed to one rule
        location = Location(file=str(source.path), line=lineno)
        if rule_id not in registry:
            yield r.diagnostic(
                f"waiver names unknown rule {rule_id!r}",
                location=location,
                hint="check the rule id against --list-rules")
            continue
        if registry.get(rule_id).category != "source":
            continue  # audited by that rule's own pass (e.g. dataflow)
        if (lineno, rule_id) not in source.used_waivers:
            yield r.diagnostic(
                f"pragma waives {rule_id!r} but nothing on this "
                f"statement violates it",
                location=location,
                hint="delete the stale pragma (or fix the rule id)")


def parse_source(path: str | Path) -> ParsedSource | Diagnostic:
    """Parse one file; a syntax error comes back as a diagnostic."""
    file_path = Path(path)
    text = file_path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(file_path))
    except SyntaxError as exc:
        return Diagnostic(
            rule="source-syntax-error", severity=Severity.ERROR,
            message=f"syntax error: {exc.msg}",
            location=Location(file=str(file_path), line=exc.lineno))
    return ParsedSource(path=file_path, tree=tree,
                        lines=tuple(text.splitlines()))


def lint_source(path: str | Path,
                config: LintConfig | None = None) -> list[Diagnostic]:
    """Run every enabled source rule against one Python file.

    The waiver audit runs last, explicitly: it inspects which pragmas the
    other rules consumed, so it must never run before them regardless of
    what rule-id sort order would say.
    """
    parsed = parse_source(path)
    if isinstance(parsed, Diagnostic):
        return [parsed]
    cfg = config or LintConfig()
    main_cfg = LintConfig(
        disabled=cfg.disabled | {WAIVER_AUDIT_RULE},
        severity_overrides=cfg.severity_overrides)
    out = registry.run("source", parsed, main_cfg)
    if cfg.enabled(WAIVER_AUDIT_RULE):
        audit = registry.get(WAIVER_AUDIT_RULE)
        severity = cfg.severity_for(audit)
        out.extend(replace(d, severity=severity) if d.severity != severity
                   else d for d in audit.check(parsed))
        sort_diagnostics(out)
    return out


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files they contain."""
    for path in paths:
        p = Path(path)
        if p.is_dir():
            yield from sorted(
                f for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
                and not any(part.startswith(".") for part in f.parts))
        else:
            yield p


def lint_source_tree(paths: Iterable[str | Path],
                     config: LintConfig | None = None) -> list[Diagnostic]:
    """Lint every Python file under ``paths`` (files or directories)."""
    out: list[Diagnostic] = []
    for file_path in iter_python_files(paths):
        out.extend(lint_source(file_path, config))
    return out
