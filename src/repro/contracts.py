"""Declared exception contracts for service boundaries.

A *boundary* is a function other layers call without wanting to know its
internals — the journal writer, the guarded solver, a CLI entry point.
Each boundary declares, with :func:`boundary`, the exception types it is
allowed to let escape::

    @boundary(raises=(OSError,))
    def atomic_write_text(path, text): ...

The decorator is purely declarative: it returns the function object
unchanged (so pool workers can still pickle it by reference and there is
zero call overhead) and records an :class:`ExceptionContract` in a
process-wide registry. Enforcement is static — the
``contracts-undeclared-raise`` rule of :mod:`repro.analysis.contracts`
computes each decorated function's whole-program may-raise set and flags
any escaping type the declaration does not cover.

This module deliberately imports nothing from the rest of ``repro``
(standard library only), so any layer — including :mod:`repro.guard`,
which must stay below the circuit/delay layers in the import graph —
can declare a contract without creating an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


@dataclass(frozen=True)
class ExceptionContract:
    """The declared failure surface of one boundary function.

    Attributes:
        qualname: ``module.qualified.name`` of the declared function.
        raises: exception types allowed to escape (subclasses of a
            declared type are covered too).
    """

    qualname: str
    raises: tuple[type[BaseException], ...]

    def covers(self, exc_type: type[BaseException]) -> bool:
        """Whether ``exc_type`` (or a base of it) is declared."""
        return issubclass(exc_type, self.raises) if self.raises else False


#: Every declared contract, keyed by the function's dotted qualname.
#: Grows only at import time, one entry per ``@boundary`` use.
_REGISTRY: dict[str, ExceptionContract] = {}  # repro: allow=contracts-unbounded-growth — bounded by the number of decorated defs


def boundary(*, raises: tuple[type[BaseException], ...] | type[BaseException]
             ) -> Callable[[F], F]:
    """Declare the exception types a boundary function may let escape.

    Args:
        raises: one exception type or a tuple of them. An empty tuple
            declares a *total* boundary (nothing may escape).

    Returns:
        A decorator that registers the contract and returns the function
        unchanged.
    """
    types = raises if isinstance(raises, tuple) else (raises,)
    for item in types:
        if not (isinstance(item, type)
                and issubclass(item, BaseException)):
            raise TypeError(f"boundary(raises=...) takes exception types, "
                            f"got {item!r}")

    def decorate(fn: F) -> F:
        qualname = f"{fn.__module__}.{fn.__qualname__}"
        _REGISTRY[qualname] = ExceptionContract(qualname=qualname,
                                                raises=types)
        return fn

    return decorate


def contract_for(fn: Callable) -> ExceptionContract | None:
    """The registered contract of a decorated function, if any."""
    return _REGISTRY.get(f"{fn.__module__}.{fn.__qualname__}")


def declared_contracts() -> dict[str, ExceptionContract]:
    """A snapshot of every registered contract, keyed by qualname."""
    return dict(_REGISTRY)
