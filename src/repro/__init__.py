"""repro — Non-Tree Routing (McCoy & Robins, DATE 1994) reproduction library.

This package implements the paper's low-delay routing-graph algorithms (LDRG,
SLDRG, H1/H2/H3, ERT-based LDRG) together with every substrate they need:

* ``repro.geometry`` — pins, nets, Manhattan metric, random net generation.
* ``repro.graph``    — routing graphs, spanning trees, Iterated 1-Steiner.
* ``repro.circuit``  — a from-scratch linear circuit simulator (MNA, transient,
  moments) standing in for SPICE.
* ``repro.delay``    — interconnect technology parameters, Elmore delay for
  trees and for arbitrary RC graphs, transient ("SPICE") delay.
* ``repro.core``     — the paper's routing algorithms and the Section-5
  extensions (critical-sink, wire sizing, hybrid).
* ``repro.experiments`` — the harness that regenerates every table and figure
  of the paper's evaluation.

Quickstart::

    from repro import Net, Technology, ldrg

    net = Net.random(num_pins=10, seed=7)
    tech = Technology.cmos08()
    result = ldrg(net, tech)
    print(result.delay, result.cost, sorted(result.graph.edges()))
"""

from repro.geometry import Net, Point
from repro.graph import RoutingGraph, iterated_one_steiner, prim_mst
from repro.delay import (
    DelayModel,
    Technology,
    elmore_delays,
    graph_elmore_delays,
    spice_delay,
    spice_delays,
)
from repro.core import (
    RoutingResult,
    csorg_ldrg,
    ert,
    ert_ldrg,
    h1,
    h2,
    h3,
    horg,
    ldrg,
    sldrg,
    wsorg,
)

__version__ = "1.0.0"

__all__ = [
    "DelayModel",
    "Net",
    "Point",
    "RoutingGraph",
    "RoutingResult",
    "Technology",
    "csorg_ldrg",
    "elmore_delays",
    "ert",
    "ert_ldrg",
    "graph_elmore_delays",
    "h1",
    "h2",
    "h3",
    "horg",
    "iterated_one_steiner",
    "ldrg",
    "prim_mst",
    "sldrg",
    "spice_delay",
    "spice_delays",
    "wsorg",
]
