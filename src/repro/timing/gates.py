"""A minimal standard-cell gate library.

Each gate is reduced to the three numbers interconnect analysis needs:
an output drive resistance (the ``r_d`` of the Elmore/SPICE models), an
input capacitance (the sink load its pins present to nets), and an
intrinsic switching delay. Values are representative of the paper's 0.8µ
CMOS node — the same regime as Table 1's 100 Ω driver and 15.3 fF load.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Gate:
    """One library cell.

    Attributes:
        name: cell name ("INV", "NAND2", ...).
        drive_resistance: output driver resistance (Ω).
        input_capacitance: per-input-pin load (F).
        intrinsic_delay: input-to-output switching delay excluding
            interconnect (s).
    """

    name: str
    drive_resistance: float
    input_capacitance: float
    intrinsic_delay: float

    def __post_init__(self) -> None:
        if self.drive_resistance <= 0:
            raise ValueError(f"{self.name}: drive resistance must be positive")
        if self.input_capacitance <= 0:
            raise ValueError(f"{self.name}: input capacitance must be positive")
        if self.intrinsic_delay < 0:
            raise ValueError(f"{self.name}: intrinsic delay must be >= 0")


class GateLibrary:
    """A name → :class:`Gate` catalogue with a 0.8µ-flavoured default."""

    def __init__(self, gates: list[Gate]):
        if not gates:
            raise ValueError("a gate library needs at least one cell")
        self._gates = {gate.name: gate for gate in gates}
        if len(self._gates) != len(gates):
            raise ValueError("duplicate gate names in library")

    @classmethod
    def cmos08(cls) -> "GateLibrary":
        """Default cells matching the paper's interconnect regime."""
        return cls([
            Gate("INV", drive_resistance=120.0,
                 input_capacitance=8e-15, intrinsic_delay=30e-12),
            Gate("BUF", drive_resistance=100.0,
                 input_capacitance=9e-15, intrinsic_delay=55e-12),
            Gate("NAND2", drive_resistance=160.0,
                 input_capacitance=10e-15, intrinsic_delay=45e-12),
            Gate("NOR2", drive_resistance=190.0,
                 input_capacitance=11e-15, intrinsic_delay=55e-12),
            Gate("XOR2", drive_resistance=210.0,
                 input_capacitance=13e-15, intrinsic_delay=80e-12),
            Gate("DFF", drive_resistance=140.0,
                 input_capacitance=12e-15, intrinsic_delay=120e-12),
        ])

    def __getitem__(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise KeyError(f"no gate named {name!r} in library") from None

    def __contains__(self, name: str) -> bool:
        return name in self._gates

    def names(self) -> list[str]:
        return sorted(self._gates)

    def combinational(self) -> list[Gate]:
        """Cells usable inside the logic cone (everything but DFF)."""
        return [g for g in self._gates.values() if g.name != "DFF"]
