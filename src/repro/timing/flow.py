"""The iterative timing-driven routing flow.

The loop the paper's introduction describes (Dunlop et al. [10] priorities,
Boese et al. [5] critical-sink exploitation), assembled from this repo's
pieces:

1. route every net with the MST (the timing-oblivious baseline);
2. run STA over the routed design;
3. re-route the nets feeding the critical path with CSORG-LDRG, using
   per-sink criticalities extracted from the STA;
4. repeat, keeping every improvement.

Each round only touches critical nets, so non-critical wirelength stays
near-minimal while the worst path sheds interconnect delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.critical_sink import csorg_ldrg
from repro.delay.parameters import Technology
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph
from repro.timing.design import Design
from repro.timing.sta import TimingReport, analyze, net_technology, sink_criticalities


@dataclass
class FlowReport:
    """Outcome of the iterative flow.

    Attributes:
        reports: the STA report after each round (round 0 = MST baseline).
        rerouted: per round (from 1), the net names that were re-routed.
    """

    reports: list[TimingReport] = field(default_factory=list)
    rerouted: list[list[str]] = field(default_factory=list)

    @property
    def initial_arrival(self) -> float:
        return self.reports[0].max_arrival

    @property
    def final_arrival(self) -> float:
        return self.reports[-1].max_arrival

    @property
    def improvement(self) -> float:
        """Fractional critical-path improvement over the MST baseline."""
        return 1.0 - self.final_arrival / self.initial_arrival

    def summary(self) -> str:
        arrivals = " -> ".join(f"{r.max_arrival * 1e9:.3f}"
                               for r in self.reports)
        nets = sum(len(round_nets) for round_nets in self.rerouted)
        return (f"critical path {arrivals} ns over {len(self.reports) - 1} "
                f"re-routing round(s); {nets} net(s) re-routed; "
                f"{self.improvement:.1%} improvement")


def timing_driven_flow(design: Design, tech: Technology,
                       rounds: int = 2,
                       clock_period: float = 5e-9,
                       delay_model: str = "elmore") -> FlowReport:
    """Run the route → STA → critical re-route loop.

    Args:
        design: the placed design.
        tech: base interconnect technology.
        rounds: maximum re-routing rounds (stops early when a round finds
            nothing to improve).
        clock_period: slack reference for the reports.
        delay_model: oracle for both STA and CSORG re-routing.

    Returns:
        A :class:`FlowReport`; ``reports[0]`` is the MST baseline STA.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    flow = FlowReport()
    routings: dict[str, RoutingGraph] = {}
    report = analyze(design, tech, router=prim_mst,
                     delay_model=delay_model, clock_period=clock_period)
    routings = dict(report.routings)
    flow.reports.append(report)

    for _ in range(rounds):
        path = report.critical_path(design)
        critical_pairs = set(zip(path, path[1:]))
        critical_nets = [
            name for name, net in design.nets.items()
            if any((net.driver, load) in critical_pairs for load in net.loads)
        ]
        changed: list[str] = []
        trial_routings = dict(routings)
        for net_name in critical_nets:
            net = design.nets[net_name]
            local_tech = net_technology(tech, design, net)
            weights = sink_criticalities(design, report, net_name)
            geometry = design.geometry_of(net_name)
            result = csorg_ldrg(geometry, local_tech, criticalities=weights,
                                delay_model=delay_model)
            if result.improved:
                trial_routings[net_name] = result.graph
                changed.append(net_name)
        if not changed:
            break
        trial_report = analyze(design, tech, router=prim_mst,
                               delay_model=delay_model,
                               clock_period=clock_period,
                               routings=trial_routings)
        # Net-local wins can shift the critical path and hurt globally;
        # a round is only committed if the design-level arrival improves.
        if trial_report.max_arrival >= report.max_arrival:
            break
        routings = trial_routings
        report = trial_report
        flow.reports.append(report)
        flow.rerouted.append(changed)
    return flow
