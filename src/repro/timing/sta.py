"""Static timing analysis over routed interconnect.

Arrival times propagate topologically: a gate's output arrival is the
max over its input pins of (driving gate's arrival + driving gate's
intrinsic delay + routed net delay to that pin). Net delays come from
*actual routed topologies* evaluated by any of the library's delay
models, with the driving cell's drive resistance and the worst load pin's
input capacitance substituted into the interconnect technology — so the
router's choices flow straight into the timing numbers, which is the
whole point of timing-driven routing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.delay.models import DelayModel, get_delay_model
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.routing_graph import RoutingGraph
from repro.timing.design import Design, DesignNet

#: A router maps a geometry net to a routing topology.
Router = Callable[[Net], RoutingGraph]


@dataclass
class TimingReport:
    """The result of one STA pass.

    Attributes:
        arrivals: instance → output arrival time (s).
        net_sink_delays: net name → {load instance → routed delay (s)}.
        routings: net name → the routing graph used.
        clock_period: the target period the slack numbers refer to (s).
    """

    arrivals: dict[str, float]
    net_sink_delays: dict[str, dict[str, float]]
    routings: dict[str, RoutingGraph]
    clock_period: float

    @property
    def max_arrival(self) -> float:
        """The design's longest path delay (critical path arrival)."""
        return max(self.arrivals.values())

    @property
    def worst_slack(self) -> float:
        """WNS = clock period − critical arrival."""
        return self.clock_period - self.max_arrival

    def total_negative_slack(self, design: Design) -> float:
        """TNS over timing endpoints (instances with no fanout)."""
        endpoints = [name for name in design.instances
                     if not design.fanout_nets(name)]
        return sum(min(0.0, self.clock_period - self.arrivals[name])
                   for name in endpoints)

    def critical_path(self, design: Design) -> list[str]:
        """Instances along the longest path, source first."""
        end = max(self.arrivals, key=self.arrivals.get)
        path = [end]
        while True:
            node = path[-1]
            fanins = design.fanin_nets(node)
            if not fanins:
                break
            best = max(
                (net for net in fanins),
                key=lambda net: (self.arrivals[net.driver]
                                 + design.instances[net.driver].gate.intrinsic_delay
                                 + self.net_sink_delays[net.name][node]))
            path.append(best.driver)
        path.reverse()
        return path


def net_technology(base: Technology, design: Design,
                   net: DesignNet) -> Technology:
    """Interconnect technology specialized to one net's driver and loads.

    The driver resistance becomes the driving cell's; the sink load
    becomes the worst (largest) input capacitance among the net's load
    pins — a standard pessimistic simplification for uniform-load models.
    """
    driver_gate = design.instances[net.driver].gate
    worst_load = max(design.instances[load].gate.input_capacitance
                     for load in net.loads)
    return replace(base, driver_resistance=driver_gate.drive_resistance,
                   sink_capacitance=worst_load)


def analyze(design: Design, tech: Technology, router,
            delay_model: str | DelayModel = "elmore",
            clock_period: float = 5e-9,
            routings: dict[str, RoutingGraph] | None = None) -> TimingReport:
    """One STA pass over the design.

    Args:
        design: the placed design.
        tech: base interconnect technology (Table 1).
        router: callable ``Net -> RoutingGraph``; ignored for nets already
            present in ``routings``.
        delay_model: spec for the net-delay oracle; the oracle is rebuilt
            per net because each net sees its own driver/load technology.
        clock_period: target period for the slack figures.
        routings: optional pre-routed topologies to reuse (the iterative
            flow re-routes only critical nets and keeps the rest).
    """
    design.validate()
    fixed = dict(routings) if routings else {}
    net_sink_delays: dict[str, dict[str, float]] = {}
    graphs: dict[str, RoutingGraph] = {}
    for net_name, net in design.nets.items():
        local_tech = net_technology(tech, design, net)
        geometry = design.geometry_of(net_name)
        graph = fixed.get(net_name)
        if graph is None:
            graph = router(geometry)
        graphs[net_name] = graph
        oracle = get_delay_model(delay_model, local_tech)
        sink_delays = oracle.delays(graph)
        net_sink_delays[net_name] = {
            load: sink_delays[i + 1] for i, load in enumerate(net.loads)}

    arrivals: dict[str, float] = {}
    for name in design.topological_order():
        fanins = design.fanin_nets(name)
        if not fanins:
            arrivals[name] = design.instances[name].gate.intrinsic_delay
            continue
        arrivals[name] = max(
            arrivals[net.driver]
            + design.instances[net.driver].gate.intrinsic_delay
            + net_sink_delays[net.name][name]
            for net in fanins)
    return TimingReport(arrivals=arrivals, net_sink_delays=net_sink_delays,
                        routings=graphs, clock_period=clock_period)


def sink_criticalities(design: Design, report: TimingReport,
                       net_name: str) -> dict[int, float]:
    """CSORG criticalities for one net, from the STA's downstream view.

    Each load pin's weight is how close the path *through that pin* comes
    to the design's critical arrival, clipped at zero and normalized so
    the worst pin has weight 1 — precisely the "timing information
    obtained during the performance-driven placement phase" of
    Section 5.1.
    """
    net = design.nets[net_name]
    worst = report.max_arrival
    if worst <= 0:
        raise ValueError("degenerate timing report: non-positive arrival")
    downstream = {}
    for i, load in enumerate(net.loads, start=1):
        through = report.arrivals[load]
        downstream[i] = max(0.0, 1.0 - (worst - through) / worst)
    top = max(downstream.values())
    if top <= 0:
        return {i: 1.0 for i in downstream}
    return {i: value / top for i, value in downstream.items()}
