"""Static timing analysis substrate for timing-driven routing.

Section 5.1 of the paper assumes sink criticalities "reflecting the
timing information obtained during the performance-driven placement
phase" — i.e. an STA engine upstream of the router. This package builds
that substrate:

* :mod:`repro.timing.gates`   — a small gate library (drive resistance,
  input capacitance, intrinsic delay);
* :mod:`repro.timing.design`  — placed gate-level designs (instances,
  nets, DAG checks) plus a seeded random-design generator;
* :mod:`repro.timing.sta`     — topological arrival-time propagation with
  net delays taken from real routed topologies, slack/criticality
  extraction;
* :mod:`repro.timing.flow`    — the classic iterative loop: route all
  nets, run STA, re-route the critical nets with CSORG-LDRG using the
  extracted criticalities.
"""

from repro.timing.gates import Gate, GateLibrary
from repro.timing.design import (
    Design,
    DesignNet,
    Instance,
    random_design,
)
from repro.timing.sta import TimingReport, analyze, sink_criticalities
from repro.timing.flow import FlowReport, timing_driven_flow

__all__ = [
    "Design",
    "DesignNet",
    "FlowReport",
    "Gate",
    "GateLibrary",
    "Instance",
    "TimingReport",
    "analyze",
    "random_design",
    "sink_criticalities",
    "timing_driven_flow",
]
