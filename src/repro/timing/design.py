"""Placed gate-level designs: instances, nets, and a random generator.

A :class:`Design` is a DAG of placed gate :class:`Instance` objects
connected by :class:`DesignNet` records (one driver, one or more loads).
The geometry is what the router sees: each design net induces a
:class:`repro.geometry.net.Net` whose source is the driver's position
and whose sinks are the load positions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.timing.gates import Gate, GateLibrary


@dataclass(frozen=True)
class Instance:
    """A placed gate."""

    name: str
    gate: Gate
    position: Point


@dataclass(frozen=True)
class DesignNet:
    """One signal net: a driver instance and its fanout."""

    name: str
    driver: str
    loads: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.loads:
            raise ValueError(f"net {self.name!r} has no loads")
        if self.driver in self.loads:
            raise ValueError(f"net {self.name!r} drives itself")


class DesignError(ValueError):
    """Raised for structurally invalid designs."""


@dataclass
class Design:
    """A placed, connected gate-level design."""

    name: str
    instances: dict[str, Instance] = field(default_factory=dict)
    nets: dict[str, DesignNet] = field(default_factory=dict)
    #: instances whose inputs come from outside (timing start points)
    primary_inputs: set[str] = field(default_factory=set)

    def add_instance(self, instance: Instance) -> None:
        if instance.name in self.instances:
            raise DesignError(f"duplicate instance {instance.name!r}")
        self.instances[instance.name] = instance

    def add_net(self, net: DesignNet) -> None:
        if net.name in self.nets:
            raise DesignError(f"duplicate net {net.name!r}")
        for pin in (net.driver, *net.loads):
            if pin not in self.instances:
                raise DesignError(
                    f"net {net.name!r} references unknown instance {pin!r}")
        self.nets[net.name] = net

    def fanin_nets(self, instance: str) -> list[DesignNet]:
        """Nets loading into ``instance``."""
        return [net for net in self.nets.values() if instance in net.loads]

    def fanout_nets(self, instance: str) -> list[DesignNet]:
        """Nets driven by ``instance``."""
        return [net for net in self.nets.values() if net.driver == instance]

    def geometry_of(self, net_name: str) -> Net:
        """The routing problem induced by a design net."""
        net = self.nets[net_name]
        driver = self.instances[net.driver]
        loads = [self.instances[load] for load in net.loads]
        return Net(source=driver.position,
                   sinks=tuple(load.position for load in loads),
                   name=net_name)

    def topological_order(self) -> list[str]:
        """Instances in dependency order; raises on combinational cycles."""
        indegree = {name: 0 for name in self.instances}
        successors: dict[str, list[str]] = {name: [] for name in self.instances}
        for net in self.nets.values():
            for load in net.loads:
                indegree[load] += 1
                successors[net.driver].append(load)
        # deque.popleft is O(1); list.pop(0) would make the walk O(n²) on
        # large designs (the same bug class rooted_parents had).
        ready = deque(sorted(
            name for name, deg in indegree.items() if deg == 0))
        order: list[str] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            for succ in sorted(successors[node]):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.instances):
            raise DesignError(
                f"design {self.name!r} contains a combinational cycle")
        return order

    def validate(self) -> None:
        """Full structural check: DAG, start points, no floating gates."""
        order = self.topological_order()
        starts = {name for name in order if not self.fanin_nets(name)}
        if not starts:
            raise DesignError(f"design {self.name!r} has no start points")
        missing = starts - self.primary_inputs
        if missing:
            raise DesignError(
                f"instances {sorted(missing)} have no fanin and are not "
                f"declared primary inputs")


def random_design(num_stages: int, stage_width: int, seed: int = 0,
                  region: float = 10_000.0, max_fanout: int = 3,
                  library: GateLibrary | None = None,
                  name: str | None = None) -> Design:
    """A seeded random layered design, placed left-to-right by stage.

    Stage 0 holds DFF start points; each later gate draws one driving net
    from a random gate one stage earlier, and each net picks up to
    ``max_fanout - 1`` extra loads in the next stage. Placement puts each
    stage in its own vertical band with jitter, the classic standard-cell
    row look, so net geometry (and thus routing difficulty) grows with
    logical depth.
    """
    if num_stages < 2:
        raise ValueError("need at least two stages (sources + one logic)")
    if stage_width < 1:
        raise ValueError("stage_width must be >= 1")
    lib = library or GateLibrary.cmos08()
    rng = np.random.default_rng(seed)
    design = Design(name=name or f"rand_design_s{seed}")
    combinational = lib.combinational()

    stages: list[list[str]] = []
    for stage in range(num_stages):
        members = []
        for slot in range(stage_width):
            inst_name = f"g{stage}_{slot}"
            gate = (lib["DFF"] if stage == 0
                    else combinational[int(rng.integers(len(combinational)))])
            x = (stage + 0.5) / num_stages * region
            x += float(rng.uniform(-0.3, 0.3)) * region / num_stages
            y = float(rng.uniform(0.05, 0.95)) * region
            design.add_instance(Instance(inst_name, gate, Point(x, y)))
            if stage == 0:
                design.primary_inputs.add(inst_name)
            members.append(inst_name)
        stages.append(members)

    net_index = 0
    for stage in range(1, num_stages):
        for sink_name in stages[stage]:
            driver = stages[stage - 1][int(rng.integers(stage_width))]
            loads = {sink_name}
            extra = int(rng.integers(0, max_fanout))
            for _ in range(extra):
                candidate = stages[stage][int(rng.integers(stage_width))]
                if candidate != driver:
                    loads.add(candidate)
            design.add_net(DesignNet(name=f"n{net_index}", driver=driver,
                                     loads=tuple(sorted(loads))))
            net_index += 1
    design.validate()
    return design
