"""Runtime invariant sentinels at algorithm boundaries.

Two tiers live here:

* :func:`ensure` / :func:`ensure_found` — unconditional replacements for
  the bare ``assert`` statements that used to guard the greedy and
  exhaustive solvers. ``assert`` vanishes under ``python -O``; these
  raise :class:`~repro.guard.incidents.InvariantViolation` in every
  interpreter mode and are always on, because the conditions they check
  ("the candidate loop found a best edge") are load-bearing control
  flow, not optional debugging.

* ``sentinel_*`` — physics/algorithm invariants (finite non-negative
  delays, delay non-increase on accepted LDRG edges, monotone wire-cost
  accounting) that are *gated* on the active
  :class:`~repro.guard.policy.GuardPolicy`: they no-op unless the run
  opted into ``sentinel`` or ``audit`` mode, keeping the zero-guard hot
  path free of per-iteration scans.
"""

from __future__ import annotations

import math
from typing import Mapping, Protocol, TypeVar

from repro.guard.incidents import InvariantViolation
from repro.guard.policy import active_guard

T = TypeVar("T")


class _Connectable(Protocol):
    """Anything with a connectivity predicate (structurally, RoutingGraph —
    kept as a protocol so the guard layer stays import-free of the graph
    package)."""

    def is_connected(self) -> bool: ...

#: Relative slack for the delay-non-increase sentinel: greedy acceptance
#: uses a win tolerance, and re-anchored oracles may differ in the last
#: few ulps, so "non-increase" means "no increase beyond noise".
NON_INCREASE_SLACK = 1e-6


def ensure(condition: bool, message: str) -> None:
    """Raise :class:`InvariantViolation` unless ``condition`` holds.

    Unconditional — not gated on the guard policy (see module docstring).
    """
    if not condition:
        raise InvariantViolation(message)


def ensure_found(value: T | None, message: str) -> T:
    """Narrow an ``Optional`` search result, raising if the search failed.

    Replaces the ``assert best is not None`` idiom: returns ``value``
    with its ``None``-ness discharged, or raises
    :class:`InvariantViolation` with a message naming what was expected.
    """
    if value is None:
        raise InvariantViolation(message)
    return value


def sentinel_finite_delays(delays: Mapping[int, float], *,
                           source: str) -> None:
    """Every sink delay must be a finite, non-negative number."""
    if not active_guard().sentinels_enabled:
        return
    for sink, delay in delays.items():
        if not math.isfinite(delay):
            raise InvariantViolation(
                f"{source}: non-finite delay {delay!r} at sink {sink}")
        if delay < 0.0:
            raise InvariantViolation(
                f"{source}: negative delay {delay!r} at sink {sink} "
                f"(RC delays are non-negative)")


def sentinel_delay_non_increase(before: float, after: float, *,
                                source: str) -> None:
    """An accepted greedy edge must not increase the objective.

    Greedy loops only accept a candidate that improved the objective, so
    the re-evaluated post-acceptance value exceeding the pre-acceptance
    one (beyond relative noise slack) means the candidate scoring and
    the full evaluation disagree — exactly the fast-path-drift failure
    this layer exists to catch. Only meaningful when the same oracle
    scored both sides; the caller is responsible for that check.
    """
    if not active_guard().sentinels_enabled:
        return
    slack = NON_INCREASE_SLACK * max(abs(before), abs(after), 1e-30)
    if after > before + slack:
        raise InvariantViolation(
            f"{source}: accepted edge increased the objective "
            f"({before!r} -> {after!r}); candidate scoring and full "
            f"evaluation disagree")


def sentinel_connected(graph: _Connectable, *, source: str) -> None:
    """The routing graph must stay connected across mutations."""
    if not active_guard().sentinels_enabled:
        return
    if not graph.is_connected():
        raise InvariantViolation(
            f"{source}: routing graph lost connectivity")


def sentinel_monotone_cost(previous: float, current: float, *,
                           source: str) -> None:
    """Total wire cost must not decrease as edges are added."""
    if not active_guard().sentinels_enabled:
        return
    if not math.isfinite(current):
        raise InvariantViolation(
            f"{source}: non-finite wire cost {current!r}")
    slack = NON_INCREASE_SLACK * max(abs(previous), abs(current), 1e-30)
    if current < previous - slack:
        raise InvariantViolation(
            f"{source}: wire cost decreased from {previous!r} to "
            f"{current!r} while adding edges")
