"""Structured numerical incidents and the guard's provenance vocabulary.

A numerical failure deep inside a solve must surface as something a
sweep can *handle*: attributable to one system, classified, and carrying
enough provenance to reproduce the offending matrix. A raw
``LinAlgError`` (or worse, a silent NaN) is none of those things, so the
guard layer converts every numerical fault into a
:class:`NumericalIncident` carrying a :class:`SystemFingerprint` — a
compact, loggable identity of the linear system that failed.

This module deliberately imports nothing from the rest of ``repro``
(numpy and the standard library only): the circuit and delay layers wrap
their solves in the guard, so the guard must sit *below* them in the
import graph. Provenance recording goes through a lazy import of
:mod:`repro.runtime.provenance` at call time, which breaks the would-be
cycle ``circuit → guard → runtime → delay → circuit``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

#: Provenance kinds recorded by the guard layer (see
#: :mod:`repro.runtime.provenance`; free-form kinds are allowed there).
KIND_AUDIT = "audit"
KIND_DIVERGE = "diverge"
KIND_QUARANTINE = "quarantine"
KIND_INCIDENT = "numerical-incident"
#: A fast/batched/cached path was silently unavailable and a slower or
#: less-instrumented one served the call instead. Recording it makes
#: degraded batching visible in journals instead of a silent per-call
#: detour (the memo passing through a non-cacheable oracle, auto
#: candidate evaluation dropping to naive, a fleet batch splitting back
#: into per-net routings).
KIND_FALLBACK = "fallback"


class GuardError(Exception):
    """Base class for errors raised by the guard layer."""


class InvariantViolation(GuardError):
    """A runtime invariant at an algorithm boundary does not hold.

    Replaces the bare ``assert`` statements that used to guard the
    greedy loops: unlike ``assert``, this survives ``python -O`` and
    carries a message naming the violated invariant.
    """


@dataclass(frozen=True)
class SystemFingerprint:
    """The loggable identity of one dense linear system.

    Attributes:
        shape: system dimension ``n`` (the matrix is ``n × n``).
        digest: first 16 hex chars of the SHA-256 of the matrix bytes —
            two systems with equal digests are bit-identical.
        norm: 1-norm of the matrix.
        rcond: reciprocal condition estimate where one was computed
            (``None`` when factorization failed before estimation).
        context: caller-supplied origin string (which solve, which net).
    """

    shape: int
    digest: str
    norm: float
    rcond: float | None
    context: str

    def describe(self) -> str:
        rcond = "n/a" if self.rcond is None else f"{self.rcond:.3e}"
        return (f"system[{self.shape}x{self.shape}] digest={self.digest} "
                f"norm={self.norm:.6g} rcond={rcond}"
                + (f" context={self.context!r}" if self.context else ""))


def fingerprint_system(matrix: npt.NDArray[np.float64], context: str = "",
                       rcond: float | None = None) -> SystemFingerprint:
    """Fingerprint a dense matrix for incident provenance."""
    contiguous = np.ascontiguousarray(matrix, dtype=float)
    digest = hashlib.sha256(contiguous.tobytes()).hexdigest()[:16]
    finite = np.isfinite(contiguous)
    norm = (float(np.linalg.norm(contiguous, 1)) if bool(finite.all())
            else float("nan"))
    return SystemFingerprint(shape=int(contiguous.shape[0]), digest=digest,
                             norm=norm, rcond=rcond, context=context)


class NumericalIncident(GuardError):
    """A linear system could not be solved trustworthily.

    Raised instead of ``numpy.linalg.LinAlgError`` (and instead of
    returning NaN/inf) by every guarded solve. Carries the offending
    system's :class:`SystemFingerprint` so a journaled trial failure
    identifies *which* matrix failed, not just that one did.
    """

    def __init__(self, reason: str, fingerprint: SystemFingerprint):
        super().__init__(f"{reason} [{fingerprint.describe()}]")
        self.reason = reason
        self.fingerprint = fingerprint


def record_event(kind: str, *, source: str = "", target: str = "",
                 detail: str = "", count: int = 1) -> None:
    """Record a guard provenance event in the active collector, if any.

    The import is deliberately local: :mod:`repro.runtime` imports the
    delay layer, which imports the circuit layer, which imports this
    package — a module-level import here would close that loop during
    interpreter start-up. By the time an event is recorded, everything
    is fully imported.
    """
    from repro.runtime.provenance import ProvenanceEvent, record

    record(ProvenanceEvent(kind=kind, source=source, target=target,
                           detail=detail, count=count))
