"""Guard modes and the context scope that activates them.

The guard layer has a cost gradient — ``off`` (nothing), ``sentinel``
(cheap invariant checks at algorithm boundaries), ``audit`` (sentinels
plus shadow re-scoring of a sampled fraction of fast-path candidate
evaluations through the naive oracle). :class:`GuardPolicy` names a
point on that gradient; :func:`guard_scope` activates it for a dynamic
extent, exactly like :func:`repro.runtime.provenance.collecting`
activates event collection. Deep call sites (the greedy loops, the
evaluator factory) consult :func:`active_guard` instead of threading a
policy through every signature — and because the scope is entered
*inside* the per-trial runner function, it works unchanged in pool
worker processes.

The conditioned solves of :mod:`repro.guard.numerics` are **not**
gated here: a silently wrong linear solve corrupts results in any mode,
so they are always on.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

#: Modes accepted by :func:`parse_guard` / the CLI ``--guard`` flag.
GUARD_MODES = ("off", "sentinel", "audit")

#: Default relative tolerance for fast-vs-naive score agreement.
DEFAULT_AUDIT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class GuardPolicy:
    """Configuration of the self-verification layer for one run.

    Attributes:
        mode: ``"off"``, ``"sentinel"``, or ``"audit"`` (audit implies
            sentinels — a run paying for shadow re-scoring certainly
            wants the cheap invariant checks too).
        audit_rate: fraction of candidate-evaluation batches shadow
            re-scored through the naive oracle (audit mode only);
            ``1.0`` re-scores every batch.
        tolerance: relative divergence between fast and naive scores
            beyond which the fast path is quarantined.
        seed: seeds the audit sampler, so a sweep's audited subset is
            reproducible run-to-run.
        inject_error: test hook — relative perturbation applied to the
            fast path's scores *before* auditing, to prove end-to-end
            that a drifting fast path is detected and quarantined.
            Always ``0.0`` outside tests.
    """

    mode: str = "off"
    audit_rate: float = 1.0
    tolerance: float = DEFAULT_AUDIT_TOLERANCE
    seed: int = 0
    inject_error: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in GUARD_MODES:
            raise ValueError(f"unknown guard mode {self.mode!r}; "
                             f"expected one of {GUARD_MODES}")
        if not 0.0 <= self.audit_rate <= 1.0:
            raise ValueError(f"audit rate must be in [0, 1], "
                             f"got {self.audit_rate}")
        if self.tolerance <= 0.0:
            raise ValueError(f"audit tolerance must be positive, "
                             f"got {self.tolerance}")

    @property
    def sentinels_enabled(self) -> bool:
        return self.mode in ("sentinel", "audit")

    @property
    def audit_enabled(self) -> bool:
        return self.mode == "audit" and self.audit_rate > 0.0

    def to_json_dict(self) -> dict[str, Any]:
        return {"mode": self.mode, "audit_rate": self.audit_rate,
                "tolerance": self.tolerance, "seed": self.seed,
                "inject_error": self.inject_error}

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "GuardPolicy":
        return cls(mode=str(data.get("mode", "off")),
                   audit_rate=float(data.get("audit_rate", 1.0)),
                   tolerance=float(data.get("tolerance",
                                            DEFAULT_AUDIT_TOLERANCE)),
                   seed=int(data.get("seed", 0)),
                   inject_error=float(data.get("inject_error", 0.0)))


#: The do-nothing policy returned by :func:`active_guard` outside any scope.
OFF = GuardPolicy(mode="off")

_active: ContextVar[GuardPolicy] = ContextVar("repro_guard_policy",
                                              default=OFF)


def active_guard() -> GuardPolicy:
    """The policy in effect at this point of the call stack."""
    return _active.get()


@contextmanager
def guard_scope(policy: GuardPolicy) -> Iterator[GuardPolicy]:
    """Activate ``policy`` for the dynamic extent of the ``with`` block.

    Scopes nest; the innermost wins. Entering with :data:`OFF` is valid
    and cheap, which lets callers write ``with guard_scope(config.guard)``
    unconditionally.
    """
    token = _active.set(policy)
    try:
        yield policy
    finally:
        _active.reset(token)


def parse_guard(spec: str) -> GuardPolicy:
    """Parse a CLI ``--guard`` value into a policy.

    Accepted forms: ``off``, ``sentinel``, ``audit`` (rate 1.0), and
    ``audit=RATE`` with ``RATE`` in [0, 1] (e.g. ``audit=0.05``).
    """
    text = spec.strip().lower()
    if text in ("off", "sentinel", "audit"):
        return GuardPolicy(mode=text)
    if text.startswith("audit="):
        try:
            rate = float(text[len("audit="):])
        except ValueError:
            raise ValueError(
                f"invalid guard audit rate in {spec!r}; expected "
                f"audit=RATE with RATE a number in [0, 1]") from None
        return GuardPolicy(mode="audit", audit_rate=rate)
    raise ValueError(f"invalid guard spec {spec!r}; expected "
                     f"'off', 'sentinel', 'audit', or 'audit=RATE'")
