"""Numerical robustness and self-verification for the solver core.

PR 2 made the sweep *harness* fault-tolerant and the incremental engine
made the delay oracle fast; this package makes the numerical core that
both lean on defend itself. Four pieces:

* :mod:`repro.guard.numerics` — :class:`GuardedFactorization`, a
  conditioned dense factorization (Cholesky for SPD systems, LU
  otherwise) that estimates the condition number, retries with a
  regularized factorization on ill-conditioning, and raises a
  structured :class:`NumericalIncident` (never a raw ``LinAlgError``)
  carrying the offending system's fingerprint;
* :mod:`repro.guard.audit` — :class:`ShadowAuditedEvaluator`, a seeded,
  rate-configurable sampler that re-scores a fraction of incremental
  candidate evaluations through the naive oracle, quarantines the fast
  path on divergence, and records every audit as provenance;
* :mod:`repro.guard.sentinels` — runtime invariant checks at algorithm
  boundaries (finite non-negative delays, delay non-increase on
  accepted edges, monotone cost), replacing erasable ``assert``
  statements with real exceptions;
* :mod:`repro.guard.policy` — :class:`GuardPolicy` and the context
  scope that switches the layer between ``off``, ``sentinel``, and
  ``audit`` modes (the CLI's ``--guard`` flag).

See ``docs/robustness.md`` ("Numerical robustness & self-verification")
for modes, audit-rate guidance, and the incident schema.
"""

from repro.guard.audit import ShadowAuditedEvaluator
from repro.guard.incidents import (
    GuardError,
    InvariantViolation,
    KIND_AUDIT,
    KIND_DIVERGE,
    KIND_INCIDENT,
    KIND_QUARANTINE,
    NumericalIncident,
    SystemFingerprint,
    fingerprint_system,
)
from repro.guard.numerics import (
    DEFAULT_RCOND_FLOOR,
    GuardedFactorization,
    guarded_solve,
)
from repro.guard.policy import (
    GuardPolicy,
    OFF,
    active_guard,
    guard_scope,
    parse_guard,
)
from repro.guard.sentinels import (
    ensure,
    ensure_found,
    sentinel_connected,
    sentinel_delay_non_increase,
    sentinel_finite_delays,
    sentinel_monotone_cost,
)

__all__ = [
    "DEFAULT_RCOND_FLOOR",
    "GuardError",
    "GuardPolicy",
    "GuardedFactorization",
    "InvariantViolation",
    "KIND_AUDIT",
    "KIND_DIVERGE",
    "KIND_INCIDENT",
    "KIND_QUARANTINE",
    "NumericalIncident",
    "OFF",
    "ShadowAuditedEvaluator",
    "SystemFingerprint",
    "active_guard",
    "ensure",
    "ensure_found",
    "fingerprint_system",
    "guard_scope",
    "guarded_solve",
    "parse_guard",
    "sentinel_connected",
    "sentinel_delay_non_increase",
    "sentinel_finite_delays",
    "sentinel_monotone_cost",
]
