"""Shadow auditing: the fast path proving itself against the oracle.

The Sherman–Morrison candidate engine is ~13× faster than naive
re-evaluation and equivalent to floating-point noise — *when its
assumptions hold*. A drifting fast path corrupts every downstream table
silently, because its scores are only ever compared against each other.
:class:`ShadowAuditedEvaluator` closes that loop at runtime: a seeded
sampler picks a fraction of candidate batches and re-scores them through
the naive reference evaluator; any score diverging beyond the policy
tolerance **quarantines** the fast path — the remainder of the run is
served by the reference evaluator — and the audit, the divergence, and
the quarantine are all recorded as provenance events in the PR-2
journal, surfacing in sweep tables as ``[audited N, diverged M]``.

Sampling is per *batch*, not per candidate: a batch shares one
factorization, so auditing it means re-scoring all of its candidates
(that is what makes the comparison meaningful), and the audit rate is
the fraction of greedy iterations paying the naive cost.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.guard.incidents import (
    KIND_AUDIT,
    KIND_DIVERGE,
    KIND_QUARANTINE,
    record_event,
)
from repro.guard.policy import GuardPolicy

if TYPE_CHECKING:  # import-cycle guard: delay imports circuit imports guard
    from repro.delay.models import (
        CandidateEdge,
        CandidateEvaluator,
        WidthUpgrade,
    )
    from repro.graph.routing_graph import RoutingGraph


class ShadowAuditedEvaluator:
    """A candidate evaluator that spot-checks its own fast path.

    Wraps a fast evaluator and a reference (naive) evaluator sharing the
    same oracle semantics. Batches flow through the fast path; a seeded
    sampler re-scores ``policy.audit_rate`` of them through the
    reference, and the first divergence beyond ``policy.tolerance``
    (relative) quarantines the fast path for the rest of this
    evaluator's life.

    Attributes:
        quarantined: whether a divergence has retired the fast path.
        audited: candidate scores re-checked so far.
        diverged: scores found divergent so far.
    """

    def __init__(self, fast: "CandidateEvaluator",
                 reference: "CandidateEvaluator",
                 policy: GuardPolicy, *, source: str = "candidate-eval"):
        self.fast = fast
        self.reference = reference
        self.policy = policy
        self.source = source
        self.quarantined = False
        self.audited = 0
        self.diverged = 0
        self._rng = random.Random(policy.seed)

    def score_additions(self, graph: "RoutingGraph",
                        candidates: Sequence["CandidateEdge"]) -> list[float]:
        if self.quarantined:
            return self.reference.score_additions(graph, candidates)
        fast = self._perturb(self.fast.score_additions(graph, candidates))
        if not self._sampled(len(fast)):
            return fast
        reference = self.reference.score_additions(graph, candidates)
        return self._audit(fast, reference, "addition")

    def score_width_upgrades(self, graph: "RoutingGraph",
                             widths: Mapping[tuple[int, int], float],
                             upgrades: Sequence["WidthUpgrade"]) -> list[float]:
        if self.quarantined:
            return self.reference.score_width_upgrades(graph, widths, upgrades)
        fast = self._perturb(
            self.fast.score_width_upgrades(graph, widths, upgrades))
        if not self._sampled(len(fast)):
            return fast
        reference = self.reference.score_width_upgrades(graph, widths,
                                                        upgrades)
        return self._audit(fast, reference, "width-upgrade")

    def _sampled(self, batch_size: int) -> bool:
        """Decide (seeded) whether this batch gets a shadow re-score.

        The draw happens even for batches below the rate so the sampled
        subset depends only on the seed and the batch sequence, not on
        which batches happen to be empty.
        """
        draw = self._rng.random()
        return batch_size > 0 and draw < self.policy.audit_rate

    def _perturb(self, scores: list[float]) -> list[float]:
        """Apply the ``inject_error`` test hook to fast-path scores."""
        if self.policy.inject_error == 0.0:
            return scores
        return [s * (1.0 + self.policy.inject_error) for s in scores]

    def _audit(self, fast: list[float], reference: list[float],
               batch_kind: str) -> list[float]:
        """Compare a batch, record provenance, quarantine on divergence.

        Returns the scores the caller should use: the fast batch when it
        checks out, the reference batch once quarantined.
        """
        tolerance = self.policy.tolerance
        worst = 0.0
        divergent = 0
        for fast_score, ref_score in zip(fast, reference):
            scale = max(abs(fast_score), abs(ref_score), 1e-30)
            relative = abs(fast_score - ref_score) / scale
            worst = max(worst, relative)
            if relative > tolerance:
                divergent += 1
        self.audited += len(fast)
        record_event(KIND_AUDIT, source=self.source,
                     detail=f"{batch_kind} batch of {len(fast)} re-scored "
                            f"(max rel err {worst:.3e})",
                     count=len(fast))
        if divergent == 0:
            return fast
        self.diverged += divergent
        record_event(KIND_DIVERGE, source=self.source,
                     detail=f"{divergent}/{len(fast)} {batch_kind} scores "
                            f"diverged beyond rel tol {tolerance:g} "
                            f"(max rel err {worst:.3e})",
                     count=divergent)
        if not self.quarantined:
            self.quarantined = True
            record_event(KIND_QUARANTINE, source=self.source,
                         target="naive",
                         detail="fast candidate path quarantined; naive "
                                "reference serves the rest of the run")
        return reference
