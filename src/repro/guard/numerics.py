"""Conditioned dense factorizations: solve trustworthily or fail loudly.

Every dense solve in the delay/circuit core used to be a bare
``np.linalg.inv`` / ``np.linalg.solve``: no conditioning check, no
``LinAlgError`` handling, and — worst of all — no defense against a
*successful* solve of a system so ill-conditioned its answer is noise.
:class:`GuardedFactorization` replaces that pattern:

1. factorize once — Cholesky (``cho_factor``) for SPD systems like the
   reduced RC conductance matrix, LU (``lu_factor``) for the indefinite
   MNA systems with their branch rows;
2. estimate the reciprocal condition number from the factorization
   (LAPACK ``pocon``/``gecon`` — O(n²), reusing the O(n³) factor);
3. on failure or ill-conditioning, retry with a Tikhonov-regularized
   factorization ``A + ε·s·I`` over an escalating ε ladder, recording
   the regularization as a provenance incident;
4. if no rung produces a well-conditioned factorization, raise a
   structured :class:`~repro.guard.incidents.NumericalIncident`
   carrying the system's fingerprint — never a raw ``LinAlgError``,
   and never a NaN-filled answer.

The conditioning floor defaults to ``1e-13``: the 1 µΩ pseudo-short
conductance of zero-length edges legitimately pushes RC systems to
rcond ≈ 1e-10, which double precision still resolves to the 1e-9
relative agreement the property tests demand; below the floor the
factorization has at most ~3 trustworthy digits and the answer is not
worth returning.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

import numpy as np
import numpy.typing as npt
from scipy.linalg import LinAlgWarning, cho_factor, cho_solve, lu_factor, lu_solve
from scipy.linalg.lapack import dgecon, dpocon

from repro.contracts import boundary
from repro.guard.incidents import (
    KIND_INCIDENT,
    NumericalIncident,
    SystemFingerprint,
    fingerprint_system,
    record_event,
)

#: Reciprocal-condition floor below which a factorization is untrusted.
DEFAULT_RCOND_FLOOR = 1e-13

#: Escalating Tikhonov regularization strengths, relative to the mean
#: diagonal magnitude of the system.
REGULARIZATION_LADDER: tuple[float, ...] = (1e-12, 1e-9, 1e-6)

_Array = npt.NDArray[np.float64]


class GuardedFactorization:
    """A conditioned factorization of one dense linear system.

    Args:
        matrix: the ``n × n`` system matrix.
        spd: ``True`` for symmetric positive-definite systems (Cholesky
            path), ``False`` for general ones (LU path).
        context: origin string baked into incidents and provenance
            (which solve, which net) — make it greppable.
        rcond_floor: reciprocal-condition estimate below which the
            factorization is rejected (and regularization attempted).

    Attributes:
        rcond: reciprocal condition estimate of the accepted
            factorization.
        regularized: whether a regularization rung was needed.
        epsilon: the absolute Tikhonov shift applied (0.0 when none).

    Raises:
        NumericalIncident: non-finite entries, a factorization that
            fails on every rung, or irreparable ill-conditioning.
    """

    def __init__(self, matrix: _Array, *, spd: bool = True,
                 context: str = "",
                 rcond_floor: float = DEFAULT_RCOND_FLOOR):
        A = np.asarray(matrix, dtype=float)
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise ValueError(f"guarded factorization needs a square "
                             f"matrix, got shape {A.shape}")
        self.spd = spd
        self.context = context
        self.rcond_floor = rcond_floor
        self.rcond: float = 0.0
        self.regularized = False
        self.epsilon = 0.0

        if not np.isfinite(A).all():
            raise NumericalIncident(
                "system matrix contains non-finite entries",
                fingerprint_system(A, context))
        self._system_fingerprint = fingerprint_system(A, context)

        anorm = float(np.linalg.norm(A, 1))
        scale = float(np.mean(np.abs(np.diag(A)))) or max(anorm, 1.0)
        last_rcond: float | None = None
        for relative_eps in (0.0, *REGULARIZATION_LADDER):
            epsilon = relative_eps * scale
            candidate = A if epsilon == 0.0 else A + epsilon * np.eye(len(A))
            try:
                factor, rcond = self._factor(candidate, anorm)
            except np.linalg.LinAlgError:  # repro: allow=contracts-broad-catch-swallow — a failed factorization advances the regularization ladder; exhaustion raises a structured NumericalIncident below
                continue
            last_rcond = rcond
            if rcond < rcond_floor:
                continue
            self._factorization = factor
            self.rcond = rcond
            self.epsilon = epsilon
            if epsilon > 0.0:
                self.regularized = True
                record_event(
                    KIND_INCIDENT, source=context or "guarded-solve",
                    detail=f"ill-conditioned system recovered with "
                           f"regularization eps={epsilon:.3e} "
                           f"(rcond={rcond:.3e})")
            return
        raise NumericalIncident(
            "system is singular or irreparably ill-conditioned "
            f"(rcond floor {rcond_floor:g}, regularization ladder "
            f"exhausted)",
            fingerprint_system(A, context, rcond=last_rcond))

    def _factor(self, A: _Array, anorm: float) -> tuple[object, float]:
        """Factorize ``A`` and estimate rcond from the factorization."""
        with warnings.catch_warnings():
            # A singular LU emits LinAlgWarning; the rcond check below is
            # the authoritative verdict, so the warning is redundant.
            warnings.simplefilter("ignore", LinAlgWarning)
            if self.spd:
                c, low = cho_factor(A)
                rcond, info = dpocon(c, anorm, uplo=b"L" if low else b"U")
            else:
                lu, piv = lu_factor(A)
                rcond, info = dgecon(lu, anorm)
        if info != 0:  # LAPACK argument error: treat as a failed rung
            raise np.linalg.LinAlgError(f"condition estimate failed "
                                        f"(info={info})")
        if self.spd:
            return (c, low), float(rcond)
        return (lu, piv), float(rcond)

    def solve(self, rhs: _Array) -> _Array:
        """Solve ``A x = rhs`` (any column shape numpy accepts)."""
        b = np.asarray(rhs, dtype=float)
        if not np.isfinite(b).all():
            raise NumericalIncident(
                "right-hand side contains non-finite entries",
                self.fingerprint())
        if self.spd:
            solution = cho_solve(self._factorization, b)
        else:
            solution = lu_solve(self._factorization, b)
        result: _Array = np.asarray(solution, dtype=float)
        if not np.isfinite(result).all():
            raise NumericalIncident(
                "solve produced non-finite values despite an accepted "
                "factorization",
                self.fingerprint())
        return result

    def inverse(self) -> _Array:
        """The dense inverse, via the factorization (never ``inv``)."""
        n = int(np.asarray(self._factorization[0]).shape[0])
        return self.solve(np.eye(n))

    def fingerprint(self) -> SystemFingerprint:
        """Fingerprint of the (unregularized) system this solves."""
        return replace(self._system_fingerprint, rcond=self.rcond)


@boundary(raises=(NumericalIncident, ValueError))
def guarded_solve(matrix: _Array, rhs: _Array, *, spd: bool = True,
                  context: str = "",
                  rcond_floor: float = DEFAULT_RCOND_FLOOR) -> _Array:
    """One-shot conditioned solve of ``matrix @ x = rhs``.

    Equivalent to ``GuardedFactorization(matrix, ...).solve(rhs)`` —
    use the class directly when several right-hand sides share a system.
    """
    return GuardedFactorization(
        matrix, spd=spd, context=context,
        rcond_floor=rcond_floor).solve(rhs)
