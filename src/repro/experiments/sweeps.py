"""Parameter sweeps around the paper's fixed operating point.

The paper evaluates one technology (Table 1) and four net sizes. These
sweeps ask the natural next questions the data invites:

* :func:`driver_sweep` — how does the non-tree win depend on driver
  strength? Non-tree edges trade capacitance (costed by the driver) for
  path resistance, so a *stronger* driver makes extra wires cheaper and
  the LDRG improvement deeper; a very weak driver makes ``r_d·C_total``
  dominate and extra wires pointless. The sweep exposes that crossover.
* :func:`size_scaling` — the paper's central trend (Tables 2–7 columns)
  as one series: mean delay ratio and winner fraction vs net size.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Sequence

from repro.core.ldrg import ldrg
from repro.delay.models import SpiceDelayModel
from repro.delay.spice_delay import SpiceOptions
from repro.experiments.harness import ExperimentConfig
from repro.geometry.random_nets import random_nets


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the independent variable and outcome means."""

    x: float
    delay_ratio: float
    cost_ratio: float
    percent_winners: float


def driver_sweep(config: ExperimentConfig,
                 driver_resistances: Sequence[float] = (25.0, 50.0, 100.0,
                                                        200.0, 400.0),
                 net_size: int = 10) -> list[SweepPoint]:
    """LDRG-vs-MST outcome as a function of driver resistance.

    Every point reuses the *same* trial nets, so the series isolates the
    driver's effect from workload noise.
    """
    if not driver_resistances:
        raise ValueError("need at least one driver resistance")
    nets = list(random_nets(net_size, max(3, min(config.trials, 12)),
                            seed=config.seed + 21))
    points = []
    for rd in driver_resistances:
        tech = config.tech.with_driver(rd)
        search = SpiceDelayModel(tech, SpiceOptions(
            segments=config.segments_search))
        evaluate = SpiceDelayModel(tech, SpiceOptions(
            segments=config.segments_eval))
        results = [ldrg(net, tech, delay_model=search,
                        evaluation_model=evaluate) for net in nets]
        points.append(SweepPoint(
            x=rd,
            delay_ratio=mean(r.delay_ratio for r in results),
            cost_ratio=mean(r.cost_ratio for r in results),
            percent_winners=100.0 * mean(r.improved for r in results),
        ))
    return points


def size_scaling(config: ExperimentConfig,
                 sizes: Sequence[int] = (5, 10, 15, 20, 25, 30)
                 ) -> list[SweepPoint]:
    """LDRG-vs-MST outcome as a function of net size (Tables 2–7's trend)."""
    if not sizes:
        raise ValueError("need at least one net size")
    search = config.search_model()
    evaluate = config.eval_model()
    trials = max(3, min(config.trials, 12))
    points = []
    for size in sizes:
        results = [ldrg(net, config.tech, delay_model=search,
                        evaluation_model=evaluate)
                   for net in random_nets(size, trials,
                                          seed=config.seed + 37)]
        points.append(SweepPoint(
            x=float(size),
            delay_ratio=mean(r.delay_ratio for r in results),
            cost_ratio=mean(r.cost_ratio for r in results),
            percent_winners=100.0 * mean(r.improved for r in results),
        ))
    return points


def format_sweep(title: str, x_label: str,
                 points: Sequence[SweepPoint]) -> str:
    """Render a sweep as aligned text."""
    lines = [title,
             f"{x_label:>10s}  {'delay':>7s}  {'cost':>7s}  {'%win':>5s}"]
    for point in points:
        lines.append(f"{point.x:>10g}  {point.delay_ratio:>7.3f}  "
                     f"{point.cost_ratio:>7.3f}  "
                     f"{point.percent_winners:>5.0f}")
    return "\n".join(lines)
