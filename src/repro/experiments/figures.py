"""Drivers that regenerate Figures 1, 2, 3 and 5 of the paper.

The paper's figures are *existence exhibits*: specific small nets where
adding one or two non-tree edges visibly cuts SPICE delay (Figure 1: 4
pins, −23% delay for +9% wire; Figure 2: 10 pins, −33% for +21.5%;
Figure 3: an LDRG two-iteration trace; Figure 5: SLDRG, −32% for +25%).
The original pin coordinates are not published, so each driver scans a
deterministic seed sequence for the first random net exhibiting at least
the target improvement, then reports the same quantities the caption
reports and (optionally) renders before/after SVGs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.ldrg import ldrg
from repro.core.result import RoutingResult
from repro.core.sldrg import sldrg
from repro.experiments.harness import ExperimentConfig
from repro.geometry.net import Net
from repro.geometry.random_nets import random_net
from repro.graph.routing_graph import RoutingGraph
from repro.viz.svg import save_routing_svg

#: How many candidate seeds each figure scans before settling for the best.
_SCAN_LIMIT = 60


@dataclass
class FigureReport:
    """Everything a figure caption reports, plus the graphs themselves."""

    name: str
    net: Net
    before: RoutingGraph
    after: RoutingGraph
    before_delay: float
    after_delay: float
    before_cost: float
    after_cost: float
    added_edges: list[tuple[int, int]]
    baseline_name: str
    iteration_delays: list[float]

    @property
    def delay_improvement_pct(self) -> float:
        """Percent delay reduction vs the baseline topology."""
        return 100.0 * (1.0 - self.after_delay / self.before_delay)

    @property
    def wire_penalty_pct(self) -> float:
        """Percent wirelength increase vs the baseline topology."""
        return 100.0 * (self.after_cost / self.before_cost - 1.0)

    def caption(self) -> str:
        return (f"{self.name}: {self.baseline_name} delay "
                f"{self.before_delay * 1e9:.2f} ns -> "
                f"{self.after_delay * 1e9:.2f} ns "
                f"({self.delay_improvement_pct:.1f}% improvement, "
                f"{self.wire_penalty_pct:.1f}% wirelength penalty, "
                f"{len(self.added_edges)} edge(s) added)")

    def save_svgs(self, out_dir: str | Path) -> tuple[str, str]:
        """Write before/after SVGs; returns the two file paths."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        before_path = save_routing_svg(
            self.before, str(out / f"{self.name}_before.svg"),
            title=f"{self.name}: {self.baseline_name} "
                  f"({self.before_delay * 1e9:.2f} ns)")
        after_path = save_routing_svg(
            self.after, str(out / f"{self.name}_after.svg"),
            highlight_edges=self.added_edges,
            title=f"{self.name}: non-tree routing "
                  f"({self.after_delay * 1e9:.2f} ns)")
        return (before_path, after_path)


def figure1(config: ExperimentConfig | None = None) -> FigureReport:
    """Figure 1: a 4-pin net where one extra edge cuts delay ~20%.

    Paper caption: 1.3 ns → 1.0 ns (23% better) for +9% wirelength.
    """
    return _scan_ldrg_figure("figure1", num_pins=4, target_improvement=15.0,
                             max_added_edges=1, config=config, seed_base=100)


def figure2(config: ExperimentConfig | None = None) -> FigureReport:
    """Figure 2: a 10-pin net where one extra edge cuts delay ~30%.

    Paper caption: 5.4 ns → 3.6 ns (33.3% better) for +21.5% wirelength.
    """
    return _scan_ldrg_figure("figure2", num_pins=10, target_improvement=25.0,
                             max_added_edges=1, config=config, seed_base=200)


def figure3(config: ExperimentConfig | None = None) -> FigureReport:
    """Figure 3: an LDRG execution trace that takes two-plus iterations.

    Paper caption: 4.4 ns → 4.1 ns (first edge) → 3.9 ns (second edge).
    The report's ``iteration_delays`` carries the per-iteration delays.
    """
    cfg = config or ExperimentConfig()
    search, evaluate = cfg.search_model(), cfg.eval_model()
    best: RoutingResult | None = None
    best_net: Net | None = None
    for offset in range(_SCAN_LIMIT):
        net = random_net(10, seed=300 + offset, region=cfg.tech.region,
                         name=f"figure3_s{300 + offset}")
        result = ldrg(net, cfg.tech, delay_model=search,
                      evaluation_model=evaluate)
        if result.num_added_edges >= 2:
            return _report_from_result("figure3", net, result, "MST", cfg)
        if best is None or result.delay_ratio < best.delay_ratio:
            best, best_net = result, net
    assert best is not None and best_net is not None
    return _report_from_result("figure3", best_net, best, "MST", cfg)


def figure5(config: ExperimentConfig | None = None) -> FigureReport:
    """Figure 5: SLDRG improving a Steiner tree by ~30%.

    Paper caption: 2.8 ns → 1.9 ns (32% better) for +25% wirelength.
    """
    cfg = config or ExperimentConfig()
    search, evaluate = cfg.search_model(), cfg.eval_model()
    best: RoutingResult | None = None
    best_net: Net | None = None
    for offset in range(_SCAN_LIMIT):
        net = random_net(10, seed=500 + offset, region=cfg.tech.region,
                         name=f"figure5_s{500 + offset}")
        result = sldrg(net, cfg.tech, delay_model=search,
                       evaluation_model=evaluate)
        improvement = 100.0 * (1.0 - result.delay_ratio)
        if improvement >= 20.0:
            return _report_from_result("figure5", net, result,
                                       "Steiner tree", cfg)
        if best is None or result.delay_ratio < best.delay_ratio:
            best, best_net = result, net
    assert best is not None and best_net is not None
    return _report_from_result("figure5", best_net, best, "Steiner tree", cfg)


FIGURE_DRIVERS = {1: figure1, 2: figure2, 3: figure3, 5: figure5}


def run_figure(number: int, config: ExperimentConfig | None = None) -> FigureReport:
    """Regenerate one of the paper's figures by number (1, 2, 3 or 5)."""
    try:
        driver = FIGURE_DRIVERS[number]
    except KeyError:
        raise ValueError(
            f"no such figure {number}; available: {sorted(FIGURE_DRIVERS)}"
        ) from None
    return driver(config)


def _scan_ldrg_figure(name: str, num_pins: int, target_improvement: float,
                      max_added_edges: int, config: ExperimentConfig | None,
                      seed_base: int) -> FigureReport:
    cfg = config or ExperimentConfig()
    search, evaluate = cfg.search_model(), cfg.eval_model()
    best: RoutingResult | None = None
    best_net: Net | None = None
    for offset in range(_SCAN_LIMIT):
        net = random_net(num_pins, seed=seed_base + offset,
                         region=cfg.tech.region,
                         name=f"{name}_s{seed_base + offset}")
        result = ldrg(net, cfg.tech, delay_model=search,
                      evaluation_model=evaluate,
                      max_added_edges=max_added_edges)
        improvement = 100.0 * (1.0 - result.delay_ratio)
        if improvement >= target_improvement:
            return _report_from_result(name, net, result, "MST", cfg)
        if best is None or result.delay_ratio < best.delay_ratio:
            best, best_net = result, net
    assert best is not None and best_net is not None
    return _report_from_result(name, best_net, best, "MST", cfg)


def _report_from_result(name: str, net: Net, result: RoutingResult,
                        baseline_name: str,
                        config: ExperimentConfig) -> FigureReport:
    before = result.graph.copy()
    for u, v in (record.edge for record in result.history):
        before.remove_edge(u, v)
    return FigureReport(
        name=name,
        net=net,
        before=before,
        after=result.graph,
        before_delay=result.base_delay,
        after_delay=result.delay,
        before_cost=result.base_cost,
        after_cost=result.cost,
        added_edges=[record.edge for record in result.history],
        baseline_name=baseline_name,
        iteration_delays=[record.delay for record in result.history],
    )
