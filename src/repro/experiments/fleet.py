"""Fleet-batched table generation: one stacked pipeline per table row.

The paper's tables route their 50 trial nets strictly one at a time.
For the graph-Elmore oracle the whole row is one
:func:`~repro.delay.multinet.route_fleet` call instead: every
generation's factorizations and candidate scores for all 50 nets come
from one stacked linear-algebra call, and converged nets drop out of
the batch. Chosen edges are identical to the sequential Elmore run of
the same algorithm (the property suite pins scores at ≤ 1e-9 relative),
so the fleet path changes *throughput*, not results.

Eligibility is explicit, never silent: only the greedy edge-addition
tables have a batched form (Table 2 — LDRG from MST; Table 3 — SLDRG
from a Steiner tree; Table 7 — LDRG from an ERT), and only under the
graph-Elmore oracle. The CLI's ``table --multinet`` asks for this path;
an ineligible table falls back to the sequential SPICE driver with a
recorded :data:`~repro.guard.incidents.KIND_FALLBACK` provenance event
(see ``docs/performance.md``).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.ert import elmore_routing_tree
from repro.core.result import RoutingResult
from repro.delay.multinet import route_fleet
from repro.experiments.harness import (
    ExperimentConfig,
    RowStats,
    aggregate,
    final_ratios,
    iteration_ratios,
)
from repro.experiments.reporting import Table
from repro.geometry.net import Net
from repro.graph.routing_graph import RoutingGraph
from repro.graph.steiner import iterated_one_steiner
from repro.guard.incidents import KIND_FALLBACK, record_event

#: Table number → (algorithm label, starting-topology builder). These are
#: exactly the tables whose method *is* greedy edge addition; the others
#: (H1–H3, plain ERT) have no generation loop to batch.
_FLEET_STARTS: dict[int, tuple[str, str]] = {
    2: ("ldrg", "mst"),
    3: ("sldrg", "steiner"),
    7: ("ldrg", "ert"),
}

#: Tables ``table --multinet`` can batch.
FLEET_TABLES: tuple[int, ...] = tuple(sorted(_FLEET_STARTS))


def _starting_graphs(number: int, nets: Sequence[Net],
                     config: ExperimentConfig) -> list[RoutingGraph | Net]:
    """Per-net starting topologies for one fleet row.

    Nets pass through for the MST start (:func:`route_fleet` builds the
    MST itself, the LDRG convention); the Steiner and ERT starts are
    built here, per net, exactly as their sequential drivers do.
    """
    kind = _FLEET_STARTS[number][1]
    if kind == "mst":
        return list(nets)
    if kind == "steiner":
        return [iterated_one_steiner(net) for net in nets]
    return [elmore_routing_tree(net, config.tech) for net in nets]


def fleet_row_results(number: int, config: ExperimentConfig, size: int,
                      backend: str = "auto") -> list[RoutingResult]:
    """Route one table row's trial nets as a single batched fleet."""
    algorithm = _FLEET_STARTS[number][0]
    nets = list(config.nets(size))
    with config.guard_scope():
        return route_fleet(
            _starting_graphs(number, nets, config), config.tech,
            algorithm=algorithm, backend=backend)


def run_fleet_table(number: int, config: ExperimentConfig,
                    backend: str = "auto") -> Table:
    """Regenerate a greedy-edge-addition table via the fleet backend.

    The graph-Elmore analogue of :func:`~repro.experiments.tables.\
run_table` for the eligible tables: identical trial nets, identical
    normalization and row statistics, but each row is one batched
    pipeline. Raises :class:`ValueError` for tables with no batched form
    — callers wanting silent-but-recorded degradation should use
    :func:`run_table_multinet`.
    """
    if number not in _FLEET_STARTS:
        raise ValueError(
            f"table {number} has no fleet-batched form (eligible: "
            f"{', '.join(str(n) for n in FLEET_TABLES)}); run it through "
            f"the sequential driver")
    results = {size: fleet_row_results(number, config, size, backend)
               for size in config.sizes}
    algorithm = _FLEET_STARTS[number][0]
    baseline = {2: "MST", 3: "Steiner tree", 7: "ERT"}[number]
    if number == 2:
        blocks = {}
        for k in (1, 2):
            rows = []
            for size in config.sizes:
                ratios = [iteration_ratios(r, k) for r in results[size]]
                reached = any(r.num_added_edges >= k for r in results[size])
                rows.append(aggregate(size, ratios,
                                      not_applicable=not reached))
            blocks[f"LDRG Iteration {('One', 'Two')[k - 1]}"] = rows
        notes = ("Iteration-k ratios are relative to the iteration-(k-1) "
                 "routing.")
    else:
        blocks = {"": [
            aggregate(size, [final_ratios(r) for r in results[size]])
            for size in config.sizes]}
        notes = ""
    return Table(
        title=(f"Table {number} ({algorithm.upper()}, normalized to "
               f"{baseline}) — graph-Elmore oracle, fleet-batched"),
        blocks=blocks,
        notes=notes,
    )


def run_table_multinet(number: int, config: ExperimentConfig,
                       backend: str = "auto",
                       sequential: Callable[..., Table] | None = None,
                       ) -> tuple[Table, bool]:
    """The ``table --multinet`` entry point: batch when eligible.

    Returns ``(table, batched)``. An ineligible table (no greedy
    generation loop to batch) runs through the sequential driver
    instead, and that detour is *recorded* — a
    :data:`~repro.guard.incidents.KIND_FALLBACK` provenance event names
    the table and the reason, so journals show which published rows rode
    the fleet and which did not.
    """
    if number in _FLEET_STARTS:
        return run_fleet_table(number, config, backend), True
    record_event(
        KIND_FALLBACK, source=f"table{number}", target="sequential",
        detail=f"table {number} has no fleet-batched form (eligible "
               f"tables: {', '.join(str(n) for n in FLEET_TABLES)}); "
               f"the sequential driver served this --multinet request")
    if sequential is None:
        from repro.experiments.tables import run_table
        sequential = run_table
    return sequential(number, config), False
