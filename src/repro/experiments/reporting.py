"""Text rendering of experiment tables, in the paper's row layout."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.harness import RowStats

_HEADERS = ("net size", "All Delay", "All Cost", "% Winners",
            "Win Delay", "Win Cost")


@dataclass
class Table:
    """A rendered experiment table: title + named row blocks.

    ``blocks`` maps a block label (e.g. "Iteration One") to its rows;
    single-block tables use the empty-string label.
    """

    title: str
    blocks: dict[str, list[RowStats]] = field(default_factory=dict)
    notes: str = ""

    def rows(self, block: str = "") -> list[RowStats]:
        return self.blocks[block]

    def render(self) -> str:
        """The table as paper-style monospace text."""
        lines = [self.title, "=" * len(self.title)]
        for label, rows in self.blocks.items():
            if label:
                lines.append(f"-- {label} --")
            lines.append(format_rows(rows))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)


def format_rows(rows: Sequence[RowStats]) -> str:
    """Rows as aligned text with the paper's NA convention.

    Rows produced under a fault-tolerant runtime may carry failed or
    engine-degraded trial counts; those are appended as a bracketed
    annotation so degraded or incomplete statistics are never presented
    as clean paper numbers. Fully clean rows render exactly as before.
    """
    widths = [9, 10, 9, 10, 10, 9]
    header = "  ".join(h.ljust(w) for h, w in zip(_HEADERS, widths))
    out = [header, "-" * len(header)]
    for row in rows:
        if row.not_applicable:
            cells = [str(row.net_size)] + ["NA"] * 5
        else:
            cells = [
                str(row.net_size),
                f"{row.all_delay:.2f}",
                f"{row.all_cost:.2f}",
                f"{row.percent_winners:.0f}",
                "NA" if row.win_delay is None else f"{row.win_delay:.2f}",
                "NA" if row.win_cost is None else f"{row.win_cost:.2f}",
            ]
        line = "  ".join(c.ljust(w) for c, w in zip(cells, widths))
        note = _reliability_note(row)
        out.append(line + note if note else line)
    return "\n".join(out)


def _reliability_note(row: RowStats) -> str:
    """Bracketed failed/degraded/audit annotation; empty for clean rows."""
    parts = []
    if row.failed:
        parts.append(f"{row.num_trials} ok, {row.failed} failed")
    if row.degraded:
        parts.append(f"{row.degraded} degraded-engine")
    if row.audited:
        parts.append(f"audited {row.audited}, diverged {row.diverged}")
    return f"[{'; '.join(parts)}]" if parts else ""
