"""The paper's published table values, transcribed as data.

Used by the comparison tooling to print paper-vs-measured side by side
(EXPERIMENTS.md) and by sanity tests that ensure the transcription is
internally consistent (the all-cases columns of per-iteration tables are
weighted averages of the winners-only columns — the arithmetic the
harness's statistics are defined by).

Each row is ``(all_delay, all_cost, percent_winners, win_delay,
win_cost)``; ``None`` marks the paper's "NA" cells.
"""

from __future__ import annotations

Row = tuple[float | None, float | None, float | None,
            float | None, float | None]

#: table number -> block label -> net size -> row
PAPER_TABLES: dict[int, dict[str, dict[int, Row]]] = {
    2: {
        "LDRG Iteration One": {
            5: (0.94, 1.22, 52, 0.88, 1.44),
            10: (0.84, 1.23, 90, 0.82, 1.25),
            20: (0.81, 1.16, 100, 0.81, 1.16),
            30: (0.76, 1.11, 100, 0.76, 1.11),
        },
        "LDRG Iteration Two": {
            5: (None, None, None, None, None),
            10: (0.98, 1.04, 10, 0.79, 1.40),
            20: (0.91, 1.13, 42, 0.78, 1.30),
            30: (0.83, 1.53, 68, 0.75, 1.23),
        },
    },
    3: {
        "": {
            5: (0.99, 1.02, 4, 0.94, 1.59),
            10: (0.91, 1.20, 66, 0.87, 1.30),
            20: (0.79, 1.17, 94, 0.77, 1.18),
            30: (0.77, 1.10, 100, 0.77, 1.10),
        },
    },
    4: {
        "H1 Iteration One": {
            5: (0.98, 1.10, 20, 0.90, 1.49),
            10: (0.93, 1.17, 48, 0.84, 1.35),
            20: (0.88, 1.16, 68, 0.82, 1.24),
            30: (0.83, 1.17, 82, 0.80, 1.17),
        },
        "H1 Iteration Two": {
            5: (None, None, None, None, None),
            10: (0.98, 1.03, 10, 0.81, 1.34),
            20: (0.99, 1.02, 6, 0.87, 1.26),
            30: (0.95, 1.04, 24, 0.80, 1.18),
        },
    },
    5: {
        "H2 Heuristic": {
            5: (1.14, 1.64, 18, 0.89, 1.48),
            10: (0.99, 1.42, 47, 0.82, 1.34),
            20: (0.91, 1.29, 68, 0.83, 1.24),
            30: (0.84, 1.23, 80, 0.79, 1.21),
        },
        "H3 Heuristic": {
            5: (1.10, 1.59, 0, None, None),
            10: (0.93, 1.33, 64, 0.84, 1.29),
            20: (0.85, 1.20, 92, 0.83, 1.19),
            30: (0.77, 1.13, 90, 0.76, 1.13),
        },
    },
    6: {
        "": {
            5: (0.94, 1.22, 54, 0.92, 1.14),
            10: (0.85, 1.27, 78, 0.84, 1.19),
            20: (0.80, 1.26, 92, 0.79, 1.22),
            30: (0.71, 1.21, 97, 0.71, 1.21),
        },
    },
    7: {
        "": {
            5: (0.99, 1.38, 8, 0.92, 1.31),
            10: (0.99, 1.22, 22, 0.96, 1.21),
            20: (0.98, 1.13, 44, 0.96, 1.12),
            30: (0.97, 1.12, 56, 0.96, 1.12),
        },
    },
}

#: Figure captions' headline numbers: (before_ns, after_ns,
#: improvement_pct, wire_penalty_pct)
PAPER_FIGURES: dict[int, tuple[float, float, float, float]] = {
    1: (1.3, 1.0, 23.0, 9.0),
    2: (5.4, 3.6, 33.3, 21.5),
    3: (4.4, 3.9, 11.4, 40.0),
    5: (2.8, 1.9, 32.0, 25.0),
}


def paper_row(table: int, block: str, size: int) -> Row:
    """One published row; raises ``KeyError`` for unknown coordinates."""
    return PAPER_TABLES[table][block][size]
