"""Drivers that regenerate Tables 2–7 of the paper.

Each function runs the corresponding algorithm over the configured trial
sets and returns a :class:`~repro.experiments.reporting.Table` with the
same blocks/columns as the paper. Trial count and sizes come from the
:class:`~repro.experiments.harness.ExperimentConfig` (the paper's full
protocol is ``trials=50, sizes=(5, 10, 20, 30)``).

Every algorithm *searches* with the config's fast oracle and is *scored*
with the config's evaluation oracle, mirroring the paper's use of SPICE
for all reported numbers.

Every driver accepts a :class:`~repro.runtime.RuntimePolicy` and routes
through :mod:`repro.runtime`, so any table run can journal, resume after
a kill, tolerate failed trials, and fan out over worker processes. The
per-table trial runners are module-level functions (bound to their
config with :func:`functools.partial`) precisely so they can cross a
process boundary: closures don't pickle, these do.
"""

from __future__ import annotations

from functools import partial

from repro.core.ert import ert, ert_ldrg
from repro.core.heuristics import h1, h2, h3
from repro.core.ldrg import ldrg
from repro.core.result import RoutingResult
from repro.core.sldrg import sldrg
from repro.experiments.harness import (
    ExperimentConfig,
    final_ratios,
    iteration_sweep,
    run_size_sweep,
)
from repro.experiments.reporting import Table
from repro.geometry.net import Net
from repro.runtime import RuntimePolicy


def table1(config: ExperimentConfig | None = None) -> str:
    """Table 1: the SPICE interconnect parameters, as text."""
    tech = (config or ExperimentConfig()).tech
    rows = [
        ("driver resistance", f"{tech.driver_resistance:.0f} ohm"),
        ("wire resistance", f"{tech.wire_resistance} ohm/um"),
        ("wire capacitance", f"{tech.wire_capacitance * 1e15:.3f} fF/um"),
        ("wire inductance", f"{tech.wire_inductance * 1e15:.0f} fH/um"),
        ("sink loading capacitance", f"{tech.sink_capacitance * 1e15:.1f} fF"),
        ("layout area", f"{(tech.region / 1000.0) ** 2:.0f} mm^2"),
    ]
    width = max(len(name) for name, _ in rows)
    lines = ["Table 1: CMOS interconnect technology parameters",
             "-" * 48]
    lines += [f"{name.ljust(width)}  {value}" for name, value in rows]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Trial runners — module-level (picklable) so sweeps can cross process
# boundaries. Each builds its models per trial; models are cheap handles
# and per-trial construction keys chaos fault streams to the net's name.
# Each runner enters the config's guard scope itself (rather than the
# sweep doing it once) so the policy is active in whichever process —
# parent or pool worker — executes the trial.
# ---------------------------------------------------------------------------


def run_ldrg_trial(config: ExperimentConfig, net: Net) -> RoutingResult:
    """Table 2: LDRG from an MST."""
    with config.guard_scope():
        return ldrg(net, config.tech,
                    delay_model=config.search_model(chaos_salt=net.name),
                    evaluation_model=config.eval_model(chaos_salt=net.name))


def run_sldrg_trial(config: ExperimentConfig, net: Net) -> RoutingResult:
    """Table 3: SLDRG from a Steiner tree."""
    with config.guard_scope():
        return sldrg(net, config.tech,
                     delay_model=config.search_model(chaos_salt=net.name),
                     evaluation_model=config.eval_model(chaos_salt=net.name))


def run_h1_trial(config: ExperimentConfig, net: Net) -> RoutingResult:
    """Table 4: the H1 heuristic (SPICE-guided, evaluation oracle only)."""
    with config.guard_scope():
        return h1(net, config.tech,
                  delay_model=config.eval_model(chaos_salt=net.name))


def run_h2_trial(config: ExperimentConfig, net: Net) -> RoutingResult:
    """Table 5 (block 1): the H2 heuristic (no SPICE in the loop)."""
    with config.guard_scope():
        return h2(net, config.tech,
                  evaluation_model=config.eval_model(chaos_salt=net.name))


def run_h3_trial(config: ExperimentConfig, net: Net) -> RoutingResult:
    """Table 5 (block 2): the H3 heuristic (no SPICE in the loop)."""
    with config.guard_scope():
        return h3(net, config.tech,
                  evaluation_model=config.eval_model(chaos_salt=net.name))


def run_ert_trial(config: ExperimentConfig, net: Net) -> RoutingResult:
    """Table 6: the ERT baseline of Boese et al."""
    with config.guard_scope():
        return ert(net, config.tech,
                   evaluation_model=config.eval_model(chaos_salt=net.name))


def run_ert_ldrg_trial(config: ExperimentConfig, net: Net) -> RoutingResult:
    """Table 7: LDRG started from an ERT."""
    with config.guard_scope():
        return ert_ldrg(net, config.tech,
                        delay_model=config.search_model(chaos_salt=net.name),
                        evaluation_model=config.eval_model(chaos_salt=net.name))


def table2(config: ExperimentConfig,
           runtime: RuntimePolicy | None = None) -> Table:
    """Table 2: LDRG vs MST, marginal statistics for iterations one & two."""
    sweep = iteration_sweep(config, partial(run_ldrg_trial, config),
                            iterations=(1, 2), runtime=runtime)
    return Table(
        title="Table 2: LDRG Algorithm Statistics (normalized to MST)",
        blocks={"LDRG Iteration One": sweep[1],
                "LDRG Iteration Two": sweep[2]},
        notes="Iteration-k ratios are relative to the iteration-(k-1) routing.",
    )


def table3(config: ExperimentConfig,
           runtime: RuntimePolicy | None = None) -> Table:
    """Table 3: SLDRG vs the Steiner tree it starts from."""
    rows = run_size_sweep(config, partial(run_sldrg_trial, config),
                          final_ratios, runtime=runtime)
    return Table(
        title="Table 3: SLDRG Algorithm Statistics (normalized to Steiner tree)",
        blocks={"": rows},
    )


def table4(config: ExperimentConfig,
           runtime: RuntimePolicy | None = None) -> Table:
    """Table 4: heuristic H1 vs MST, iterations one & two."""
    sweep = iteration_sweep(config, partial(run_h1_trial, config),
                            iterations=(1, 2), runtime=runtime)
    return Table(
        title="Table 4: H1 Heuristic Statistics (normalized to MST)",
        blocks={"H1 Iteration One": sweep[1],
                "H1 Iteration Two": sweep[2]},
        notes="Iteration-k ratios are relative to the iteration-(k-1) routing.",
    )


def table5(config: ExperimentConfig,
           runtime: RuntimePolicy | None = None) -> Table:
    """Table 5: heuristics H2 and H3 vs MST (no SPICE in the loop)."""
    rows_h2 = run_size_sweep(config, partial(run_h2_trial, config),
                             runtime=runtime)
    rows_h3 = run_size_sweep(config, partial(run_h3_trial, config),
                             runtime=runtime)
    return Table(
        title="Table 5: H2 and H3 Heuristic Statistics (normalized to MST)",
        blocks={"H2 Heuristic": rows_h2, "H3 Heuristic": rows_h3},
    )


def table6(config: ExperimentConfig,
           runtime: RuntimePolicy | None = None) -> Table:
    """Table 6: the ERT baseline of Boese et al. vs MST."""
    rows = run_size_sweep(config, partial(run_ert_trial, config),
                          runtime=runtime)
    return Table(
        title="Table 6: Elmore Routing Tree Statistics (normalized to MST)",
        blocks={"": rows},
    )


def table7(config: ExperimentConfig,
           runtime: RuntimePolicy | None = None) -> Table:
    """Table 7: LDRG started from an ERT, normalized to the ERT."""
    rows = run_size_sweep(config, partial(run_ert_ldrg_trial, config),
                          final_ratios, runtime=runtime)
    return Table(
        title="Table 7: ERT-Based LDRG Algorithm Statistics (normalized to ERT)",
        blocks={"": rows},
    )


#: Experiment id → driver, for programmatic access ("give me Table 6").
TABLE_DRIVERS = {
    2: table2,
    3: table3,
    4: table4,
    5: table5,
    6: table6,
    7: table7,
}


def run_table(number: int, config: ExperimentConfig,
              runtime: RuntimePolicy | None = None) -> Table:
    """Regenerate one of the paper's tables by number (2–7).

    ``runtime`` selects the execution policy — journaling, resume,
    parallel workers, fault tolerance (see
    :class:`~repro.runtime.RuntimePolicy`). ``None`` keeps the strict
    in-memory semantics.
    """
    try:
        driver = TABLE_DRIVERS[number]
    except KeyError:
        raise ValueError(
            f"no such experiment table {number}; available: "
            f"{sorted(TABLE_DRIVERS)}") from None
    return driver(config, runtime)
