"""Experiment harness regenerating every table and figure of the paper.

* :mod:`repro.experiments.harness` — trial protocol, statistics, config;
* :mod:`repro.experiments.tables` — Tables 1–7 drivers;
* :mod:`repro.experiments.figures` — Figures 1, 2, 3, 5 drivers;
* :mod:`repro.experiments.reporting` — paper-style text rendering.
"""

from repro.experiments.harness import (
    ExperimentConfig,
    PAPER_SIZES,
    PAPER_TRIALS,
    RowStats,
    TrialRatios,
    aggregate,
    final_ratios,
    iteration_ratios,
    iteration_sweep,
    run_size_sweep,
)
from repro.experiments.reporting import Table, format_rows
from repro.experiments.tables import (
    TABLE_DRIVERS,
    run_table,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.figures import (
    FIGURE_DRIVERS,
    FigureReport,
    figure1,
    figure2,
    figure3,
    figure5,
    run_figure,
)
from repro.experiments.fleet import (
    FLEET_TABLES,
    run_fleet_table,
    run_table_multinet,
)

__all__ = [
    "ExperimentConfig",
    "FIGURE_DRIVERS",
    "FLEET_TABLES",
    "FigureReport",
    "PAPER_SIZES",
    "PAPER_TRIALS",
    "RowStats",
    "TABLE_DRIVERS",
    "Table",
    "TrialRatios",
    "aggregate",
    "figure1",
    "figure2",
    "figure3",
    "figure5",
    "final_ratios",
    "format_rows",
    "iteration_ratios",
    "iteration_sweep",
    "run_figure",
    "run_fleet_table",
    "run_size_sweep",
    "run_table",
    "run_table_multinet",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
]
