"""Paper-vs-measured comparison rendering.

Takes a measured :class:`~repro.experiments.reporting.Table` (or parses
one previously rendered to text) and lines it up against the transcribed
published values, producing the side-by-side blocks EXPERIMENTS.md
records for every table.
"""

from __future__ import annotations

import re

from repro.experiments.harness import RowStats
from repro.experiments.paper_data import PAPER_TABLES
from repro.experiments.reporting import Table

_ROW_RE = re.compile(r"^\s*(\d+)\s+(\S+)\s+(\S+)\s+(\S+)\s+(\S+)\s+(\S+)\s*$")


def parse_rendered_table(text: str) -> dict[str, dict[int, RowStats]]:
    """Parse a table previously rendered by ``Table.render``.

    Returns block label → net size → :class:`RowStats` (trial count is
    not recoverable from the rendering and is reported as 0).
    """
    blocks: dict[str, dict[int, RowStats]] = {}
    label = ""
    for line in text.splitlines():
        stripped = line.strip()
        header = re.match(r"^-- (.+) --$", stripped)
        if header:
            label = header.group(1)
            continue
        match = _ROW_RE.match(line)
        if not match or stripped.startswith("net size"):
            continue
        size = int(match.group(1))
        cells = match.groups()[1:]
        if cells[0] == "NA" and cells[1] == "NA" and cells[2] == "NA":
            row = RowStats(net_size=size, num_trials=0, all_delay=0.0,
                           all_cost=0.0, percent_winners=0.0,
                           win_delay=None, win_cost=None,
                           not_applicable=True)
        else:
            def num(cell: str) -> float | None:
                return None if cell == "NA" else float(cell)

            row = RowStats(
                net_size=size, num_trials=0,
                all_delay=float(cells[0]), all_cost=float(cells[1]),
                percent_winners=float(cells[2]),
                win_delay=num(cells[3]), win_cost=num(cells[4]))
        blocks.setdefault(label, {})[size] = row
    if not blocks:
        raise ValueError("no table rows found in rendered text")
    return blocks


def compare_blocks(table_number: int,
                   measured: dict[str, dict[int, RowStats]]) -> str:
    """Side-by-side paper/measured text for one table."""
    try:
        published = PAPER_TABLES[table_number]
    except KeyError:
        raise ValueError(f"no published data for table {table_number}") from None
    lines = [f"Table {table_number}: paper vs measured "
             "(delay ratio / cost ratio / % winners)"]
    for label, sizes in published.items():
        if label:
            lines.append(f"-- {label} --")
        lines.append(f"{'size':>5s}  {'paper':>22s}  {'measured':>22s}")
        for size, row in sorted(sizes.items()):
            paper_cell = _cell(row[0], row[1], row[2])
            measured_row = measured.get(label, {}).get(size)
            if measured_row is None:
                measured_cell = "(not run)"
            elif measured_row.not_applicable:
                measured_cell = "NA"
            else:
                measured_cell = _cell(measured_row.all_delay,
                                      measured_row.all_cost,
                                      measured_row.percent_winners)
            lines.append(f"{size:>5d}  {paper_cell:>22s}  {measured_cell:>22s}")
    return "\n".join(lines)


def compare_table(table_number: int, measured: Table) -> str:
    """Side-by-side comparison straight from a measured Table object."""
    blocks = {label: {row.net_size: row for row in rows}
              for label, rows in measured.blocks.items()}
    return compare_blocks(table_number, blocks)


def _cell(delay, cost, winners) -> str:
    if delay is None:
        return "NA"
    return f"{delay:.2f} / {cost:.2f} / {winners:.0f}%"
