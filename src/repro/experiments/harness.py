"""The trial harness behind every table of the paper's evaluation.

Section 4 protocol: "sets of 50 nets for each of several net sizes; pin
locations randomly chosen from a uniform distribution in a square layout
region", with every number normalized to a baseline topology (MST, Steiner
tree, or ERT) and reported three ways:

* **All Cases** — mean ratio over all trials, non-improving runs included;
* **Percent Winners** — fraction of trials where the method beat the
  baseline delay;
* **Winners Only** — mean ratios over just those trials.

For the per-iteration tables (LDRG and H1, iterations one and two) the
paper's numbers are *marginal*: iteration ``k``'s ratios compare the
routing after ``k`` additions against the routing after ``k − 1``, with
nets that stopped earlier contributing exactly 1.0. This interpretation
reproduces the paper's own arithmetic — e.g. Table 2, 10 pins, iteration
two: 10% winners at 0.79/1.40 winners-only gives all-cases
0.1·0.79 + 0.9·1.0 = 0.98 and 0.1·1.40 + 0.9·1.0 = 1.04, exactly the
printed row (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from statistics import mean
from typing import Callable, Iterable, Sequence

from repro.core.result import RoutingResult, WIN_TOLERANCE
from repro.delay.models import SpiceDelayModel
from repro.delay.parameters import Technology
from repro.delay.spice_delay import SpiceOptions
from repro.geometry.random_nets import random_nets
from repro.geometry.net import Net

#: The paper's evaluation net sizes.
PAPER_SIZES: tuple[int, ...] = (5, 10, 20, 30)
#: The paper's trial count per net size.
PAPER_TRIALS = 50


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of a table run (sizes, trials, seed, oracle fidelity).

    ``segments_search`` controls the π-section count of the SPICE oracle
    used *inside* greedy loops; ``segments_eval`` that of the oracle
    producing reported numbers. (1, 3) keeps full-table runtimes modest at
    a measured worst-case discretization error well under 1% — see the
    segmentation ablation benchmark.
    """

    sizes: tuple[int, ...] = PAPER_SIZES
    trials: int = PAPER_TRIALS
    seed: int = 1994
    segments_search: int = 1
    segments_eval: int = 3
    tech: Technology = field(default_factory=Technology.cmos08)

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if any(size < 2 for size in self.sizes):
            raise ValueError("net sizes must be >= 2")

    @classmethod
    def from_env(cls, default_trials: int = PAPER_TRIALS,
                 default_sizes: tuple[int, ...] = PAPER_SIZES) -> "ExperimentConfig":
        """Config honoring ``REPRO_TRIALS`` / ``REPRO_SIZES`` / ``REPRO_SEED``.

        Benchmarks default to a reduced trial count for CI-scale runtimes;
        set ``REPRO_TRIALS=50`` to regenerate the paper-scale tables with
        the identical code path.
        """
        trials = int(os.environ.get("REPRO_TRIALS", default_trials))
        sizes_env = os.environ.get("REPRO_SIZES")
        if sizes_env:
            sizes = tuple(int(tok) for tok in sizes_env.split(",") if tok.strip())
        else:
            sizes = default_sizes
        seed = int(os.environ.get("REPRO_SEED", 1994))
        return cls(sizes=sizes, trials=trials, seed=seed)

    def search_model(self) -> SpiceDelayModel:
        """The oracle used inside greedy loops."""
        return SpiceDelayModel(
            self.tech, SpiceOptions(segments=self.segments_search))

    def eval_model(self) -> SpiceDelayModel:
        """The oracle used for all reported delays."""
        return SpiceDelayModel(
            self.tech, SpiceOptions(segments=self.segments_eval))

    def nets(self, size: int) -> Iterable[Net]:
        """The reproducible trial nets for one size."""
        return random_nets(size, self.trials, seed=self.seed,
                           region=self.tech.region)


@dataclass(frozen=True)
class TrialRatios:
    """One trial's normalized outcome: (delay ratio, cost ratio, winner)."""

    delay_ratio: float
    cost_ratio: float
    improved: bool


@dataclass(frozen=True)
class RowStats:
    """One table row: aggregate statistics for one net size."""

    net_size: int
    num_trials: int
    all_delay: float
    all_cost: float
    percent_winners: float
    win_delay: float | None
    win_cost: float | None
    #: True when no trial even *attempted* this row (paper prints NA rows
    #: when, e.g., no 5-pin net ever received a second edge).
    not_applicable: bool = False


def aggregate(net_size: int, ratios: Sequence[TrialRatios],
              not_applicable: bool = False) -> RowStats:
    """Fold per-trial ratios into a paper-style table row."""
    if not ratios:
        raise ValueError("no trial outcomes to aggregate")
    winners = [r for r in ratios if r.improved]
    return RowStats(
        net_size=net_size,
        num_trials=len(ratios),
        all_delay=mean(r.delay_ratio for r in ratios),
        all_cost=mean(r.cost_ratio for r in ratios),
        percent_winners=100.0 * len(winners) / len(ratios),
        win_delay=mean(r.delay_ratio for r in winners) if winners else None,
        win_cost=mean(r.cost_ratio for r in winners) if winners else None,
        not_applicable=not_applicable,
    )


def final_ratios(result: RoutingResult) -> TrialRatios:
    """Converged-result ratios against the result's own baseline."""
    return TrialRatios(
        delay_ratio=result.delay_ratio,
        cost_ratio=result.cost_ratio,
        improved=result.improved,
    )


def iteration_ratios(result: RoutingResult, k: int) -> TrialRatios:
    """Marginal ratios of iteration ``k`` (see module docstring).

    A net whose run stopped before iteration ``k`` contributes ratio 1.0
    and is not a winner.
    """
    if k < 1:
        raise ValueError("iterations are numbered from 1")
    if result.num_added_edges < k:
        return TrialRatios(delay_ratio=1.0, cost_ratio=1.0, improved=False)
    prev_delay, prev_cost = result.at_iteration(k - 1)
    delay, cost = result.at_iteration(k)
    return TrialRatios(
        delay_ratio=delay / prev_delay,
        cost_ratio=cost / prev_cost,
        improved=delay < prev_delay * (1.0 - WIN_TOLERANCE),
    )


def run_size_sweep(config: ExperimentConfig,
                   run_one: Callable[[Net], RoutingResult],
                   extract: Callable[[RoutingResult], TrialRatios] = final_ratios,
                   ) -> list[RowStats]:
    """Run ``run_one`` over every (size, trial) net and aggregate rows."""
    rows = []
    for size in config.sizes:
        ratios = [extract(run_one(net)) for net in config.nets(size)]
        rows.append(aggregate(size, ratios))
    return rows


def iteration_sweep(config: ExperimentConfig,
                    run_one: Callable[[Net], RoutingResult],
                    iterations: Sequence[int] = (1, 2),
                    ) -> dict[int, list[RowStats]]:
    """One pass per size, sliced into per-iteration marginal rows.

    Returns iteration number → rows. Rows where *no* net reached the
    iteration are flagged ``not_applicable`` (printed as NA).
    """
    results_by_size: dict[int, list[RoutingResult]] = {}
    for size in config.sizes:
        results_by_size[size] = [run_one(net) for net in config.nets(size)]
    table: dict[int, list[RowStats]] = {}
    for k in iterations:
        rows = []
        for size in config.sizes:
            results = results_by_size[size]
            ratios = [iteration_ratios(r, k) for r in results]
            reached = any(r.num_added_edges >= k for r in results)
            rows.append(aggregate(size, ratios, not_applicable=not reached))
        table[k] = rows
    return table
