"""The trial harness behind every table of the paper's evaluation.

Section 4 protocol: "sets of 50 nets for each of several net sizes; pin
locations randomly chosen from a uniform distribution in a square layout
region", with every number normalized to a baseline topology (MST, Steiner
tree, or ERT) and reported three ways:

* **All Cases** — mean ratio over all trials, non-improving runs included;
* **Percent Winners** — fraction of trials where the method beat the
  baseline delay;
* **Winners Only** — mean ratios over just those trials.

For the per-iteration tables (LDRG and H1, iterations one and two) the
paper's numbers are *marginal*: iteration ``k``'s ratios compare the
routing after ``k`` additions against the routing after ``k − 1``, with
nets that stopped earlier contributing exactly 1.0. This interpretation
reproduces the paper's own arithmetic — e.g. Table 2, 10 pins, iteration
two: 10% winners at 0.79/1.40 winners-only gives all-cases
0.1·0.79 + 0.9·1.0 = 0.98 and 0.1·1.40 + 0.9·1.0 = 1.04, exactly the
printed row (see EXPERIMENTS.md).

Execution runs through :mod:`repro.runtime`: pass a
:class:`~repro.runtime.RuntimePolicy` to get crash-safe journaling with
``--resume``, isolated parallel workers, and failure-tolerant rows
(failed trials are counted, not fatal). With no policy the historical
strict in-memory semantics apply unchanged. Trials are keyed by
``(net size, trial index)``, so aggregated rows are bit-identical for
any worker count and across kill/resume cycles.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field
from statistics import mean
from typing import Any, Callable, Iterable, Protocol, Sequence

from repro.core.result import RoutingResult, WIN_TOLERANCE
from repro.delay.models import DelayModel, SpiceDelayModel
from repro.delay.parameters import Technology
from repro.delay.spice_delay import SpiceOptions
from repro.geometry.random_nets import random_nets
from repro.geometry.net import Net
from repro.guard.policy import GuardPolicy, OFF
from repro.guard.policy import guard_scope as _guard_scope
from repro.runtime import (
    ChaosDelayModel,
    ChaosPolicy,
    ConfigError,
    LEGACY_POLICY,
    RunJournal,
    RuntimePolicy,
    TrialFailure,
    TrialKey,
    TrialOutcome,
    TrialResult,
    describe_runner,
    open_journal,
    run_trials,
    sweep_tasks,
)

#: The paper's evaluation net sizes.
PAPER_SIZES: tuple[int, ...] = (5, 10, 20, 30)
#: The paper's trial count per net size.
PAPER_TRIALS = 50

#: Not-a-number placeholder for rows where no trial completed.
_NAN = float("nan")


class RatioSource(Protocol):
    """What an extract function needs from a trial outcome.

    Satisfied by both :class:`~repro.core.result.RoutingResult` and its
    journalable projection :class:`~repro.runtime.TrialResult`.
    """

    @property
    def delay_ratio(self) -> float: ...

    @property
    def cost_ratio(self) -> float: ...

    @property
    def improved(self) -> bool: ...

    @property
    def num_added_edges(self) -> int: ...

    def at_iteration(self, k: int) -> tuple[float, float]: ...


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of a table run (sizes, trials, seed, oracle fidelity).

    ``segments_search`` controls the π-section count of the SPICE oracle
    used *inside* greedy loops; ``segments_eval`` that of the oracle
    producing reported numbers. (1, 3) keeps full-table runtimes modest at
    a measured worst-case discretization error well under 1% — see the
    segmentation ablation benchmark.

    ``chaos`` wires a :class:`~repro.runtime.ChaosPolicy` into every
    model the config builds — the deterministic fault-injection hook the
    robustness tests and the CI chaos smoke run use.

    ``guard`` selects the :class:`~repro.guard.policy.GuardPolicy` the
    trial runners activate around each trial (invariant sentinels,
    shadow audit of the incremental candidate engine) — the CLI's
    ``--guard`` flag lands here.
    """

    sizes: tuple[int, ...] = PAPER_SIZES
    trials: int = PAPER_TRIALS
    seed: int = 1994
    segments_search: int = 1
    segments_eval: int = 3
    tech: Technology = field(default_factory=Technology.cmos08)
    chaos: ChaosPolicy | None = None
    guard: GuardPolicy | None = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if any(size < 2 for size in self.sizes):
            raise ValueError("net sizes must be >= 2")

    @classmethod
    def from_env(cls, default_trials: int = PAPER_TRIALS,
                 default_sizes: tuple[int, ...] = PAPER_SIZES) -> "ExperimentConfig":
        """Config honoring ``REPRO_TRIALS`` / ``REPRO_SIZES`` / ``REPRO_SEED``.

        Benchmarks default to a reduced trial count for CI-scale runtimes;
        set ``REPRO_TRIALS=50`` to regenerate the paper-scale tables with
        the identical code path. Malformed values raise
        :class:`~repro.runtime.ConfigError` naming the variable and the
        offending text instead of a bare ``ValueError``.
        """
        trials = _env_int("REPRO_TRIALS", default_trials)
        sizes = _env_sizes("REPRO_SIZES", default_sizes)
        seed = _env_int("REPRO_SEED", 1994)
        try:
            return cls(sizes=sizes, trials=trials, seed=seed)
        except ValueError as exc:
            raise ConfigError(
                f"invalid experiment configuration from environment "
                f"(REPRO_TRIALS/REPRO_SIZES/REPRO_SEED): {exc}") from exc

    def search_model(self, chaos_salt: str = "") -> DelayModel:
        """The oracle used inside greedy loops."""
        return self._wrap(SpiceDelayModel(
            self.tech, SpiceOptions(segments=self.segments_search)),
            chaos_salt)

    def eval_model(self, chaos_salt: str = "") -> DelayModel:
        """The oracle used for all reported delays."""
        return self._wrap(SpiceDelayModel(
            self.tech, SpiceOptions(segments=self.segments_eval)),
            chaos_salt)

    def _wrap(self, model: SpiceDelayModel, chaos_salt: str) -> DelayModel:
        if self.chaos is None:
            return model
        return ChaosDelayModel(model, self.chaos, salt=chaos_salt)

    def guard_scope(self):
        """Context manager activating this config's guard policy.

        Entered *inside* each trial runner (not around the sweep), so the
        scope exists in whichever process — parent or pool worker —
        actually executes the trial.
        """
        return _guard_scope(self.guard if self.guard is not None else OFF)

    def nets(self, size: int) -> Iterable[Net]:
        """The reproducible trial nets for one size."""
        return random_nets(size, self.trials, seed=self.seed,
                           region=self.tech.region)

    def fingerprint_data(self) -> dict[str, Any]:
        """Everything that determines trial outcomes, JSON-ready.

        This is what keys a journal run directory: two configs with the
        same fingerprint data produce bit-identical trials, so their
        journal records are interchangeable.
        """
        return {
            "sizes": list(self.sizes),
            "trials": self.trials,
            "seed": self.seed,
            "segments_search": self.segments_search,
            "segments_eval": self.segments_eval,
            "tech": asdict(self.tech),
            "chaos": None if self.chaos is None else self.chaos.to_json_dict(),
            "guard": None if self.guard is None else self.guard.to_json_dict(),
        }


def _env_int(var: str, default: int) -> int:
    raw = os.environ.get(var)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ConfigError.for_env(var, raw, "an integer") from None


def _env_sizes(var: str, default: tuple[int, ...]) -> tuple[int, ...]:
    raw = os.environ.get(var)
    if not raw:
        return default
    try:
        sizes = tuple(int(tok) for tok in raw.split(",") if tok.strip())
    except ValueError:
        raise ConfigError.for_env(
            var, raw, "a comma-separated list of integers (e.g. 5,10,20)"
        ) from None
    if not sizes:
        raise ConfigError.for_env(
            var, raw, "at least one net size") from None
    return sizes


@dataclass(frozen=True)
class TrialRatios:
    """One trial's normalized outcome: (delay ratio, cost ratio, winner)."""

    delay_ratio: float
    cost_ratio: float
    improved: bool


@dataclass(frozen=True)
class RowStats:
    """One table row: aggregate statistics for one net size.

    ``num_trials`` counts *completed* trials; ``failed`` counts trials
    that crashed, hung, or errored (only ever nonzero under a
    fault-tolerant :class:`~repro.runtime.RuntimePolicy`); ``degraded``
    counts completed trials whose numbers involved a fallback engine —
    provenance the rendering surfaces so degraded numbers are never
    silently mixed into paper rows. ``audited``/``diverged`` count
    candidate scores the guard layer shadow re-checked against the naive
    oracle and how many of those disagreed (nonzero ``diverged`` means
    the fast path was quarantined mid-row).
    """

    net_size: int
    num_trials: int
    all_delay: float
    all_cost: float
    percent_winners: float
    win_delay: float | None
    win_cost: float | None
    #: True when no trial even *attempted* this row (paper prints NA rows
    #: when, e.g., no 5-pin net ever received a second edge).
    not_applicable: bool = False
    failed: int = 0
    degraded: int = 0
    audited: int = 0
    diverged: int = 0


def aggregate(net_size: int, ratios: Sequence[TrialRatios],
              not_applicable: bool = False, failures: int = 0,
              degraded: int = 0, audited: int = 0,
              diverged: int = 0) -> RowStats:
    """Fold per-trial ratios into a paper-style table row.

    With no completed ratios the row is only representable when failures
    explain the gap — it then renders as NA with its failure count.
    """
    if not ratios:
        if failures:
            return RowStats(
                net_size=net_size, num_trials=0, all_delay=_NAN,
                all_cost=_NAN, percent_winners=_NAN, win_delay=None,
                win_cost=None, not_applicable=True, failed=failures,
                degraded=degraded, audited=audited, diverged=diverged)
        raise ValueError("no trial outcomes to aggregate")
    winners = [r for r in ratios if r.improved]
    return RowStats(
        net_size=net_size,
        num_trials=len(ratios),
        all_delay=mean(r.delay_ratio for r in ratios),
        all_cost=mean(r.cost_ratio for r in ratios),
        percent_winners=100.0 * len(winners) / len(ratios),
        win_delay=mean(r.delay_ratio for r in winners) if winners else None,
        win_cost=mean(r.cost_ratio for r in winners) if winners else None,
        not_applicable=not_applicable,
        failed=failures,
        degraded=degraded,
        audited=audited,
        diverged=diverged,
    )


def final_ratios(result: RatioSource) -> TrialRatios:
    """Converged-result ratios against the result's own baseline."""
    return TrialRatios(
        delay_ratio=result.delay_ratio,
        cost_ratio=result.cost_ratio,
        improved=result.improved,
    )


def iteration_ratios(result: RatioSource, k: int) -> TrialRatios:
    """Marginal ratios of iteration ``k`` (see module docstring).

    A net whose run stopped before iteration ``k`` contributes ratio 1.0
    and is not a winner.
    """
    if k < 1:
        raise ValueError("iterations are numbered from 1")
    if result.num_added_edges < k:
        return TrialRatios(delay_ratio=1.0, cost_ratio=1.0, improved=False)
    prev_delay, prev_cost = result.at_iteration(k - 1)
    delay, cost = result.at_iteration(k)
    return TrialRatios(
        delay_ratio=delay / prev_delay,
        cost_ratio=cost / prev_cost,
        improved=delay < prev_delay * (1.0 - WIN_TOLERANCE),
    )


def _sweep_outcomes(config: ExperimentConfig,
                    run_one: Callable[[Net], RoutingResult],
                    policy: RuntimePolicy, kind: str,
                    extra: dict[str, Any] | None = None
                    ) -> dict[TrialKey, TrialOutcome]:
    """Run the full (size, trial) grid through the execution runtime."""
    journal: RunJournal | None = None
    if policy.run_root is not None:
        manifest = {"kind": kind, "runner": describe_runner(run_one),
                    "config": config.fingerprint_data()}
        if extra:
            manifest.update(extra)
        journal = open_journal(policy, manifest)
    nets_by_size = {size: list(config.nets(size)) for size in config.sizes}
    return run_trials(sweep_tasks(nets_by_size, run_one), policy, journal)


def _split_row(outcomes: dict[TrialKey, TrialOutcome], size: int,
               trials: int) -> tuple[list[TrialResult], list[TrialFailure]]:
    """One row's outcomes in trial order, split into results/failures."""
    results: list[TrialResult] = []
    failures: list[TrialFailure] = []
    for trial in range(trials):
        outcome = outcomes.get((size, trial))
        if isinstance(outcome, TrialResult):
            results.append(outcome)
        elif isinstance(outcome, TrialFailure):
            failures.append(outcome)
    return results, failures


def run_size_sweep(config: ExperimentConfig,
                   run_one: Callable[[Net], RoutingResult],
                   extract: Callable[[RatioSource], TrialRatios] = final_ratios,
                   runtime: RuntimePolicy | None = None,
                   ) -> list[RowStats]:
    """Run ``run_one`` over every (size, trial) net and aggregate rows.

    Without a ``runtime`` policy the first trial error aborts the sweep
    (the historical behavior); with one, failures become per-row counts
    and the sweep may journal, resume, and parallelize.
    """
    policy = runtime if runtime is not None else LEGACY_POLICY
    outcomes = _sweep_outcomes(config, run_one, policy, "size-sweep")
    rows = []
    for size in config.sizes:
        results, failures = _split_row(outcomes, size, config.trials)
        ratios = [extract(r) for r in results]
        rows.append(aggregate(
            size, ratios, failures=len(failures),
            degraded=sum(1 for r in results if r.degraded),
            audited=sum(r.audited for r in results),
            diverged=sum(r.diverged for r in results)))
    return rows


def iteration_sweep(config: ExperimentConfig,
                    run_one: Callable[[Net], RoutingResult],
                    iterations: Sequence[int] = (1, 2),
                    runtime: RuntimePolicy | None = None,
                    ) -> dict[int, list[RowStats]]:
    """One pass per size, sliced into per-iteration marginal rows.

    Returns iteration number → rows. Rows where *no* net reached the
    iteration are flagged ``not_applicable`` (printed as NA).
    """
    policy = runtime if runtime is not None else LEGACY_POLICY
    outcomes = _sweep_outcomes(config, run_one, policy, "iteration-sweep",
                               {"iterations": list(iterations)})
    table: dict[int, list[RowStats]] = {}
    for k in iterations:
        rows = []
        for size in config.sizes:
            results, failures = _split_row(outcomes, size, config.trials)
            ratios = [iteration_ratios(r, k) for r in results]
            reached = any(r.num_added_edges >= k for r in results)
            rows.append(aggregate(
                size, ratios, not_applicable=not reached,
                failures=len(failures),
                degraded=sum(1 for r in results if r.degraded),
                audited=sum(r.audited for r in results),
                diverged=sum(r.diverged for r in results)))
        table[k] = rows
    return table
