"""Modified Nodal Analysis (MNA) assembly.

The circuit equations are written as::

    C · dx/dt + G · x = u(t)

where ``x`` stacks the non-ground node voltages followed by one branch
current per inductor and per voltage source. ``G`` holds the resistive
stamps and source/inductor incidence rows, ``C`` the capacitor stamps and
inductor ``-L`` terms, and ``u(t)`` the source excitations. This is the
standard formulation used by SPICE for linear circuits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import GROUND, Circuit, CircuitError


@dataclass
class MNASystem:
    """Assembled MNA matrices and bookkeeping for one circuit.

    Attributes:
        G: (n, n) conductance/incidence matrix.
        C: (n, n) storage matrix (capacitors, inductor -L terms).
        node_index: node label → row (ground excluded).
        branch_index: inductor/source name → row of its branch current.
        circuit: the source circuit (used to sample ``u(t)``).
    """

    G: np.ndarray
    C: np.ndarray
    node_index: dict[str, int]
    branch_index: dict[str, int]
    circuit: Circuit

    @property
    def size(self) -> int:
        return self.G.shape[0]

    @property
    def num_nodes(self) -> int:
        return len(self.node_index)

    def rhs(self, t: float) -> np.ndarray:
        """The excitation vector ``u(t)``."""
        u = np.zeros(self.size)
        for source in self.circuit.voltage_sources():
            u[self.branch_index[source.name]] = source.value(t)
        for source in self.circuit.current_sources():
            current = source.value(t)
            pos = self.node_index.get(source.pos)
            neg = self.node_index.get(source.neg)
            # Positive source current leaves `pos` and is injected into `neg`.
            if pos is not None:
                u[pos] -= current
            if neg is not None:
                u[neg] += current
        return u

    def initial_state(self) -> np.ndarray:
        """State honouring capacitor/inductor initial conditions at t = 0.

        Node voltages are seeded from capacitor ``ic`` values where given
        (last writer wins for nodes shared by several capacitors), branch
        currents from inductor ``ic`` values; voltage-source branch
        currents start at zero. For the interconnect circuits in this repo
        all initial conditions are zero, matching a quiescent net.
        """
        x0 = np.zeros(self.size)
        for cap in self.circuit.capacitors():
            if cap.ic == 0.0:
                continue
            n1 = self.node_index.get(cap.n1)
            n2 = self.node_index.get(cap.n2)
            if n1 is not None and n2 is None:
                x0[n1] = cap.ic
            elif n2 is not None and n1 is None:
                x0[n2] = -cap.ic
            elif n1 is not None and n2 is not None:
                x0[n1] = x0[n2] + cap.ic
        for ind in self.circuit.inductors():
            if ind.ic != 0.0:
                x0[self.branch_index[ind.name]] = ind.ic
        return x0

    def voltage_row(self, node: str) -> int:
        """Row of ``node``'s voltage in the state vector."""
        if node == GROUND:
            raise CircuitError("ground voltage is identically zero")
        try:
            return self.node_index[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None


def build_mna(circuit: Circuit) -> MNASystem:
    """Assemble the MNA system for ``circuit``."""
    circuit.validate()
    nodes = [n for n in circuit.nodes if n != GROUND]
    node_index = {label: i for i, label in enumerate(nodes)}
    branch_names = ([e.name for e in circuit.inductors()]
                    + [e.name for e in circuit.voltage_sources()])
    branch_index = {name: len(nodes) + i for i, name in enumerate(branch_names)}
    size = len(nodes) + len(branch_names)
    G = np.zeros((size, size))
    C = np.zeros((size, size))

    def row(label: str) -> int | None:
        return node_index.get(label)

    for res in circuit.resistors():
        _stamp_conductance(G, row(res.n1), row(res.n2), res.conductance)
    for cap in circuit.capacitors():
        _stamp_conductance(C, row(cap.n1), row(cap.n2), cap.value)
    for ind in circuit.inductors():
        k = branch_index[ind.name]
        _stamp_branch(G, row(ind.n1), row(ind.n2), k)
        C[k, k] = -ind.value
    for src in circuit.voltage_sources():
        k = branch_index[src.name]
        _stamp_branch(G, row(src.pos), row(src.neg), k)
    return MNASystem(G=G, C=C, node_index=node_index,
                     branch_index=branch_index, circuit=circuit)


def _stamp_conductance(M: np.ndarray, i: int | None, j: int | None,
                       value: float) -> None:
    """Two-terminal stamp: +value on diagonals, -value off-diagonal."""
    if i is not None:
        M[i, i] += value
    if j is not None:
        M[j, j] += value
    if i is not None and j is not None:
        M[i, j] -= value
        M[j, i] -= value


def _stamp_branch(G: np.ndarray, pos: int | None, neg: int | None,
                  k: int) -> None:
    """Branch-current stamp shared by inductors and voltage sources.

    KCL rows get ±1 for the branch current; the branch row enforces
    ``v_pos - v_neg = (branch voltage)``.
    """
    if pos is not None:
        G[pos, k] += 1.0
        G[k, pos] += 1.0
    if neg is not None:
        G[neg, k] -= 1.0
        G[k, neg] -= 1.0
