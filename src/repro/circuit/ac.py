"""AC (small-signal frequency-domain) analysis.

Solves the phasor MNA system ``(G + jωC) X = U`` across a frequency
sweep — SPICE's ``.ac`` analysis. For the linear interconnect circuits
in this repo AC analysis serves as yet another independent check: the
−3 dB corner of an RC wire ties back to the same poles the transient and
moment engines see, and magnitude responses validate the two-pole fits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.mna import MNASystem, build_mna
from repro.circuit.netlist import Circuit, CircuitError
from repro.guard.incidents import NumericalIncident, fingerprint_system


@dataclass
class ACResult:
    """Phasor sweep results: ``states[:, k]`` at ``frequencies[k]`` (Hz)."""

    frequencies: np.ndarray
    states: np.ndarray
    mna: MNASystem

    def voltage(self, node: str) -> np.ndarray:
        """Complex node-voltage phasor across the sweep."""
        if node == "0":
            return np.zeros_like(self.frequencies, dtype=complex)
        return self.states[self.mna.voltage_row(node)]

    def magnitude(self, node: str) -> np.ndarray:
        return np.abs(self.voltage(node))

    def magnitude_db(self, node: str) -> np.ndarray:
        mag = self.magnitude(node)
        floor = np.finfo(float).tiny
        return 20.0 * np.log10(np.maximum(mag, floor))

    def phase(self, node: str) -> np.ndarray:
        """Phase in radians."""
        return np.angle(self.voltage(node))

    def corner_frequency(self, node: str, drop_db: float = 3.0103) -> float | None:
        """First frequency where the response falls ``drop_db`` below its
        value at the lowest swept frequency (linear interpolation in
        log-magnitude); ``None`` if the sweep never gets there."""
        db = self.magnitude_db(node)
        target = db[0] - drop_db
        below = np.nonzero(db <= target)[0]
        if below.size == 0:
            return None
        k = int(below[0])
        if k == 0:
            return float(self.frequencies[0])
        f_lo, f_hi = self.frequencies[k - 1], self.frequencies[k]
        d_lo, d_hi = db[k - 1], db[k]
        frac = (target - d_lo) / (d_hi - d_lo)
        # interpolate in log-frequency, matching the sweep's spacing
        return float(10 ** (np.log10(f_lo)
                            + frac * (np.log10(f_hi) - np.log10(f_lo))))


def ac_analysis(circuit: Circuit, f_start: float, f_stop: float,
                points_per_decade: int = 20) -> ACResult:
    """Logarithmic AC sweep from ``f_start`` to ``f_stop`` Hz.

    Source amplitudes: each independent source contributes its waveform's
    *final value* as the phasor magnitude (a unit-step source becomes the
    conventional 1 V AC stimulus). Zero-amplitude circuits are rejected —
    an AC sweep with no stimulus is always a bug.
    """
    if f_start <= 0 or f_stop <= f_start:
        raise ValueError("need 0 < f_start < f_stop")
    if points_per_decade < 1:
        raise ValueError("points_per_decade must be >= 1")
    mna = build_mna(circuit)
    u = np.zeros(mna.size)
    for source in circuit.voltage_sources():
        u[mna.branch_index[source.name]] = source.waveform.final_value()
    for source in circuit.current_sources():
        amplitude = source.waveform.final_value()
        pos = mna.node_index.get(source.pos)
        neg = mna.node_index.get(source.neg)
        if pos is not None:
            u[pos] -= amplitude
        if neg is not None:
            u[neg] += amplitude
    if not np.any(u):
        raise CircuitError("AC analysis needs at least one nonzero source")

    decades = np.log10(f_stop / f_start)
    count = max(2, int(np.ceil(decades * points_per_decade)) + 1)
    frequencies = np.logspace(np.log10(f_start), np.log10(f_stop), count)
    states = np.empty((mna.size, count), dtype=complex)
    for k, frequency in enumerate(frequencies):
        system = mna.G + 2j * np.pi * frequency * mna.C
        try:
            states[:, k] = np.linalg.solve(system, u)
        except np.linalg.LinAlgError:
            # The complex phasor system falls outside the float64
            # GuardedFactorization; fingerprint its magnitude so the
            # incident still identifies the offending circuit.
            raise NumericalIncident(
                f"singular phasor MNA system at {frequency:.6g} Hz",
                fingerprint_system(np.abs(system),
                                   context="ac-analysis")) from None
    return ACResult(frequencies=frequencies, states=states, mna=mna)
