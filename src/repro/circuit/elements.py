"""Circuit elements: the linear device library.

Every element is an immutable record naming its terminals (node labels) and
value. Terminal order matters for sources: positive source current flows
from ``pos`` through the source to ``neg``, the SPICE convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.circuit.waveform import DC, Waveform

Node = str


@dataclass(frozen=True)
class Resistor:
    """A linear resistor of ``value`` ohms between ``n1`` and ``n2``."""

    name: str
    n1: Node
    n2: Node
    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError(f"resistor {self.name}: non-positive resistance")

    @property
    def conductance(self) -> float:
        return 1.0 / self.value


@dataclass(frozen=True)
class Capacitor:
    """A linear capacitor of ``value`` farads; ``ic`` is the initial voltage."""

    name: str
    n1: Node
    n2: Node
    value: float
    ic: float = 0.0

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError(f"capacitor {self.name}: non-positive capacitance")


@dataclass(frozen=True)
class Inductor:
    """A linear inductor of ``value`` henries; ``ic`` is the initial current."""

    name: str
    n1: Node
    n2: Node
    value: float
    ic: float = 0.0

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError(f"inductor {self.name}: non-positive inductance")


@dataclass(frozen=True)
class VoltageSource:
    """An independent voltage source; ``pos`` is the + terminal."""

    name: str
    pos: Node
    neg: Node
    waveform: Union[Waveform, float] = field(default=0.0)

    def __post_init__(self) -> None:
        if isinstance(self.waveform, (int, float)):
            object.__setattr__(self, "waveform", DC(float(self.waveform)))

    def value(self, t: float) -> float:
        return self.waveform.value(t)  # type: ignore[union-attr]


@dataclass(frozen=True)
class CurrentSource:
    """An independent current source; current flows from ``pos`` to ``neg``
    through the source (i.e. it is *injected into* the ``neg`` node)."""

    name: str
    pos: Node
    neg: Node
    waveform: Union[Waveform, float] = field(default=0.0)

    def __post_init__(self) -> None:
        if isinstance(self.waveform, (int, float)):
            object.__setattr__(self, "waveform", DC(float(self.waveform)))

    def value(self, t: float) -> float:
        return self.waveform.value(t)  # type: ignore[union-attr]


Element = Union[Resistor, Capacitor, Inductor, VoltageSource, CurrentSource]
