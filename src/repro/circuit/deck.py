"""SPICE deck export/import.

The paper ran its evaluation through SPICE2. This repo's simulator is
built-in, but every circuit can also be serialized to a standard deck
(`.cir`) so the exact same netlists can be re-run under ngspice/SPICE3
where one is available — a cheap external cross-check of the built-in
engine. The parser reads back the subset of cards the exporter emits
(R/C/L/V/I with DC, PULSE, and PWL sources), enabling round-trip tests.
"""

from __future__ import annotations

import re

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.waveform import DC, PWL, Pulse, Step

_SUFFIXES = {
    "t": 1e12, "g": 1e9, "meg": 1e6, "k": 1e3, "m": 1e-3,
    "u": 1e-6, "n": 1e-9, "p": 1e-12, "f": 1e-15,
}
_NUMBER_RE = re.compile(
    r"^([+-]?\d*\.?\d+(?:[eE][+-]?\d+)?)(meg|[tgkmunpf])?[a-z]*$",
    re.IGNORECASE)


def format_value(value: float) -> str:
    """A SPICE-friendly number (scientific notation, no unit suffix)."""
    return f"{value:.12g}"


def parse_value(token: str) -> float:
    """Parse a SPICE number with optional engineering suffix (``15.3f``)."""
    match = _NUMBER_RE.match(token.strip())
    if not match:
        raise CircuitError(f"cannot parse SPICE value {token!r}")
    base = float(match.group(1))
    suffix = match.group(2)
    if suffix:
        base *= _SUFFIXES[suffix.lower()]
    return base


def deck_from_circuit(circuit: Circuit, t_stop: float | None = None,
                      t_step: float | None = None,
                      print_nodes: list[str] | None = None) -> str:
    """Serialize ``circuit`` to SPICE deck text.

    Optionally appends ``.tran`` and ``.print`` cards so the deck is
    directly runnable under ngspice.
    """
    lines = [f"* {circuit.name}"]
    for element in circuit:
        lines.append(_card(element))
    if t_stop is not None:
        step = t_step if t_step is not None else t_stop / 1000.0
        lines.append(f".tran {format_value(step)} {format_value(t_stop)}")
    if print_nodes:
        targets = " ".join(f"v({node})" for node in print_nodes)
        lines.append(f".print tran {targets}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _card(element) -> str:
    if isinstance(element, Resistor):
        return f"{element.name} {element.n1} {element.n2} {format_value(element.value)}"
    if isinstance(element, Capacitor):
        card = f"{element.name} {element.n1} {element.n2} {format_value(element.value)}"
        return card + (f" IC={format_value(element.ic)}" if element.ic else "")
    if isinstance(element, Inductor):
        card = f"{element.name} {element.n1} {element.n2} {format_value(element.value)}"
        return card + (f" IC={format_value(element.ic)}" if element.ic else "")
    if isinstance(element, (VoltageSource, CurrentSource)):
        return (f"{element.name} {element.pos} {element.neg} "
                f"{_source_spec(element.waveform)}")
    raise CircuitError(f"cannot serialize element {element!r}")


def _source_spec(waveform) -> str:
    if isinstance(waveform, DC):
        return f"DC {format_value(waveform.level)}"
    if isinstance(waveform, Step):
        # An ideal step becomes a PWL with a 1 fs ramp — indistinguishable
        # from ideal at interconnect timescales, and legal SPICE.
        rise = waveform.rise if waveform.rise > 0 else 1e-15
        t0 = waveform.delay
        points = [(0.0, waveform.v0)] if t0 > 0 else []
        points += [(t0, waveform.v0), (t0 + rise, waveform.v1)]
        body = " ".join(f"{format_value(t)} {format_value(v)}"
                        for t, v in points)
        return f"PWL({body})"
    if isinstance(waveform, Pulse):
        fields = [waveform.v0, waveform.v1, waveform.delay, waveform.rise,
                  waveform.fall, waveform.width, waveform.period]
        return "PULSE(" + " ".join(format_value(f) for f in fields) + ")"
    if isinstance(waveform, PWL):
        body = " ".join(f"{format_value(t)} {format_value(v)}"
                        for t, v in waveform.points)
        return f"PWL({body})"
    raise CircuitError(f"cannot serialize waveform {waveform!r}")


def circuit_from_deck(text: str, name: str | None = None) -> Circuit:
    """Parse a deck produced by :func:`deck_from_circuit` (or similar).

    Supports R/C/L cards with optional ``IC=``, and V/I cards with DC,
    PULSE, or PWL specs. Comment (``*``) and dot-cards other than ``.end``
    are ignored.
    """
    lines = [line.strip() for line in text.splitlines()]
    lines = [line for line in lines if line]
    title = name
    if lines and lines[0].startswith("*"):
        if title is None:
            title = lines[0].lstrip("* ").strip() or "deck"
        lines = lines[1:]
    circuit = Circuit(title or "deck")
    for line in lines:
        if line.startswith("*") or line.startswith("."):
            continue
        _parse_card(circuit, line)
    circuit.validate()
    return circuit


def _parse_card(circuit: Circuit, line: str) -> None:
    head = line[0].upper()
    tokens = line.split()
    if len(tokens) < 4:
        raise CircuitError(f"malformed card: {line!r}")
    name, n1, n2 = tokens[0], tokens[1], tokens[2]
    rest = " ".join(tokens[3:])
    if head in "RCL":
        ic = 0.0
        ic_match = re.search(r"IC\s*=\s*(\S+)", rest, re.IGNORECASE)
        if ic_match:
            ic = parse_value(ic_match.group(1))
            rest = rest[:ic_match.start()].strip()
        value = parse_value(rest.split()[0])
        if head == "R":
            circuit.add_resistor(name, n1, n2, value)
        elif head == "C":
            circuit.add_capacitor(name, n1, n2, value, ic=ic)
        else:
            circuit.add_inductor(name, n1, n2, value, ic=ic)
    elif head in "VI":
        waveform = _parse_source_spec(rest)
        if head == "V":
            circuit.add_voltage_source(name, n1, n2, waveform)
        else:
            circuit.add_current_source(name, n1, n2, waveform)
    else:
        raise CircuitError(f"unsupported card type {head!r}: {line!r}")


def _parse_source_spec(spec: str):
    spec = spec.strip()
    upper = spec.upper()
    if upper.startswith("PWL"):
        numbers = [parse_value(tok) for tok in _paren_fields(spec)]
        pairs = list(zip(numbers[0::2], numbers[1::2]))
        return PWL(pairs)
    if upper.startswith("PULSE"):
        fields = [parse_value(tok) for tok in _paren_fields(spec)]
        if len(fields) != 7:
            raise CircuitError(f"PULSE needs 7 fields, got {len(fields)}")
        return Pulse(*fields)
    if upper.startswith("DC"):
        return DC(parse_value(spec.split(None, 1)[1]))
    return DC(parse_value(spec))


def _paren_fields(spec: str) -> list[str]:
    start = spec.index("(")
    end = spec.rindex(")")
    return spec[start + 1:end].replace(",", " ").split()
