"""A from-scratch linear circuit simulator — the repo's stand-in for SPICE.

The paper evaluates every routing with SPICE2 on linear RC(L) interconnect
circuits: distributed wire resistance/capacitance/inductance, a driver
resistor at the source, and load capacitors at the sinks, driven by a step.
This package implements exactly the machinery SPICE applies to such
circuits:

* an element library (R, C, L, V/I sources with DC/step/pulse/PWL
  waveforms) and a :class:`~repro.circuit.netlist.Circuit` container;
* Modified Nodal Analysis (MNA) assembly (:mod:`repro.circuit.mna`);
* DC operating point (:mod:`repro.circuit.dcop`);
* fixed-step trapezoidal / backward-Euler transient analysis with a reused
  LU factorization (:mod:`repro.circuit.transient`);
* an exact eigendecomposition solver for pure-RC step problems
  (:mod:`repro.circuit.analytic`) — same answers, no timestep error;
* waveform measurements: threshold crossings, 50% delay, rise time
  (:mod:`repro.circuit.measure`);
* moment (AWE-style) analysis for Elmore and two-pole delay estimates
  (:mod:`repro.circuit.moments`);
* SPICE-deck export/import so decks can be re-run under a real ngspice
  (:mod:`repro.circuit.deck`).
"""

from repro.circuit.waveform import DC, PWL, Pulse, Step, Waveform
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, CircuitError, GROUND
from repro.circuit.mna import MNASystem, build_mna
from repro.circuit.dcop import dc_operating_point
from repro.circuit.transient import TransientResult, transient
from repro.circuit.analytic import AnalyticRC, ReducedRC
from repro.circuit.measure import (
    delay_to_fraction,
    rise_time,
    threshold_crossing,
)
from repro.circuit.moments import elmore_from_moments, node_moments, two_pole_delay
from repro.circuit.ac import ACResult, ac_analysis
from repro.circuit.deck import circuit_from_deck, deck_from_circuit
from repro.circuit.ngspice import NgspiceError, find_ngspice, run_deck

__all__ = [
    "ACResult",
    "AnalyticRC",
    "Capacitor",
    "Circuit",
    "CircuitError",
    "CurrentSource",
    "DC",
    "Element",
    "GROUND",
    "Inductor",
    "MNASystem",
    "NgspiceError",
    "PWL",
    "Pulse",
    "ReducedRC",
    "Resistor",
    "Step",
    "TransientResult",
    "VoltageSource",
    "Waveform",
    "ac_analysis",
    "build_mna",
    "circuit_from_deck",
    "dc_operating_point",
    "deck_from_circuit",
    "delay_to_fraction",
    "elmore_from_moments",
    "find_ngspice",
    "node_moments",
    "rise_time",
    "run_deck",
    "threshold_crossing",
    "transient",
    "two_pole_delay",
]
