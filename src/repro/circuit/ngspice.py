"""Optional external ngspice execution — a cross-check, never a dependency.

The built-in engines are validated against closed forms and each other,
but where a real ngspice binary exists this module lets any exported deck
be re-run through it and compared (`the repo's decks are standard SPICE).
Everything degrades gracefully: :func:`find_ngspice` returns ``None``
when no binary is on PATH, and the test suite skips accordingly.
"""

from __future__ import annotations

import re
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np


class NgspiceError(RuntimeError):
    """Raised when an external ngspice run fails or can't be parsed."""


@dataclass
class NgspiceResult:
    """Waveforms parsed from an ngspice batch run."""

    times: np.ndarray
    voltages: dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        try:
            return self.voltages[node.lower()]
        except KeyError:
            raise NgspiceError(
                f"node {node!r} not in ngspice output "
                f"(have {sorted(self.voltages)})") from None


def find_ngspice() -> str | None:
    """Path to an ngspice binary, or ``None`` when not installed."""
    return shutil.which("ngspice")


def run_deck(deck: str, binary: str | None = None,
             timeout: float = 60.0) -> NgspiceResult:
    """Run a deck under ngspice in batch mode and parse printed waveforms.

    The deck must contain ``.tran`` and ``.print tran v(...)`` cards (as
    produced by :func:`repro.circuit.deck.deck_from_circuit` with
    ``t_stop``/``print_nodes``).

    Raises :class:`NgspiceError` when no binary is available, the run
    fails, or no waveform table is found in the output.
    """
    executable = binary or find_ngspice()
    if executable is None:
        raise NgspiceError("no ngspice binary on PATH")
    with tempfile.TemporaryDirectory() as tmp:
        deck_path = Path(tmp) / "deck.cir"
        deck_path.write_text(deck, encoding="utf-8")
        try:
            proc = subprocess.run(
                [executable, "-b", str(deck_path)],
                capture_output=True, text=True, timeout=timeout, check=False)
        except subprocess.TimeoutExpired as exc:
            raise NgspiceError(f"ngspice timed out after {timeout}s") from exc
    if proc.returncode != 0:
        raise NgspiceError(
            f"ngspice exited with {proc.returncode}: {proc.stderr[:500]}")
    return parse_print_output(proc.stdout)


def parse_print_output(text: str) -> NgspiceResult:
    """Parse ngspice's ``.print tran`` ASCII table output.

    ngspice prints column-header blocks like::

        Index   time            v(n1)           v(n2)
        ------------------------------------------------------
        0       0.000000e+00    0.000000e+00    0.000000e+00
        1       1.000000e-12    ...

    Long runs repeat the header; rows are concatenated across blocks.
    """
    header_re = re.compile(r"^Index\s+time\s+(.*)$", re.IGNORECASE)
    columns: list[str] | None = None
    rows: dict[int, list[float]] = {}
    for line in text.splitlines():
        match = header_re.match(line.strip())
        if match:
            block_columns = [tok.strip().lower()
                             for tok in match.group(1).split()]
            if columns is None:
                columns = block_columns
            elif block_columns != columns:
                raise NgspiceError("inconsistent .print column headers")
            continue
        tokens = line.split()
        if len(tokens) >= 2 and tokens[0].isdigit() and columns is not None:
            try:
                values = [float(tok) for tok in tokens[1:2 + len(columns)]]
            except ValueError:
                continue
            if len(values) == len(columns) + 1:
                rows[int(tokens[0])] = values
    if columns is None or not rows:
        raise NgspiceError("no .print tran table found in ngspice output")
    ordered = [rows[index] for index in sorted(rows)]
    data = np.array(ordered)
    voltages = {_normalize(name): data[:, 1 + k]
                for k, name in enumerate(columns)}
    return NgspiceResult(times=data[:, 0], voltages=voltages)


def _normalize(column: str) -> str:
    match = re.fullmatch(r"v\((.+)\)", column.strip(), re.IGNORECASE)
    return match.group(1).lower() if match else column.lower()
