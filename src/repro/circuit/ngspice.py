"""Optional external ngspice execution — a cross-check, never a dependency.

The built-in engines are validated against closed forms and each other,
but where a real ngspice binary exists this module lets any exported deck
be re-run through it and compared (the repo's decks are standard SPICE).
Everything degrades gracefully: :func:`find_ngspice` returns ``None``
when no binary is on PATH, and the test suite skips accordingly.

Failure handling is explicit because an external simulator is the least
reliable component in the system: every run gets a subprocess timeout,
temp decks are cleaned up on *every* exit path (``try/finally``), and a
failed run's :class:`NgspiceError` carries the deck path — preserved on
disk when :class:`NgspiceRunner` is configured with
``keep_failed_decks=True`` — so the offending deck can be replayed.
"""

from __future__ import annotations

import re
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np


class NgspiceError(RuntimeError):
    """Raised when an external ngspice run fails or can't be parsed.

    Attributes:
        deck_path: where the offending deck lives (or lived) on disk —
            only still readable if the runner was told to keep it.
    """

    def __init__(self, message: str, deck_path: Path | None = None):
        super().__init__(message)
        self.deck_path = deck_path


@dataclass
class NgspiceResult:
    """Waveforms parsed from an ngspice batch run."""

    times: np.ndarray
    voltages: dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        try:
            return self.voltages[node.lower()]
        except KeyError:
            raise NgspiceError(
                f"node {node!r} not in ngspice output "
                f"(have {sorted(self.voltages)})") from None


def find_ngspice() -> str | None:
    """Path to an ngspice binary, or ``None`` when not installed."""
    return shutil.which("ngspice")


class NgspiceRunner:
    """Configured ngspice execution: binary, timeout, deck retention.

    Args:
        binary: explicit binary path (default: first ``ngspice`` on PATH
            at call time).
        timeout: subprocess wall-clock budget in seconds; an overrun
            kills the process and raises :class:`NgspiceError`.
        keep_failed_decks: leave the temp deck of a failed run on disk
            (its path is reported in the error) instead of deleting it.
    """

    def __init__(self, binary: str | None = None, timeout: float = 60.0,
                 keep_failed_decks: bool = False):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.binary = binary
        self.timeout = timeout
        self.keep_failed_decks = keep_failed_decks

    def run(self, deck: str) -> NgspiceResult:
        """Run a deck in batch mode and parse the printed waveforms.

        The deck must contain ``.tran`` and ``.print tran v(...)`` cards
        (as produced by :func:`repro.circuit.deck.deck_from_circuit` with
        ``t_stop``/``print_nodes``). Raises :class:`NgspiceError` when no
        binary is available, the run times out or fails, or no waveform
        table is found — never leaking the temp deck except on request.
        """
        executable = self.binary or find_ngspice()
        if executable is None:
            raise NgspiceError("no ngspice binary on PATH")
        workdir = Path(tempfile.mkdtemp(prefix="repro-ngspice-"))
        deck_path = workdir / "deck.cir"
        keep = False
        try:
            deck_path.write_text(deck, encoding="utf-8")
            try:
                proc = subprocess.run(
                    [executable, "-b", str(deck_path)],
                    capture_output=True, text=True, timeout=self.timeout,
                    check=False)
            except subprocess.TimeoutExpired as exc:
                keep = self.keep_failed_decks
                raise NgspiceError(
                    f"ngspice timed out after {self.timeout}s"
                    + self._deck_note(deck_path, keep),
                    deck_path=deck_path) from exc
            except OSError as exc:
                raise NgspiceError(
                    f"ngspice binary {executable!r} could not be run: "
                    f"{exc}") from exc
            if proc.returncode != 0:
                keep = self.keep_failed_decks
                raise NgspiceError(
                    f"ngspice exited with {proc.returncode}: "
                    f"{proc.stderr[:500]}" + self._deck_note(deck_path, keep),
                    deck_path=deck_path)
            try:
                return parse_print_output(proc.stdout)
            except NgspiceError as exc:
                keep = self.keep_failed_decks
                raise NgspiceError(
                    str(exc) + self._deck_note(deck_path, keep),
                    deck_path=deck_path) from exc
        finally:
            if not keep:
                shutil.rmtree(workdir, ignore_errors=True)

    @staticmethod
    def _deck_note(deck_path: Path, kept: bool) -> str:
        return f" (deck kept at {deck_path})" if kept else ""


def run_deck(deck: str, binary: str | None = None,
             timeout: float = 60.0) -> NgspiceResult:
    """One-shot convenience wrapper around :class:`NgspiceRunner`."""
    return NgspiceRunner(binary=binary, timeout=timeout).run(deck)


def parse_print_output(text: str) -> NgspiceResult:
    """Parse ngspice's ``.print tran`` ASCII table output.

    ngspice prints column-header blocks like::

        Index   time            v(n1)           v(n2)
        ------------------------------------------------------
        0       0.000000e+00    0.000000e+00    0.000000e+00
        1       1.000000e-12    ...

    Long runs repeat the header; rows are concatenated across blocks.
    """
    header_re = re.compile(r"^Index\s+time\s+(.*)$", re.IGNORECASE)
    columns: list[str] | None = None
    rows: dict[int, list[float]] = {}
    for line in text.splitlines():
        match = header_re.match(line.strip())
        if match:
            block_columns = [tok.strip().lower()
                             for tok in match.group(1).split()]
            if columns is None:
                columns = block_columns
            elif block_columns != columns:
                raise NgspiceError("inconsistent .print column headers")
            continue
        tokens = line.split()
        if len(tokens) >= 2 and tokens[0].isdigit() and columns is not None:
            try:
                values = [float(tok) for tok in tokens[1:2 + len(columns)]]
            except ValueError:  # repro: allow=contracts-broad-catch-swallow — a non-numeric line is banner text, not data; the no-table NgspiceError below catches a wholly unparseable output
                continue
            if len(values) == len(columns) + 1:
                rows[int(tokens[0])] = values
    if columns is None or not rows:
        raise NgspiceError("no .print tran table found in ngspice output")
    ordered = [rows[index] for index in sorted(rows)]
    data = np.array(ordered)
    voltages = {_normalize(name): data[:, 1 + k]
                for k, name in enumerate(columns)}
    return NgspiceResult(times=data[:, 0], voltages=voltages)


def _normalize(column: str) -> str:
    match = re.fullmatch(r"v\((.+)\)", column.strip(), re.IGNORECASE)
    return match.group(1).lower() if match else column.lower()
