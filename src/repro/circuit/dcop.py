"""DC operating point.

At DC, capacitors are open circuits and inductors are shorts — exactly
what the MNA system expresses when the ``C`` matrix term is dropped:
``G · x = u(t₀)``. Floating capacitor-only nodes would make ``G``
singular, so (like SPICE's GMIN) a tiny conductance to ground regularizes
every node row.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.mna import MNASystem, build_mna
from repro.circuit.netlist import Circuit
from repro.guard.numerics import guarded_solve

#: Regularization conductance added to every node row (SPICE's GMIN default).
GMIN = 1e-12


def dc_operating_point(circuit: Circuit, t: float = 0.0,
                       gmin: float = GMIN) -> dict[str, float]:
    """Node voltages of the DC solution with sources held at ``u(t)``.

    Returns a node-label → voltage map (ground included, at 0 V).
    """
    mna = build_mna(circuit)
    x = solve_dc(mna, t=t, gmin=gmin)
    voltages = {"0": 0.0}
    for node, row in mna.node_index.items():
        voltages[node] = float(x[row])
    return voltages


def solve_dc(mna: MNASystem, t: float = 0.0, gmin: float = GMIN) -> np.ndarray:
    """The raw DC state vector (node voltages + branch currents).

    The MNA matrix is indefinite (voltage-source branch rows), so this is
    a conditioned LU solve: a floating subcircuit GMIN cannot rescue
    raises :class:`~repro.guard.incidents.NumericalIncident` instead of
    propagating ``LinAlgError``.
    """
    G = mna.G.copy()
    for row in mna.node_index.values():
        G[row, row] += gmin
    return guarded_solve(G, mna.rhs(t), spd=False,
                         context=f"dc-operating-point[n={mna.size}]")
