"""The ``Circuit`` container: a named collection of elements over labeled nodes.

Nodes are arbitrary string labels; ``"0"`` (also exported as ``GROUND``) is
the reference node, exactly as in SPICE. Elements may be added through the
typed ``add_*`` helpers, which enforce unique names and create nodes
implicitly.
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.waveform import Waveform

GROUND = "0"


class CircuitError(ValueError):
    """Raised for malformed circuits (duplicate names, missing ground, ...)."""


class Circuit:
    """A mutable netlist of linear elements.

    Example::

        ckt = Circuit("rc")
        ckt.add_voltage_source("vin", "in", GROUND, Step())
        ckt.add_resistor("r1", "in", "out", 1e3)
        ckt.add_capacitor("c1", "out", GROUND, 1e-12)
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._elements: dict[str, Element] = {}
        self._nodes: set[str] = {GROUND}

    # ----------------------------------------------------------------- access

    @property
    def elements(self) -> list[Element]:
        return list(self._elements.values())

    def element(self, name: str) -> Element:
        try:
            return self._elements[name]
        except KeyError:
            raise CircuitError(f"no element named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    @property
    def nodes(self) -> list[str]:
        """All node labels, ground first, the rest sorted."""
        return [GROUND] + sorted(self._nodes - {GROUND})

    def resistors(self) -> list[Resistor]:
        return [e for e in self if isinstance(e, Resistor)]

    def capacitors(self) -> list[Capacitor]:
        return [e for e in self if isinstance(e, Capacitor)]

    def inductors(self) -> list[Inductor]:
        return [e for e in self if isinstance(e, Inductor)]

    def voltage_sources(self) -> list[VoltageSource]:
        return [e for e in self if isinstance(e, VoltageSource)]

    def current_sources(self) -> list[CurrentSource]:
        return [e for e in self if isinstance(e, CurrentSource)]

    # -------------------------------------------------------------- mutation

    def add(self, element: Element) -> Element:
        """Add a pre-built element; names must be unique."""
        if element.name in self._elements:
            raise CircuitError(f"duplicate element name {element.name!r}")
        for node in _terminals(element):
            self._nodes.add(node)
        self._elements[element.name] = element
        return element

    def add_resistor(self, name: str, n1: str, n2: str, ohms: float) -> Resistor:
        element = Resistor(name, n1, n2, ohms)
        self.add(element)
        return element

    def add_capacitor(self, name: str, n1: str, n2: str, farads: float,
                      ic: float = 0.0) -> Capacitor:
        element = Capacitor(name, n1, n2, farads, ic)
        self.add(element)
        return element

    def add_inductor(self, name: str, n1: str, n2: str, henries: float,
                     ic: float = 0.0) -> Inductor:
        element = Inductor(name, n1, n2, henries, ic)
        self.add(element)
        return element

    def add_voltage_source(self, name: str, pos: str, neg: str,
                           waveform: Union[Waveform, float]) -> VoltageSource:
        element = VoltageSource(name, pos, neg, waveform)
        self.add(element)
        return element

    def add_current_source(self, name: str, pos: str, neg: str,
                           waveform: Union[Waveform, float]) -> CurrentSource:
        element = CurrentSource(name, pos, neg, waveform)
        self.add(element)
        return element

    # ------------------------------------------------------------ validation

    def validate(self) -> None:
        """Check the circuit is simulatable.

        Requirements: at least one element, every element touches an
        existing node (guaranteed by construction), and some element
        references ground so the nodal equations have a reference.
        """
        if not self._elements:
            raise CircuitError(f"circuit {self.name!r} has no elements")
        touches_ground = any(GROUND in _terminals(e) for e in self)
        if not touches_ground:
            raise CircuitError(
                f"circuit {self.name!r} has no connection to ground ({GROUND!r})")

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, {len(self._elements)} elements, "
                f"{len(self._nodes)} nodes)")


def _terminals(element: Element) -> tuple[str, str]:
    if isinstance(element, (Resistor, Capacitor, Inductor)):
        return (element.n1, element.n2)
    return (element.pos, element.neg)
