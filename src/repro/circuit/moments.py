"""Moment (AWE-style) analysis of step responses.

For a step input, the Laplace-domain state is
``X(s) = (G + sC)⁻¹ · u∞ / s = (m₀ + m₁ s + m₂ s² + …) / s`` with::

    m₀ = G⁻¹ u∞          (the DC solution)
    mₖ₊₁ = −G⁻¹ C mₖ     (one back-substitution per extra moment)

The normalized first moment ``−m₁/m₀`` is the Elmore delay; matching two
moments to a two-pole model gives the classic AWE "two-pole" delay
estimate, markedly closer to SPICE than Elmore on far-from-critically-
damped nets. Used by the ``two-pole`` delay model and the oracle ablation.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.linalg import lu_factor, lu_solve
from scipy.optimize import brentq

from repro.circuit.dcop import GMIN
from repro.circuit.mna import build_mna
from repro.circuit.netlist import Circuit


def node_moments(circuit: Circuit, count: int = 3,
                 gmin: float = GMIN) -> dict[str, np.ndarray]:
    """The first ``count`` step-response moments at every node.

    Sources are held at their *final* values (a step's asymptote), so
    ``m₀`` is the settled solution. Returns node → array of ``count``
    moments.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    mna = build_mna(circuit)
    G = mna.G.copy()
    for row in mna.node_index.values():
        G[row, row] += gmin
    lu = lu_factor(G)
    u_final = np.zeros(mna.size)
    for source in circuit.voltage_sources():
        u_final[mna.branch_index[source.name]] = source.waveform.final_value()
    for source in circuit.current_sources():
        current = source.waveform.final_value()
        pos = mna.node_index.get(source.pos)
        neg = mna.node_index.get(source.neg)
        if pos is not None:
            u_final[pos] -= current
        if neg is not None:
            u_final[neg] += current
    moments = np.empty((count, mna.size))
    moments[0] = lu_solve(lu, u_final)
    for k in range(1, count):
        moments[k] = lu_solve(lu, -(mna.C @ moments[k - 1]))
    return {node: moments[:, row].copy()
            for node, row in mna.node_index.items()}


def elmore_from_moments(moments: np.ndarray) -> float:
    """Elmore delay ``−m₁/m₀`` from a node's moment vector."""
    m = np.asarray(moments, dtype=float)
    if m.size < 2:
        raise ValueError("need at least two moments for Elmore delay")
    if m[0] == 0:
        raise ValueError("m0 is zero: node has no DC response")
    return float(-m[1] / m[0])


def two_pole_delay(moments: np.ndarray, fraction: float = 0.5) -> float:
    """Threshold-crossing delay of the two-pole (Padé [0/2]) model.

    Matches ``H(s) ≈ 1 / (1 + a₁s + a₂s²)`` to the node's normalized
    moments; the model step response is a sum of two real exponentials
    whose ``fraction`` crossing is solved exactly. Falls back to the
    single-pole estimate ``τ ln(1/(1−f))`` with ``τ`` = Elmore delay when
    the two-pole fit is unstable or complex (both poles must be real
    negative for a passive RC response).
    """
    if not 0 < fraction < 1:
        raise ValueError("fraction must lie strictly between 0 and 1")
    m = np.asarray(moments, dtype=float)
    if m.size < 3:
        raise ValueError("need at least three moments for a two-pole fit")
    mu1 = m[1] / m[0]
    mu2 = m[2] / m[0]
    elmore = -mu1
    single_pole = elmore * math.log(1.0 / (1.0 - fraction))
    a1 = -mu1
    a2 = mu1 * mu1 - mu2
    if a2 <= 0:
        return single_pole
    disc = a1 * a1 - 4.0 * a2
    if disc <= 0:
        return single_pole
    sqrt_disc = math.sqrt(disc)
    p1 = (-a1 + sqrt_disc) / (2.0 * a2)
    p2 = (-a1 - sqrt_disc) / (2.0 * a2)
    if p1 >= 0 or p2 >= 0:
        return single_pole
    k1 = 1.0 / (a2 * p1 * (p1 - p2))
    k2 = 1.0 / (a2 * p2 * (p2 - p1))
    return _crossing(p1, p2, k1, k2, fraction)


def _crossing(p1: float, p2: float, k1: float, k2: float,
              fraction: float) -> float:
    """First upward crossing of the two-exponential step response."""

    def value(t: float) -> float:
        return 1.0 + k1 * math.exp(p1 * t) + k2 * math.exp(p2 * t)

    slowest = 1.0 / min(abs(p1), abs(p2))
    horizon = 4.0 * slowest
    for _ in range(60):
        grid = np.linspace(0.0, horizon, 257)
        samples = 1.0 + k1 * np.exp(p1 * grid) + k2 * np.exp(p2 * grid)
        above = np.nonzero(samples >= fraction)[0]
        if above.size:
            k = int(above[0])
            if k == 0:
                return 0.0
            return float(brentq(lambda t: value(t) - fraction,
                                grid[k - 1], grid[k]))
        horizon *= 2.0
    raise RuntimeError("two-pole response never reaches the threshold")
