"""Waveform measurements: threshold crossings, delay, rise time.

These mirror SPICE ``.measure`` statements. All crossing times use linear
interpolation between samples, so accuracy is better than the raw timestep.
"""

from __future__ import annotations

import numpy as np


def threshold_crossing(times: np.ndarray, values: np.ndarray,
                       threshold: float, rising: bool = True) -> float | None:
    """First time ``values`` crosses ``threshold`` in the given direction.

    Returns ``None`` when the waveform never crosses. A sample exactly at
    the threshold counts as a crossing.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape:
        raise ValueError("times and values must have the same shape")
    if times.size == 0:
        return None
    above = values >= threshold if rising else values <= threshold
    if above[0]:
        return float(times[0])
    hits = np.nonzero(above)[0]
    if hits.size == 0:
        return None
    k = int(hits[0])
    v0, v1 = values[k - 1], values[k]
    if v1 == v0:
        return float(times[k])
    frac = (threshold - v0) / (v1 - v0)
    return float(times[k - 1] + frac * (times[k] - times[k - 1]))


def delay_to_fraction(times: np.ndarray, values: np.ndarray,
                      final_value: float, fraction: float = 0.5) -> float | None:
    """Time for a rising step response to reach ``fraction`` of its final value.

    The paper's SPICE delays are 50% crossings of a unit step response, the
    default here.
    """
    if final_value == 0:
        raise ValueError("final_value must be nonzero")
    if not 0 < fraction < 1:
        raise ValueError("fraction must lie strictly between 0 and 1")
    return threshold_crossing(times, values, fraction * final_value,
                              rising=final_value > 0)


def rise_time(times: np.ndarray, values: np.ndarray, final_value: float,
              low: float = 0.1, high: float = 0.9) -> float | None:
    """10–90% (by default) rise time of a step response, or ``None``."""
    if not 0 <= low < high <= 1:
        raise ValueError("need 0 <= low < high <= 1")
    t_low = delay_to_fraction(times, values, final_value, low)
    t_high = delay_to_fraction(times, values, final_value, high)
    if t_low is None or t_high is None:
        return None
    return t_high - t_low
