"""Exact step responses for pure-RC circuits via eigendecomposition.

A grounded-capacitor RC network driven by a step has state equations::

    C · dv/dt + G · v = b          (C diagonal positive, G SPD)

Substituting ``y = C^{1/2} v`` symmetrizes the system, so one symmetric
eigendecomposition yields the *exact* solution

    v(t) = v∞ + C^{-1/2} Q · exp(-Λ t) · Qᵀ C^{1/2} (v0 − v∞)

with no timestep error at all. This is the engine behind the repo's
"SPICE" delay oracle for RC interconnect (the general MNA transient in
:mod:`repro.circuit.transient` covers inductance and arbitrary waveforms,
and the two are cross-validated in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import eigh

from repro.guard.incidents import NumericalIncident, fingerprint_system
from repro.guard.numerics import GuardedFactorization

#: Hard cap on bracket expansion when hunting for a threshold crossing.
_MAX_BRACKET_DOUBLINGS = 60


@dataclass
class ReducedRC:
    """A reduced (ground-referenced, source-eliminated) RC system.

    Attributes:
        G: (n, n) symmetric positive-definite conductance matrix. Wire
            conductances form a graph Laplacian; the driver conductance on
            the source row makes it non-singular.
        c: (n,) positive node capacitances to ground.
        b: (n,) excitation for a *unit* step input (``g_driver`` on the
            source row, zero elsewhere).
        labels: external node identifiers, one per row.
    """

    G: np.ndarray
    c: np.ndarray
    b: np.ndarray
    labels: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.G = np.asarray(self.G, dtype=float)
        self.c = np.asarray(self.c, dtype=float)
        self.b = np.asarray(self.b, dtype=float)
        n = self.G.shape[0]
        if self.G.shape != (n, n):
            raise ValueError("G must be square")
        if self.c.shape != (n,) or self.b.shape != (n,):
            raise ValueError("c and b must match G's dimension")
        if np.any(self.c <= 0):
            raise ValueError("every node needs positive capacitance "
                             "(wire or sink load) for the RC state space")
        if not self.labels:
            self.labels = list(range(n))
        if len(self.labels) != n:
            raise ValueError("labels must have one entry per row")
        self._row_of = {label: i for i, label in enumerate(self.labels)}

    @property
    def size(self) -> int:
        return self.G.shape[0]

    def row(self, label) -> int:
        try:
            return self._row_of[label]
        except KeyError:
            raise KeyError(f"unknown node label {label!r}") from None

    def _factored(self) -> GuardedFactorization:
        """Conditioned Cholesky factorization of G, shared by all solves."""
        factorization = getattr(self, "_factorization", None)
        if factorization is None:
            factorization = GuardedFactorization(
                self.G, spd=True, context=f"reduced-rc[n={self.size}]")
            self._factorization = factorization
        return factorization

    def final_voltages(self) -> np.ndarray:
        """DC asymptote ``v∞ = G⁻¹ b`` (all ones for a lossless-to-DC net)."""
        return self._factored().solve(self.b)

    def elmore(self) -> np.ndarray:
        """First-moment (Elmore) delays, exact for arbitrary RC graphs.

        ``T = ∫ (v∞ − v(t)) dt = G⁻¹ C (v∞ − v0)`` with ``v0 = 0``. On tree
        topologies this equals the classic O(k) Elmore formula; on graphs
        it is the Chan–Karplus generalization, obtained here by a single
        linear solve (conditioned — a pathological RC system raises a
        structured NumericalIncident instead of returning noise).
        """
        factorization = self._factored()
        v_inf = factorization.solve(self.b)
        return factorization.solve(self.c * v_inf)


class AnalyticRC:
    """The exact step response of a :class:`ReducedRC` system."""

    def __init__(self, system: ReducedRC):
        self.system = system
        sqrt_c = np.sqrt(system.c)
        A = system.G / np.outer(sqrt_c, sqrt_c)
        try:
            eigenvalues, Q = eigh(A)
        except np.linalg.LinAlgError:
            raise NumericalIncident(
                "symmetrized RC system eigendecomposition failed to "
                "converge",
                fingerprint_system(A, context="analytic-rc")) from None
        if eigenvalues[0] <= 0:
            raise ValueError("RC system is not strictly stable; "
                             "is the driver conductance present?")
        self._lam = eigenvalues
        self._modes = Q / sqrt_c[:, None]          # C^{-1/2} Q, rows = nodes
        self.v_inf = system.final_voltages()
        v0 = np.zeros(system.size)
        self._coeffs = Q.T @ (sqrt_c * (v0 - self.v_inf))
        self._slowest = 1.0 / eigenvalues[0]

    @property
    def time_constants(self) -> np.ndarray:
        """Natural time constants ``1/λ``, slowest first."""
        return 1.0 / self._lam

    def voltages(self, t: float) -> np.ndarray:
        """All node voltages at time ``t`` (t < 0 treated as 0)."""
        decay = np.exp(-self._lam * max(t, 0.0))
        return self.v_inf + self._modes @ (decay * self._coeffs)

    def voltage(self, label, times) -> np.ndarray | float:
        """Voltage waveform at node ``label`` for scalar or array ``times``."""
        row = self.system.row(label)
        t = np.asarray(times, dtype=float)
        decay = np.exp(-np.outer(np.maximum(t, 0.0), self._lam))
        values = self.v_inf[row] + decay @ (self._coeffs * self._modes[row])
        return float(values) if np.isscalar(times) else values

    def crossing_time(self, label, threshold: float) -> float:
        """First time node ``label`` rises to ``threshold`` volts (exact)."""
        return float(self.crossing_times([label], np.array([threshold]))[0])

    def crossing_times(self, labels, thresholds) -> np.ndarray:
        """First upward crossing times for several nodes at once.

        Brackets every node's first crossing on a shared refining grid
        (one matrix product per refinement), then polishes all nodes
        simultaneously with vectorized bisection on the analytic
        waveforms. This batched path is what makes circuit-level delay
        cheap enough to sit inside LDRG's greedy loop.
        """
        rows = np.array([self.system.row(label) for label in labels])
        thresholds = np.asarray(thresholds, dtype=float)
        if thresholds.shape != rows.shape:
            raise ValueError("one threshold per label required")
        settle = self.v_inf[rows]
        too_low = settle < thresholds
        if np.any(too_low):
            bad = [labels[i] for i in np.nonzero(too_low)[0]]
            raise ValueError(
                f"nodes {bad} settle below their thresholds and never cross")

        # weights[:, j]: modal expansion of node j's transient term.
        weights = self._coeffs[:, None] * self._modes[rows].T

        t_lo = np.zeros(rows.size)
        t_hi = np.full(rows.size, np.nan)
        horizon = 4.0 * self._slowest
        for _ in range(_MAX_BRACKET_DOUBLINGS):
            grid = np.linspace(0.0, horizon, 257)
            decay = np.exp(-np.outer(grid, self._lam))
            samples = settle[None, :] + decay @ weights
            above = samples >= thresholds[None, :]
            unresolved = np.isnan(t_hi)
            for j in np.nonzero(unresolved)[0]:
                hits = np.nonzero(above[:, j])[0]
                if hits.size:
                    k = int(hits[0])
                    t_hi[j] = grid[k]
                    t_lo[j] = grid[k - 1] if k > 0 else 0.0
            if not np.any(np.isnan(t_hi)):
                break
            horizon *= 2.0
        else:
            missing = [labels[i] for i in np.nonzero(np.isnan(t_hi))[0]]
            raise RuntimeError(
                f"no crossing found for nodes {missing} within {horizon:.3g} s")

        # Vectorized bisection: each iteration evaluates every node's
        # waveform at its own midpoint via one (modes × nodes) product.
        for _ in range(64):
            mid = 0.5 * (t_lo + t_hi)
            decay = np.exp(-self._lam[:, None] * mid[None, :])
            values = settle + np.einsum("mj,mj->j", decay, weights)
            below = values < thresholds
            t_lo = np.where(below, mid, t_lo)
            t_hi = np.where(below, t_hi, mid)
        return 0.5 * (t_lo + t_hi)

    def elmore(self) -> np.ndarray:
        """Exact first-moment delays (delegates to the reduced system)."""
        return self.system.elmore()
