"""Fixed-step transient analysis: trapezoidal and backward-Euler integration.

For the linear system ``C·ẋ + G·x = u(t)`` a fixed timestep turns each
integration step into a linear solve with a *constant* matrix, so the LU
factorization is computed once and reused across all steps — the same
strategy SPICE uses for linear circuits with a fixed step.

Trapezoidal (SPICE's default, A-stable, 2nd order)::

    (C/h + G/2) x₊ = (C/h − G/2) x + (u₊ + u)/2

Backward Euler (L-stable, 1st order, damps everything)::

    (C/h + G) x₊ = (C/h) x + u₊

The trapezoidal method takes its *first* step with backward Euler, as
SPICE does: MNA rows without storage terms (voltage-source constraints,
purely resistive nodes) are algebraic, and trapezoidal is only marginally
stable on them — an initial state inconsistent with ``u(0)`` (e.g. the
zero state under an already-high step) would otherwise ring undamped
forever. One L-stable step kills the inconsistency at O(h²) total cost,
preserving the method's 2nd-order convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from repro.guard.numerics import GuardedFactorization

from repro.circuit.mna import MNASystem, build_mna
from repro.circuit.netlist import Circuit, CircuitError

_METHODS = ("trapezoidal", "backward-euler")


@dataclass
class TransientResult:
    """Simulated waveforms: ``states[:, k]`` is the state at ``times[k]``."""

    times: np.ndarray
    states: np.ndarray
    mna: MNASystem
    method: str

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform at ``node`` (ground returns zeros)."""
        if node == "0":
            return np.zeros_like(self.times)
        return self.states[self.mna.voltage_row(node)]

    def branch_current(self, name: str) -> np.ndarray:
        """Branch-current waveform of inductor/voltage-source ``name``."""
        try:
            row = self.mna.branch_index[name]
        except KeyError:
            raise CircuitError(f"no branch current for element {name!r}") from None
        return self.states[row]

    def final_voltages(self) -> dict[str, float]:
        """Node voltages at the last timepoint."""
        return {node: float(self.states[row, -1])
                for node, row in self.mna.node_index.items()}


def transient(circuit: Circuit, t_stop: float, num_steps: int = 1000,
              method: str = "trapezoidal",
              x0: np.ndarray | None = None) -> TransientResult:
    """Simulate ``circuit`` from 0 to ``t_stop`` with a fixed step.

    Args:
        circuit: the netlist to simulate.
        t_stop: end time in seconds (must be positive).
        num_steps: number of integration steps (≥ 1); the result has
            ``num_steps + 1`` timepoints including t = 0.
        method: ``"trapezoidal"`` (default) or ``"backward-euler"``.
        x0: optional initial state; defaults to the circuit's declared
            initial conditions (zero for quiescent interconnect).
    """
    if t_stop <= 0:
        raise ValueError("t_stop must be positive")
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {_METHODS}")
    mna = build_mna(circuit)
    h = t_stop / num_steps
    times = np.linspace(0.0, t_stop, num_steps + 1)
    states = np.empty((mna.size, num_steps + 1))
    x = mna.initial_state() if x0 is None else np.asarray(x0, dtype=float).copy()
    if x.shape != (mna.size,):
        raise ValueError(f"x0 has shape {x.shape}, expected ({mna.size},)")
    states[:, 0] = x

    C_h = mna.C / h
    # Conditioned LU factorizations: a singular integration matrix (bad
    # step size, degenerate netlist) surfaces as a NumericalIncident with
    # the system's fingerprint, not a LinAlgError mid-sweep.
    fact_be = GuardedFactorization(
        C_h + mna.G, spd=False, context=f"transient-be[n={mna.size},h={h:g}]")
    if method == "trapezoidal":
        fact_trap = GuardedFactorization(
            C_h + mna.G / 2.0, spd=False,
            context=f"transient-trap[n={mna.size},h={h:g}]")
        rhs_trap = C_h - mna.G / 2.0
    u_prev = mna.rhs(times[0])
    for k in range(1, num_steps + 1):
        u_next = mna.rhs(times[k])
        if method == "trapezoidal" and k > 1:
            x = fact_trap.solve(rhs_trap @ x + 0.5 * (u_next + u_prev))
        else:
            # Backward Euler: every step of the BE method, and the damped
            # startup step of the trapezoidal method.
            x = fact_be.solve(C_h @ x + u_next)
        states[:, k] = x
        u_prev = u_next
    return TransientResult(times=times, states=states, mna=mna, method=method)
