"""Source waveforms: DC, ideal/ramped step, SPICE-style pulse, and PWL.

A waveform maps time (seconds) to a value (volts or amps). Sources hold a
waveform; the MNA right-hand side samples it at each timepoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np


@runtime_checkable
class Waveform(Protocol):
    """Anything with ``value(t)`` and ``final_value()`` is a waveform."""

    def value(self, t: float) -> float:
        """Waveform value at time ``t`` (t < 0 is clamped to t = 0)."""
        ...

    def final_value(self) -> float:
        """The t → ∞ asymptote, used for DC/steady-state reasoning."""
        ...


@dataclass(frozen=True)
class DC:
    """A constant source."""

    level: float = 0.0

    def value(self, t: float) -> float:
        return self.level

    def final_value(self) -> float:
        return self.level


@dataclass(frozen=True)
class Step:
    """A step from ``v0`` to ``v1`` at ``delay``, with optional linear rise.

    ``rise = 0`` gives the ideal step the paper's decks use. A nonzero rise
    makes the transition a linear ramp of that duration, which is what a
    SPICE PULSE source with a finite rise time does.

    The step is *right-continuous*: ``value(delay) == v1``. With the
    default ``delay = 0`` this makes a transient from ``x(0) = 0`` the
    textbook zero-state step response, and keeps the trapezoidal
    integrator at its full 2nd-order accuracy (a left-continuous step
    would smear the discontinuity across the first timestep).
    """

    v0: float = 0.0
    v1: float = 1.0
    delay: float = 0.0
    rise: float = 0.0

    def __post_init__(self) -> None:
        if self.rise < 0 or self.delay < 0:
            raise ValueError("step delay and rise must be non-negative")

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.v0
        if self.rise > 0 and t < self.delay + self.rise:
            frac = (t - self.delay) / self.rise
            return self.v0 + frac * (self.v1 - self.v0)
        return self.v1

    def final_value(self) -> float:
        return self.v1


@dataclass(frozen=True)
class Pulse:
    """A SPICE-style periodic pulse: PULSE(v0 v1 td tr tf pw per)."""

    v0: float
    v1: float
    delay: float
    rise: float
    fall: float
    width: float
    period: float

    def __post_init__(self) -> None:
        if min(self.rise, self.fall, self.width, self.period) < 0:
            raise ValueError("pulse timing parameters must be non-negative")
        if self.period > 0 and self.period < self.rise + self.fall + self.width:
            raise ValueError("pulse period shorter than one full pulse")

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.v0
        local = t - self.delay
        if self.period > 0:
            local = local % self.period
            # Floating-point modulo can land a cycle boundary at
            # period−ulp instead of 0, shifting the edge by one sample
            # in some cycles but not others; snap it.
            if self.period - local < 1e-9 * self.period:
                local = 0.0
        if local < self.rise:
            return self.v0 + (self.v1 - self.v0) * (local / self.rise if self.rise else 1.0)
        local -= self.rise
        if local < self.width:
            return self.v1
        local -= self.width
        if local < self.fall:
            return self.v1 + (self.v0 - self.v1) * (local / self.fall if self.fall else 1.0)
        return self.v0

    def final_value(self) -> float:
        # A periodic pulse has no DC asymptote; SPICE treats its DC value
        # as v0, and so do we (used only for operating-point seeding).
        return self.v0


class PWL:
    """A piece-wise-linear waveform through ``(time, value)`` breakpoints."""

    def __init__(self, points: Sequence[tuple[float, float]]):
        if len(points) < 1:
            raise ValueError("PWL needs at least one breakpoint")
        times = [t for t, _ in points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("PWL breakpoints must be strictly increasing in time")
        self._times = np.array(times, dtype=float)
        self._values = np.array([v for _, v in points], dtype=float)

    def value(self, t: float) -> float:
        return float(np.interp(t, self._times, self._values))

    def final_value(self) -> float:
        return float(self._values[-1])

    @property
    def points(self) -> list[tuple[float, float]]:
        return [(float(t), float(v))
                for t, v in zip(self._times, self._values)]

    def __repr__(self) -> str:
        return f"PWL({self.points})"
