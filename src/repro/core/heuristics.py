"""H1, H2, H3 — the fixed-rule shortcut heuristics (Section 3).

Each starts from the MST and connects the source ``n0`` to one chosen pin:

* **H1** — the pin with the longest *SPICE* delay. One simulation per
  iteration; the new edge is kept only if the evaluated delay actually
  improves (this is what makes H1's all-cases delay ratio ≤ 1 in Table 4),
  and the step may be iterated.
* **H2** — the pin with the longest *Elmore* delay. No simulation at all;
  the edge is added unconditionally (Table 5 shows all-cases ratios above
  1 for small nets, exactly because there is no verification step). Not
  iterable: the paper notes Elmore delay is only defined on trees.
* **H3** — the pin maximizing ``pathlength × Elmore / length-of-new-edge``,
  a cost-aware refinement of H2. Also unconditional and not iterable.

All three report final numbers under the evaluation model (SPICE by
default) regardless of the selection rule.
"""

from __future__ import annotations

from repro.core.result import IterationRecord, RoutingResult, WIN_TOLERANCE
from repro.delay.elmore_tree import elmore_delays
from repro.delay.incremental import memoize_model
from repro.delay.models import DelayModel, get_delay_model
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.paths import dijkstra_lengths
from repro.graph.routing_graph import RoutingGraph
from repro.graph.validation import check_spanning


def h1(net: Net, tech: Technology,
       max_iterations: int | None = None,
       delay_model: str | DelayModel = "spice") -> RoutingResult:
    """Heuristic H1: connect the source to the longest-SPICE-delay pin.

    Iterates until the added edge no longer improves the evaluated delay
    (the paper observes ~2 iterations on average). ``max_iterations``
    caps the number of *kept* edges, for the Table 4 iteration rows.
    """
    model = memoize_model(get_delay_model(delay_model, tech))
    graph = prim_mst(net)
    check_spanning(graph)
    base_delays = model.delays(graph)
    base_delay = max(base_delays.values())
    base_cost = graph.cost()
    history: list[IterationRecord] = []
    budget = max_iterations if max_iterations is not None else float("inf")

    current_delays = base_delays
    current_delay = base_delay
    while len(history) < budget:
        target = _longest_delay_sink(graph, current_delays)
        if target is None:
            break
        trial = graph.with_edge(graph.source, target)
        trial_delays = model.delays(trial)
        trial_delay = max(trial_delays.values())
        if trial_delay >= current_delay * (1.0 - WIN_TOLERANCE):
            break
        graph = trial
        current_delays = trial_delays
        current_delay = trial_delay
        history.append(IterationRecord(
            edge=(graph.source, target), delay=current_delay,
            cost=graph.cost()))

    return RoutingResult(
        graph=graph, delay=current_delay, cost=graph.cost(),
        delays=current_delays, base_delay=base_delay, base_cost=base_cost,
        algorithm="h1", model=model.name, history=history)


def h2(net: Net, tech: Technology,
       evaluation_model: str | DelayModel = "spice") -> RoutingResult:
    """Heuristic H2: connect the source to the longest-Elmore-delay pin.

    Selection needs no simulation; the edge is added unconditionally.
    """
    graph = prim_mst(net)
    elmore = elmore_delays(graph, tech)
    scores = {sink: elmore[sink] for sink in graph.sink_indices()}
    return _one_shot(graph, tech, scores, "h2", evaluation_model)


def h3(net: Net, tech: Technology,
       evaluation_model: str | DelayModel = "spice") -> RoutingResult:
    """Heuristic H3: maximize ``pathlength × Elmore / new-edge-length``.

    The score prefers pins that are electrically slow *and* far along the
    tree yet geometrically close to the source — exactly the pins where a
    shortcut wire buys the most resistance reduction per unit of added
    capacitance. Unconditional, like H2.
    """
    graph = prim_mst(net)
    elmore = elmore_delays(graph, tech)
    pathlength = dijkstra_lengths(graph)
    scores: dict[int, float] = {}
    for sink in graph.sink_indices():
        new_edge = graph.distance(graph.source, sink)
        if new_edge <= 0:
            continue
        scores[sink] = pathlength[sink] * elmore[sink] / new_edge
    return _one_shot(graph, tech, scores, "h3", evaluation_model)


def _longest_delay_sink(graph: RoutingGraph,
                        delays: dict[int, float]) -> int | None:
    """The not-yet-shortcut sink with the largest delay, if any."""
    for sink in sorted(delays, key=delays.get, reverse=True):
        if not graph.has_edge(graph.source, sink):
            return sink
    return None


def _one_shot(graph: RoutingGraph, tech: Technology,
              scores: dict[int, float], algorithm: str,
              evaluation_model: str | DelayModel) -> RoutingResult:
    """Add the single best-scoring source shortcut and evaluate."""
    check_spanning(graph)
    # Memoized: H2 and H3 on the same net share the MST baseline
    # evaluation, so a Table 5 sweep pays for it once.
    evaluate = memoize_model(get_delay_model(evaluation_model, tech))
    base_delays = evaluate.delays(graph)
    base_delay = max(base_delays.values())
    base_cost = graph.cost()
    candidates = {sink: score for sink, score in scores.items()
                  if not graph.has_edge(graph.source, sink)}
    history: list[IterationRecord] = []
    if candidates:
        target = max(candidates, key=candidates.get)
        graph = graph.with_edge(graph.source, target)
        final_delays = evaluate.delays(graph)
        history.append(IterationRecord(
            edge=(graph.source, target),
            delay=max(final_delays.values()), cost=graph.cost()))
    else:
        final_delays = base_delays
    return RoutingResult(
        graph=graph, delay=max(final_delays.values()), cost=graph.cost(),
        delays=final_delays, base_delay=base_delay, base_cost=base_cost,
        algorithm=algorithm, model=evaluate.name, history=history)
