"""WSORG — wire-sized optimal routing graphs (Section 5.2).

The paper observes that two parallel width-``w`` wires are equivalent to
one width-``2w`` wire, so the edges LDRG adds can be read as local wire
widening, and generalizes the ORG problem with an edge width function
``w : E → ℝ`` (discrete widths in practice, since layout uses a grid).

This module implements the natural greedy: starting from unit widths,
repeatedly apply the single (edge, next-width) upgrade that most reduces
delay, until no upgrade helps. Width affects the electrical model through
:meth:`Technology.resistance_per_um` (∝ 1/w) and
:meth:`Technology.capacitance_per_um` (area + fringe), so widening a wire
trades capacitance for resistance — the same tradeoff that motivates
non-tree routing itself, in a different variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.result import IterationRecord, RoutingResult, WIN_TOLERANCE
from repro.delay.incremental import get_candidate_evaluator, memoize_model
from repro.delay.models import CandidateEvaluator, DelayModel, get_delay_model
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph
from repro.graph.validation import check_spanning

#: Discrete width levels of the default layout grid.
DEFAULT_WIDTHS: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0)


@dataclass
class WireSizingResult(RoutingResult):
    """A routing result plus the chosen edge-width assignment."""

    widths: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def widened_edges(self) -> list[tuple[int, int]]:
        """Edges assigned a width above the minimum level."""
        return sorted(edge for edge, w in self.widths.items() if w > 1.0)

    def total_wire_area(self) -> float:
        """Σ length × width — the silicon-area analogue of cost (µm²)."""
        lengths = self.graph.edge_lengths()
        return sum(length * self.widths.get(edge, 1.0)
                   for edge, length in lengths.items())


def wsorg(net_or_graph, tech: Technology,
          width_levels: Sequence[float] = DEFAULT_WIDTHS,
          delay_model: str | DelayModel = "spice",
          initial: RoutingGraph | None = None,
          max_changes: int | None = None,
          candidate_evaluator: str | CandidateEvaluator = "auto",
          ) -> WireSizingResult:
    """Greedy wire sizing of a routing graph.

    Args:
        net_or_graph: a :class:`Net` (routed with an MST first) or a
            pre-built routing graph — e.g. an LDRG result, per the paper's
            "merge added wires into wider wires" reading.
        tech: interconnect technology.
        width_levels: allowed widths in increasing order; the first level
            is the starting width of every edge.
        delay_model: delay oracle (widths are threaded through it).
        initial: explicit starting topology (overrides ``net_or_graph``).
        max_changes: optional cap on the number of upgrade steps.
        candidate_evaluator: how width upgrades are scored — a mode for
            :func:`~repro.delay.incremental.get_candidate_evaluator` or
            an instance (a width upgrade is the same low-rank update as
            an edge addition, with Δg/Δc the deltas between levels).

    Returns:
        A :class:`WireSizingResult`; its baseline is the same topology at
        uniform minimum width, so ``delay_ratio`` isolates the effect of
        sizing alone. History records reuse ``edge`` for the widened edge.
    """
    levels = [float(w) for w in width_levels]
    if len(levels) < 1 or any(b <= a for a, b in zip(levels, levels[1:])):
        raise ValueError("width_levels must be strictly increasing and non-empty")
    if any(w <= 0 for w in levels):
        raise ValueError("widths must be positive")

    model = memoize_model(get_delay_model(delay_model, tech))
    if isinstance(candidate_evaluator, str):
        evaluator = get_candidate_evaluator(model, mode=candidate_evaluator)
    else:
        evaluator = candidate_evaluator
    if initial is not None:
        graph = initial
    elif isinstance(net_or_graph, RoutingGraph):
        graph = net_or_graph
    else:
        graph = prim_mst(net_or_graph)
    check_spanning(graph)

    widths: dict[tuple[int, int], float] = {
        edge: levels[0] for edge in graph.edges()}
    level_index = {edge: 0 for edge in widths}
    last_delays = model.delays(graph, widths)
    base_delay = max(last_delays.values())
    current = base_delay
    history: list[IterationRecord] = []
    budget = max_changes if max_changes is not None else float("inf")

    while len(history) < budget:
        upgrades = [(edge, levels[idx + 1])
                    for edge, idx in level_index.items()
                    if idx + 1 < len(levels)]
        if not upgrades:
            break
        scores = evaluator.score_width_upgrades(graph, widths, upgrades)
        best_index = min(range(len(upgrades)), key=scores.__getitem__)
        if not scores[best_index] < current * (1.0 - WIN_TOLERANCE):
            break
        best_edge = upgrades[best_index][0]
        level_index[best_edge] += 1
        widths[best_edge] = levels[level_index[best_edge]]
        # Re-anchor on the exact oracle so incremental scoring error
        # cannot accumulate across upgrade rounds.
        last_delays = model.delays(graph, widths)
        current = max(last_delays.values())
        history.append(IterationRecord(
            edge=best_edge, delay=current, cost=graph.cost()))

    return WireSizingResult(
        graph=graph,
        delay=current,
        cost=graph.cost(),
        delays=last_delays,
        base_delay=base_delay,
        base_cost=graph.cost(),
        algorithm="wsorg",
        model=model.name,
        history=history,
        widths=widths,
    )
