"""WSORG — wire-sized optimal routing graphs (Section 5.2).

The paper observes that two parallel width-``w`` wires are equivalent to
one width-``2w`` wire, so the edges LDRG adds can be read as local wire
widening, and generalizes the ORG problem with an edge width function
``w : E → ℝ`` (discrete widths in practice, since layout uses a grid).

This module implements the natural greedy: starting from unit widths,
repeatedly apply the single (edge, next-width) upgrade that most reduces
delay, until no upgrade helps. Width affects the electrical model through
:meth:`Technology.resistance_per_um` (∝ 1/w) and
:meth:`Technology.capacitance_per_um` (area + fringe), so widening a wire
trades capacitance for resistance — the same tradeoff that motivates
non-tree routing itself, in a different variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.result import IterationRecord, RoutingResult, WIN_TOLERANCE
from repro.delay.models import DelayModel, get_delay_model
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph
from repro.graph.validation import check_spanning

#: Discrete width levels of the default layout grid.
DEFAULT_WIDTHS: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0)


@dataclass
class WireSizingResult(RoutingResult):
    """A routing result plus the chosen edge-width assignment."""

    widths: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def widened_edges(self) -> list[tuple[int, int]]:
        """Edges assigned a width above the minimum level."""
        return sorted(edge for edge, w in self.widths.items() if w > 1.0)

    def total_wire_area(self) -> float:
        """Σ length × width — the silicon-area analogue of cost (µm²)."""
        lengths = self.graph.edge_lengths()
        return sum(length * self.widths.get(edge, 1.0)
                   for edge, length in lengths.items())


def wsorg(net_or_graph, tech: Technology,
          width_levels: Sequence[float] = DEFAULT_WIDTHS,
          delay_model: str | DelayModel = "spice",
          initial: RoutingGraph | None = None,
          max_changes: int | None = None) -> WireSizingResult:
    """Greedy wire sizing of a routing graph.

    Args:
        net_or_graph: a :class:`Net` (routed with an MST first) or a
            pre-built routing graph — e.g. an LDRG result, per the paper's
            "merge added wires into wider wires" reading.
        tech: interconnect technology.
        width_levels: allowed widths in increasing order; the first level
            is the starting width of every edge.
        delay_model: delay oracle (widths are threaded through it).
        initial: explicit starting topology (overrides ``net_or_graph``).
        max_changes: optional cap on the number of upgrade steps.

    Returns:
        A :class:`WireSizingResult`; its baseline is the same topology at
        uniform minimum width, so ``delay_ratio`` isolates the effect of
        sizing alone. History records reuse ``edge`` for the widened edge.
    """
    levels = [float(w) for w in width_levels]
    if len(levels) < 1 or any(b <= a for a, b in zip(levels, levels[1:])):
        raise ValueError("width_levels must be strictly increasing and non-empty")
    if any(w <= 0 for w in levels):
        raise ValueError("widths must be positive")

    model = get_delay_model(delay_model, tech)
    if initial is not None:
        graph = initial
    elif isinstance(net_or_graph, RoutingGraph):
        graph = net_or_graph
    else:
        graph = prim_mst(net_or_graph)
    check_spanning(graph)

    widths: dict[tuple[int, int], float] = {
        edge: levels[0] for edge in graph.edges()}
    level_index = {edge: 0 for edge in widths}
    base_delay = model.max_delay(graph, widths)
    current = base_delay
    history: list[IterationRecord] = []
    budget = max_changes if max_changes is not None else float("inf")

    while len(history) < budget:
        best_edge: tuple[int, int] | None = None
        best_value = current
        threshold = current * (1.0 - WIN_TOLERANCE)
        for edge, idx in level_index.items():
            if idx + 1 >= len(levels):
                continue
            trial = dict(widths)
            trial[edge] = levels[idx + 1]
            value = model.max_delay(graph, trial)
            if value < best_value and value < threshold:
                best_value = value
                best_edge = edge
        if best_edge is None:
            break
        level_index[best_edge] += 1
        widths[best_edge] = levels[level_index[best_edge]]
        current = best_value
        history.append(IterationRecord(
            edge=best_edge, delay=current, cost=graph.cost()))

    return WireSizingResult(
        graph=graph,
        delay=current,
        cost=graph.cost(),
        delays=model.delays(graph, widths),
        base_delay=base_delay,
        base_cost=graph.cost(),
        algorithm="wsorg",
        model=model.name,
        history=history,
        widths=widths,
    )
