"""The paper's routing algorithms and Section-5 extensions.

Primary contribution (Sections 3–4):

* :func:`ldrg` — Low Delay Routing Graph: greedy edge addition onto an MST
  (Figure 4);
* :func:`sldrg` — the Steiner variant, starting from Iterated 1-Steiner
  (Figure 6);
* :func:`h1`, :func:`h2`, :func:`h3` — the three fixed-rule source-to-pin
  shortcut heuristics;
* :func:`ert` / :func:`ert_ldrg` — the Elmore Routing Tree baseline of
  Boese et al. and LDRG run on top of it (Table 7).

Extensions (Section 5, implemented here rather than left as future work):

* :func:`csorg_ldrg` — critical-sink routing graphs (weighted-sum delay);
* :func:`wsorg` — greedy wire sizing of a routing graph;
* :func:`horg` — the hybrid combination (Steiner + criticality + widths).
"""

from repro.core.result import IterationRecord, RoutingResult
from repro.core.ldrg import greedy_edge_addition, ldrg
from repro.core.sldrg import sldrg
from repro.core.heuristics import h1, h2, h3
from repro.core.ert import elmore_routing_tree, ert, ert_ldrg
from repro.core.sert import sert, steiner_elmore_routing_tree
from repro.core.critical_sink import csorg_ldrg, uniform_criticalities
from repro.core.exhaustive import optimal_routing_graph, optimal_routing_tree
from repro.core.local_search import local_search_org
from repro.core.wire_sizing import WireSizingResult, wsorg
from repro.core.hybrid import HybridResult, horg

__all__ = [
    "HybridResult",
    "IterationRecord",
    "RoutingResult",
    "WireSizingResult",
    "csorg_ldrg",
    "elmore_routing_tree",
    "ert",
    "ert_ldrg",
    "greedy_edge_addition",
    "h1",
    "h2",
    "h3",
    "horg",
    "ldrg",
    "local_search_org",
    "optimal_routing_graph",
    "optimal_routing_tree",
    "sert",
    "sldrg",
    "steiner_elmore_routing_tree",
    "uniform_criticalities",
    "wsorg",
]
