"""Local search for the ORG problem: add, remove, and swap moves.

LDRG (Figure 4) is *add-only*: once an edge is in, it stays, and the MST
skeleton is never reconsidered. The exhaustive results in
:mod:`repro.core.exhaustive` show why that matters — on tiny nets the
true optimum is usually a tree *different from the MST*, which add-only
greedy can never reach. This module implements the natural strengthening
the paper's formulation invites: hill-climbing over the full routing-graph
space with three move types:

* **add** an absent edge (LDRG's move);
* **remove** a present edge (keeping the net spanned);
* **swap** = remove + add in one move (escapes single-move plateaus,
  e.g. replacing an MST edge with a better-oriented one).

Termination at a local optimum under all three moves. With the Elmore
oracle each move evaluation is one linear solve, so the search is
practical well beyond exhaustive sizes.
"""

from __future__ import annotations

from repro.core.result import IterationRecord, RoutingResult, WIN_TOLERANCE
from repro.delay.incremental import get_candidate_evaluator, memoize_model
from repro.delay.models import CandidateEvaluator, DelayModel, get_delay_model
from repro.delay.parameters import Technology
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph
from repro.graph.validation import check_spanning

#: Safety cap on hill-climbing steps (generous: real runs take < 20).
_MAX_MOVES = 200


def local_search_org(net_or_graph, tech: Technology,
                     delay_model: str | DelayModel = "elmore",
                     initial: RoutingGraph | None = None,
                     allow_removals: bool = True,
                     allow_swaps: bool = True,
                     evaluation_model: str | DelayModel | None = None,
                     candidate_evaluator: str | CandidateEvaluator = "auto",
                     ) -> RoutingResult:
    """Hill-climb the ORG objective from an initial routing.

    Args:
        net_or_graph: the net (MST start) or an explicit starting graph.
        tech: interconnect technology.
        delay_model: search oracle (Elmore recommended; every move costs
            one evaluation).
        initial: explicit starting topology (overrides ``net_or_graph``).
        allow_removals: enable the remove move.
        allow_swaps: enable the swap move (remove+add in one step).
        evaluation_model: oracle for reported numbers (defaults to the
            search oracle).
        candidate_evaluator: how add and swap candidates are scored — a
            mode for :func:`~repro.delay.incremental.\
get_candidate_evaluator` or an instance. Swaps whose removal disconnects
            the net fall back to per-edge evaluation (the incremental
            base needs a connected graph).

    Returns:
        A :class:`RoutingResult` whose baseline is the starting topology;
        history records carry the *added* edge of each improving move
        (``(-1, -1)`` marks a pure removal).
    """
    search = get_delay_model(delay_model, tech)
    evaluate = (search if evaluation_model is None
                else get_delay_model(evaluation_model, tech))
    search = memoize_model(search)
    evaluate = memoize_model(evaluate)
    if isinstance(candidate_evaluator, str):
        evaluator = get_candidate_evaluator(search, mode=candidate_evaluator)
    else:
        evaluator = candidate_evaluator
    if initial is not None:
        graph = initial.copy()
    elif isinstance(net_or_graph, RoutingGraph):
        graph = net_or_graph.copy()
    else:
        graph = prim_mst(net_or_graph)
    check_spanning(graph)

    base_delays = evaluate.delays(graph)
    base_delay = max(base_delays.values())
    base_cost = graph.cost()
    current = search.max_delay(graph)
    last_delays = base_delays
    history: list[IterationRecord] = []

    for _ in range(_MAX_MOVES):
        move = _best_move(graph, search, evaluator, current,
                          allow_removals, allow_swaps)
        if move is None:
            break
        value, removed, added = move
        if removed is not None:
            graph.remove_edge(*removed)
        if added is not None:
            graph.add_edge(*added)
        current = value
        last_delays = evaluate.delays(graph)
        history.append(IterationRecord(
            edge=added if added is not None else (-1, -1),
            delay=max(last_delays.values()),
            cost=graph.cost()))

    return RoutingResult(
        graph=graph,
        delay=max(last_delays.values()),
        cost=graph.cost(),
        delays=last_delays,
        base_delay=base_delay,
        base_cost=base_cost,
        algorithm="local-search-org",
        model=evaluate.name,
        history=history,
    )


def _best_move(graph: RoutingGraph, search: DelayModel,
               evaluator: CandidateEvaluator, current: float,
               allow_removals: bool, allow_swaps: bool):
    """The best strictly-improving (value, removed, added) move, if any."""
    threshold = current * (1.0 - WIN_TOLERANCE)
    best = None

    def consider(value, removed, added):
        nonlocal best
        if value < threshold and (best is None or value < best[0]):
            best = (value, removed, added)

    absent = graph.candidate_edges()
    for edge, value in zip(absent, evaluator.score_additions(graph, absent)):
        consider(value, None, edge)

    if not (allow_removals or allow_swaps):
        return best
    for present in list(graph.edges()):
        graph.remove_edge(*present)
        try:
            still_spans = graph.spans_net()
            if allow_removals and still_spans:
                consider(search.max_delay(graph), present, None)
            if allow_swaps:
                if still_spans:
                    # The reduced graph is a valid evaluator base: batch
                    # all swap completions against one factorization.
                    swap_scores = evaluator.score_additions(graph, absent)
                    for edge, value in zip(absent, swap_scores):
                        consider(value, present, edge)
                else:
                    # Removal split the net — only some additions restore
                    # spanning, and the incremental base would be singular,
                    # so fall back to per-edge evaluation.
                    for edge in absent:
                        graph.add_edge(*edge)
                        if graph.spans_net():
                            consider(search.max_delay(graph), present, edge)
                        graph.remove_edge(*edge)
        finally:
            graph.add_edge(*present)
    return best
