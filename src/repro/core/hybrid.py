"""HORG — the hybrid optimal routing graph problem (Section 5.3).

HORG subsumes every other formulation in the paper: Steiner points,
sink criticalities, *and* an edge width function, under the weighted-sum
objective ``Σ αᵢ·t(nᵢ)``. The paper states the problem and notes it "will
be correspondingly more difficult to address effectively"; this module
provides the natural staged heuristic built from the repo's pieces:

1. start from an Iterated 1-Steiner tree (or the MST);
2. greedily add edges minimizing the weighted objective (CSORG-style
   LDRG over the Steiner topology);
3. greedily widen wires under the same objective (WSORG-style).

Each stage only ever improves the objective, so the pipeline is
monotone — a property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.ldrg import greedy_edge_addition
from repro.core.result import IterationRecord, RoutingResult, WIN_TOLERANCE
from repro.core.wire_sizing import DEFAULT_WIDTHS
from repro.delay.incremental import get_candidate_evaluator, memoize_model
from repro.delay.models import DelayModel, get_delay_model
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph
from repro.graph.steiner import iterated_one_steiner
from repro.graph.validation import check_spanning


@dataclass
class HybridResult(RoutingResult):
    """Routing + widths + stage breakdown for the HORG pipeline."""

    widths: dict[tuple[int, int], float] = field(default_factory=dict)
    #: objective value after each stage: (baseline, +edges, +sizing)
    stage_objectives: tuple[float, float, float] = (0.0, 0.0, 0.0)


def horg(net: Net, tech: Technology,
         criticalities: dict[int, float] | None = None,
         width_levels: Sequence[float] = DEFAULT_WIDTHS,
         use_steiner: bool = True,
         delay_model: str | DelayModel = "spice",
         max_added_edges: int | None = None,
         max_width_changes: int | None = None) -> HybridResult:
    """The staged HORG heuristic: Steiner base → extra edges → wire sizing.

    Args:
        net: the signal net.
        tech: interconnect technology.
        criticalities: sink → αᵢ (defaults to uniform — average delay).
        width_levels: allowed wire widths, increasing; first is baseline.
        use_steiner: start from Iterated 1-Steiner (else the MST).
        delay_model: oracle for all three stages.
        max_added_edges: optional cap for the edge stage.
        max_width_changes: optional cap for the sizing stage.
    """
    model = memoize_model(get_delay_model(delay_model, tech))
    weights = (dict(criticalities) if criticalities is not None
               else {s: 1.0 for s in range(1, net.num_pins)})
    if any(alpha < 0 for alpha in weights.values()):
        raise ValueError("criticalities must be non-negative")
    levels = [float(w) for w in width_levels]
    if len(levels) < 1 or any(b <= a for a, b in zip(levels, levels[1:])):
        raise ValueError("width_levels must be strictly increasing and non-empty")

    base = iterated_one_steiner(net) if use_steiner else prim_mst(net)
    check_spanning(base)

    evaluator = get_candidate_evaluator(model, weights=weights)

    def weighted(graph: RoutingGraph,
                 widths: dict[tuple[int, int], float] | None = None) -> float:
        return model.weighted_delay(graph, weights, widths)

    # Stage 1+2: CSORG-style greedy edge addition over the base topology.
    edge_stage = greedy_edge_addition(
        base, model, model,
        algorithm="horg",
        weights=weights,
        max_added_edges=max_added_edges,
        objective_name="weighted-sum",
        evaluator=evaluator,
    )
    graph = edge_stage.graph
    after_edges = edge_stage.delay

    # Stage 3: greedy wire sizing under the same weighted objective,
    # batch-scored through the same candidate evaluator as the edge stage.
    widths = {edge: levels[0] for edge in graph.edges()}
    level_index = {edge: 0 for edge in widths}
    current = weighted(graph, widths)
    history = list(edge_stage.history)
    budget = max_width_changes if max_width_changes is not None else float("inf")
    sizing_steps = 0
    while sizing_steps < budget:
        upgrades = [(edge, levels[idx + 1])
                    for edge, idx in level_index.items()
                    if idx + 1 < len(levels)]
        if not upgrades:
            break
        scores = evaluator.score_width_upgrades(graph, widths, upgrades)
        best_index = min(range(len(upgrades)), key=scores.__getitem__)
        if not scores[best_index] < current * (1.0 - WIN_TOLERANCE):
            break
        best_edge = upgrades[best_index][0]
        level_index[best_edge] += 1
        widths[best_edge] = levels[level_index[best_edge]]
        current = weighted(graph, widths)
        sizing_steps += 1
        history.append(IterationRecord(
            edge=best_edge, delay=current, cost=graph.cost()))

    return HybridResult(
        graph=graph,
        delay=current,
        cost=graph.cost(),
        delays=model.delays(graph, widths),
        base_delay=edge_stage.base_delay,
        base_cost=edge_stage.base_cost,
        algorithm="horg",
        model=model.name,
        objective="weighted-sum",
        history=history,
        widths=widths,
        stage_objectives=(edge_stage.base_delay, after_edges, current),
    )
