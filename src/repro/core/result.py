"""Result records returned by every routing algorithm.

All of the paper's tables are ratios against a baseline topology (MST,
Steiner tree, or ERT), so each result carries the baseline's delay/cost
alongside the final ones, plus a per-added-edge history for the
"iteration one / iteration two" rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.routing_graph import RoutingGraph

#: Relative tolerance below which a delay change does not count as a win.
WIN_TOLERANCE = 1e-9


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot taken after one greedy edge addition.

    Attributes:
        edge: the ``(u, v)`` edge added this iteration.
        delay: evaluation-model delay of the routing after the addition.
        cost: wirelength of the routing after the addition (µm).
    """

    edge: tuple[int, int]
    delay: float
    cost: float


@dataclass
class RoutingResult:
    """Outcome of a routing algorithm on one net.

    Attributes:
        graph: the final routing graph (may contain cycles).
        delay: final objective value (seconds). For max-delay algorithms
            this is ``t(G) = max_i t(n_i)``; for critical-sink variants it
            is the weighted sum (see ``objective``).
        cost: final wirelength (µm).
        delays: final per-sink delays (seconds) under the evaluation model.
        base_delay: objective value of the starting topology.
        base_cost: wirelength of the starting topology (µm).
        algorithm: short algorithm name ("ldrg", "h1", ...).
        model: evaluation delay-model name ("spice", "elmore", ...).
        objective: "max" or "weighted-sum".
        history: one record per added edge, in addition order.
    """

    graph: RoutingGraph
    delay: float
    cost: float
    delays: dict[int, float]
    base_delay: float
    base_cost: float
    algorithm: str
    model: str
    objective: str = "max"
    history: list[IterationRecord] = field(default_factory=list)

    @property
    def delay_ratio(self) -> float:
        """Final / baseline delay — the paper's "Delay" columns."""
        return self.delay / self.base_delay

    @property
    def cost_ratio(self) -> float:
        """Final / baseline wirelength — the paper's "Cost" columns."""
        return self.cost / self.base_cost

    @property
    def improved(self) -> bool:
        """Whether this run is a "winner": final delay beats the baseline."""
        return self.delay < self.base_delay * (1.0 - WIN_TOLERANCE)

    @property
    def num_added_edges(self) -> int:
        return len(self.history)

    def at_iteration(self, k: int) -> tuple[float, float]:
        """(delay, cost) after the first ``k`` edge additions.

        ``k = 0`` is the starting topology. Requesting more iterations
        than happened raises ``IndexError`` — callers distinguishing
        "iteration two" must check :attr:`num_added_edges` first (the
        paper reports "NA" for such rows).
        """
        if k == 0:
            return (self.base_delay, self.base_cost)
        if k > len(self.history):
            raise IndexError(
                f"iteration {k} requested but only {len(self.history)} "
                f"edges were added")
        record = self.history[k - 1]
        return (record.delay, record.cost)

    def summary(self) -> str:
        """One-line human-readable summary."""
        direction = "improved" if self.improved else "no improvement"
        return (f"{self.algorithm} on {self.graph.net.name}: "
                f"delay {self.delay * 1e9:.3f} ns "
                f"({self.delay_ratio:.3f}x base), "
                f"cost {self.cost:.0f} um ({self.cost_ratio:.3f}x base), "
                f"{self.num_added_edges} edge(s) added, {direction}")
