"""SERT — the Steiner Elmore Routing Tree of Boese et al. [4].

The Steiner sibling of :mod:`repro.core.ert`: when attaching an
unconnected sink, SERT may tap not only existing tree *nodes* but any
point along an existing tree *wire*, splitting the wire with a new
Steiner point. Wires are rectilinear L-shapes (horizontal run from the
lower-indexed endpoint, then vertical — the same convention the SVG
renderer draws), so the candidate tap is the Manhattan-closest point on
that L-path. Each step keeps whichever attachment minimizes the partial
tree's maximum Elmore delay.

Splitting at a point on the L-path conserves wirelength exactly
(``d(u,p) + d(p,v) = d(u,v)`` for any ``p`` on a monotone path), which is
what makes the Steiner tap free wire-wise and often a delay win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import RoutingResult
from repro.delay.elmore_tree import elmore_delays_component
from repro.delay.models import DelayModel, get_delay_model
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.routing_graph import RoutingGraph
from repro.graph.validation import check_tree
from repro.guard.sentinels import ensure_found


@dataclass(frozen=True)
class _Attachment:
    """One candidate way to wire a sink into the partial tree."""

    sink: int
    anchor: int | None          # existing node to connect to, or ...
    split_edge: tuple[int, int] | None  # ... edge to split at `tap`
    tap: Point | None


def closest_point_on_lpath(a: Point, b: Point, s: Point) -> Point:
    """Manhattan-closest point to ``s`` on the L-path a → elbow → b.

    The elbow runs horizontally from ``a`` to ``(b.x, a.y)``, then
    vertically to ``b``.
    """
    elbow = Point(b.x, a.y)
    candidates = []
    # Horizontal segment a -> elbow.
    x_lo, x_hi = min(a.x, elbow.x), max(a.x, elbow.x)
    candidates.append(Point(min(max(s.x, x_lo), x_hi), a.y))
    # Vertical segment elbow -> b.
    y_lo, y_hi = min(elbow.y, b.y), max(elbow.y, b.y)
    candidates.append(Point(b.x, min(max(s.y, y_lo), y_hi)))
    return min(candidates, key=s.manhattan)


def steiner_elmore_routing_tree(net: Net, tech: Technology,
                                criticalities: dict[int, float] | None = None,
                                ) -> RoutingGraph:
    """Construct a SERT over ``net`` by greedy Elmore-delay tree growth.

    With ``criticalities`` the growth objective is the weighted sum over
    connected sinks — the "SERT-C" critical-sink variant of Boese, Kahng
    & Robins [5]; without, it is the max delay (plain SERT of [4]).
    """
    from repro.core.ert import _check_weights

    if criticalities is not None:
        _check_weights(net, criticalities)
    graph = RoutingGraph(net)
    in_tree = [graph.source]
    remaining = set(graph.sink_indices())
    while remaining:
        best: tuple[float, _Attachment] | None = None
        for sink in remaining:
            for attachment in _candidates(graph, in_tree, sink):
                score = _evaluate(graph, tech, attachment, criticalities)
                if best is None or score < best[0]:
                    best = (score, attachment)
        best = ensure_found(
            best,
            "SERT growth scored no attachment for the remaining sinks "
            "(every candidate objective was non-finite or the net is "
            "malformed)")
        new_nodes = _apply(graph, best[1])
        in_tree.extend(new_nodes)
        remaining.discard(best[1].sink)
    check_tree(graph)
    return graph


def sert(net: Net, tech: Technology,
         evaluation_model: str | DelayModel = "spice") -> RoutingResult:
    """Build a SERT and evaluate it against the MST baseline."""
    from repro.graph.mst import prim_mst

    evaluate = get_delay_model(evaluation_model, tech)
    mst = prim_mst(net)
    base_delays = evaluate.delays(mst)
    tree = steiner_elmore_routing_tree(net, tech)
    delays = evaluate.delays(tree)
    return RoutingResult(
        graph=tree,
        delay=max(delays.values()),
        cost=tree.cost(),
        delays=delays,
        base_delay=max(base_delays.values()),
        base_cost=mst.cost(),
        algorithm="sert",
        model=evaluate.name,
    )


def _candidates(graph: RoutingGraph, in_tree: list[int], sink: int):
    """All attachments of ``sink``: tree nodes plus edge taps."""
    sink_pos = graph.position(sink)
    for anchor in in_tree:
        yield _Attachment(sink=sink, anchor=anchor, split_edge=None, tap=None)
    for u, v in graph.edges():
        tap = closest_point_on_lpath(graph.position(u), graph.position(v),
                                     sink_pos)
        if tap == graph.position(u) or tap == graph.position(v):
            continue  # degenerates to a node attachment, covered above
        yield _Attachment(sink=sink, anchor=None, split_edge=(u, v), tap=tap)


def _evaluate(graph: RoutingGraph, tech: Technology,
              attachment: _Attachment,
              criticalities: dict[int, float] | None = None) -> float:
    """Partial-tree objective with ``attachment`` applied (the mutation
    is reverted before returning)."""
    from repro.core.ert import _partial_objective

    added = _apply(graph, attachment)
    try:
        delays = elmore_delays_component(graph, tech)
        return _partial_objective(graph, delays, criticalities)
    finally:
        _revert(graph, attachment, added)


def _apply(graph: RoutingGraph, attachment: _Attachment) -> list[int]:
    """Mutate the graph per the attachment; returns nodes newly in-tree."""
    if attachment.anchor is not None:
        graph.add_edge(attachment.anchor, attachment.sink)
        return [attachment.sink]
    u, v = ensure_found(
        attachment.split_edge,
        "attachment has neither an anchor node nor a split edge")
    tap = ensure_found(
        attachment.tap, "split-edge attachment is missing its tap point")
    tap_node = graph.add_steiner_point(tap)
    graph.remove_edge(u, v)
    graph.add_edge(u, tap_node)
    graph.add_edge(tap_node, v)
    graph.add_edge(tap_node, attachment.sink)
    return [attachment.sink, tap_node]


def _revert(graph: RoutingGraph, attachment: _Attachment,
            added: list[int]) -> None:
    if attachment.anchor is not None:
        graph.remove_edge(attachment.anchor, attachment.sink)
        return
    u, v = ensure_found(
        attachment.split_edge,
        "cannot revert a split-edge attachment without its split edge")
    tap_node = added[-1]
    graph.remove_node(tap_node)  # drops its three edges
    graph.add_edge(u, v)
