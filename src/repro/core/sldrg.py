"""SLDRG — the Steiner Low Delay Routing Graph algorithm (Figure 6).

Identical greedy loop to LDRG, but the starting topology is a rectilinear
Steiner tree (Iterated 1-Steiner, as the paper prescribes) and candidate
edges may connect any pair of nodes including Steiner points — the paper's
``e_ij ∈ N̂ × N̂``.
"""

from __future__ import annotations

from repro.core.ldrg import greedy_edge_addition
from repro.core.result import RoutingResult
from repro.delay.models import CandidateEvaluator, DelayModel, get_delay_model
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.routing_graph import RoutingGraph
from repro.graph.steiner import iterated_one_steiner
from repro.graph.validation import check_spanning


def sldrg(net: Net, tech: Technology,
          delay_model: str | DelayModel = "spice",
          initial: RoutingGraph | None = None,
          max_added_edges: int | None = None,
          evaluation_model: str | DelayModel | None = None,
          candidate_evaluator: str | CandidateEvaluator = "auto"
          ) -> RoutingResult:
    """Run the SLDRG algorithm.

    The baseline of the returned result is the *Steiner tree* (Table 3
    normalizes against Steiner-tree delay and cost), not the MST.

    Args:
        net: the signal net.
        tech: interconnect technology.
        delay_model: oracle used to choose edges.
        initial: optional pre-built Steiner tree (must span the net);
            defaults to Iterated 1-Steiner.
        max_added_edges: optional cap on greedy iterations.
        evaluation_model: oracle used to report delays (defaults to the
            search oracle).
        candidate_evaluator: candidate-scoring strategy (mode string or
            instance), as in :func:`~repro.core.ldrg.ldrg`. Candidates
            include Steiner-point pairs, which the incremental engine
            handles like any other node.
    """
    search = get_delay_model(delay_model, tech)
    evaluate = (search if evaluation_model is None
                else get_delay_model(evaluation_model, tech))
    start = initial if initial is not None else iterated_one_steiner(net)
    check_spanning(start)
    result = greedy_edge_addition(
        start, search, evaluate,
        algorithm="sldrg",
        max_added_edges=max_added_edges,
        evaluator=candidate_evaluator,
    )
    return result
