"""CSORG — critical-sink routing graphs (Section 5.1).

The max-delay ORG objective ignores path criticality information from
timing analysis. CSORG instead minimizes the weighted sum
``Σᵢ αᵢ · t(nᵢ)`` over given sink criticalities ``αᵢ ≥ 0``. The paper
defines the problem and points out two useful special cases, both covered
here:

* all ``αᵢ`` equal — minimize *average* sink delay;
* exactly one ``α`` nonzero — optimize a single identified critical sink.

The algorithm is the natural CSORG analogue of LDRG: greedily add the
edge that most reduces the weighted objective.
"""

from __future__ import annotations

from repro.core.ldrg import greedy_edge_addition
from repro.core.result import RoutingResult
from repro.delay.models import CandidateEvaluator, DelayModel, get_delay_model
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph
from repro.graph.validation import check_spanning


def uniform_criticalities(net: Net, alpha: float = 1.0) -> dict[int, float]:
    """Equal criticality on every sink — the average-delay special case."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return {sink: alpha for sink in range(1, net.num_pins)}


def single_critical_sink(net: Net, sink: int) -> dict[int, float]:
    """Criticality 1 on one sink, 0 elsewhere (the paper's case (ii))."""
    if not 1 <= sink < net.num_pins:
        raise ValueError(f"sink index {sink} out of range 1..{net.num_pins - 1}")
    return {s: (1.0 if s == sink else 0.0) for s in range(1, net.num_pins)}


def csorg_ldrg(net: Net, tech: Technology,
               criticalities: dict[int, float] | None = None,
               critical_sink: int | None = None,
               delay_model: str | DelayModel = "spice",
               initial: RoutingGraph | None = None,
               max_added_edges: int | None = None,
               candidate_evaluator: str | CandidateEvaluator = "auto"
               ) -> RoutingResult:
    """Greedy edge addition minimizing the weighted sink-delay sum.

    Args:
        net: the signal net.
        tech: interconnect technology.
        criticalities: sink index → ``αᵢ`` (missing sinks get 0). Mutually
            exclusive with ``critical_sink``; defaults to uniform weights.
        critical_sink: shorthand for the single-critical-sink case.
        delay_model: delay oracle for both search and reporting.
        initial: optional starting topology (defaults to the MST).
        max_added_edges: optional cap on greedy iterations.
        candidate_evaluator: candidate-scoring strategy (the incremental
            engine supports the weighted objective directly).

    Returns:
        A :class:`RoutingResult` whose ``delay``/``base_delay`` hold the
        *weighted objective* (``objective == "weighted-sum"``); per-sink
        delays are still available in ``delays``.
    """
    if criticalities is not None and critical_sink is not None:
        raise ValueError("pass either criticalities or critical_sink, not both")
    if critical_sink is not None:
        weights = single_critical_sink(net, critical_sink)
    elif criticalities is not None:
        weights = dict(criticalities)
    else:
        weights = uniform_criticalities(net)
    if any(alpha < 0 for alpha in weights.values()):
        raise ValueError("criticalities must be non-negative")
    if not any(alpha > 0 for alpha in weights.values()):
        raise ValueError("at least one criticality must be positive")
    bad = [s for s in weights if not 1 <= s < net.num_pins]
    if bad:
        raise ValueError(f"criticalities reference non-sink indices {bad}")

    model = get_delay_model(delay_model, tech)
    graph = initial if initial is not None else prim_mst(net)
    check_spanning(graph)

    return greedy_edge_addition(
        graph, model, model,
        algorithm="csorg-ldrg",
        weights=weights,
        max_added_edges=max_added_edges,
        objective_name="weighted-sum",
        evaluator=candidate_evaluator,
    )
