"""Exhaustive ORG/ORT solvers for tiny nets.

The paper formalizes the Optimal Routing Graph problem but, like all the
heuristics literature, never computes true optima. For nets of up to ~6
pins the edge-subset space is small enough to enumerate outright, which
gives this repo something the paper could not print: the exact optimality
gap of LDRG and of the best spanning *tree* (the quantity behind the
Table 7 argument that non-tree routings beat optimal trees).

Sizes: a ``k+1``-pin net has ``m = (k+1)k/2`` candidate edges; the solver
enumerates all ``2^m`` subsets for the ORG and all spanning trees for the
ORT, so ``k + 1 ≤ 7`` is the practical ceiling (``2^21`` ≈ 2M subsets).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.result import WIN_TOLERANCE
from repro.delay.incremental import memoize_model
from repro.delay.models import DelayModel, get_delay_model
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.routing_graph import RoutingGraph
from repro.graph.validation import check_spanning
from repro.guard.sentinels import ensure_found

#: Enumeration ceiling: nets above this size are refused loudly.
MAX_PINS = 7


@dataclass
class OptimalResult:
    """The exact optimum over a routing family.

    Attributes:
        graph: an optimal routing.
        delay: its objective value under the chosen oracle.
        evaluated: how many candidate routings were scored.
    """

    graph: RoutingGraph
    delay: float
    evaluated: int

    @property
    def is_tree(self) -> bool:
        return self.graph.is_tree()


def optimal_routing_graph(net: Net, tech: Technology,
                          delay_model: str | DelayModel = "elmore",
                          ) -> OptimalResult:
    """Brute-force the ORG problem: the best *connected graph* routing.

    Only edge subsets that (a) span the net and (b) contain no dead-end
    Steiner structure are scored. Ties break toward fewer edges, then
    lower wirelength, so the reported optimum is the cheapest among
    delay-optimal routings.
    """
    model, edges = _setup(net, tech, delay_model)
    best: OptimalResult | None = None
    evaluated = 0
    n = net.num_pins
    for count in range(n - 1, len(edges) + 1):
        for subset in combinations(edges, count):
            graph = RoutingGraph.from_edges(net, subset)
            if not graph.is_connected():
                continue
            evaluated += 1
            delay = model.max_delay(graph)
            best = _keep_better(best, graph, delay, evaluated)
    best = ensure_found(
        best, "ORG enumeration scored no spanning subgraph — the complete "
              "candidate edge set failed to span the net")
    best.evaluated = evaluated
    check_spanning(best.graph)
    return best


def optimal_routing_tree(net: Net, tech: Technology,
                         delay_model: str | DelayModel = "elmore",
                         ) -> OptimalResult:
    """Brute-force the ORT problem of Boese et al.: the best spanning tree."""
    model, edges = _setup(net, tech, delay_model)
    best: OptimalResult | None = None
    evaluated = 0
    n = net.num_pins
    for subset in combinations(edges, n - 1):
        graph = RoutingGraph.from_edges(net, subset)
        if not graph.is_connected():
            continue
        evaluated += 1
        delay = model.max_delay(graph)
        best = _keep_better(best, graph, delay, evaluated)
    best = ensure_found(
        best, "ORT enumeration scored no spanning tree — the complete "
              "candidate edge set failed to span the net")
    best.evaluated = evaluated
    check_spanning(best.graph)
    return best


def _setup(net: Net, tech: Technology, delay_model):
    if net.num_pins > MAX_PINS:
        raise ValueError(
            f"exhaustive search is limited to {MAX_PINS} pins "
            f"(got {net.num_pins}); use the heuristics for larger nets")
    # Memoized: the ORT enumeration is a strict subset of the ORG one, so
    # running both solvers on a net scores every tree exactly once.
    model = memoize_model(get_delay_model(delay_model, tech))
    edges = [(i, j) for i in range(net.num_pins)
             for j in range(i + 1, net.num_pins)]
    return model, edges


def _keep_better(best: OptimalResult | None, graph: RoutingGraph,
                 delay: float, evaluated: int) -> OptimalResult:
    if best is None:
        return OptimalResult(graph=graph, delay=delay, evaluated=evaluated)
    if delay < best.delay * (1.0 - WIN_TOLERANCE):
        return OptimalResult(graph=graph, delay=delay, evaluated=evaluated)
    if (abs(delay - best.delay) <= best.delay * WIN_TOLERANCE
            and (graph.num_edges, graph.cost())
            < (best.graph.num_edges, best.graph.cost())):
        return OptimalResult(graph=graph, delay=delay, evaluated=evaluated)
    return best
