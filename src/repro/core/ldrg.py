"""LDRG — the Low Delay Routing Graph algorithm (Figure 4 of the paper).

Start from the MST; while some extra edge lowers the routing graph's max
source–sink delay, add the best such edge. The delay oracle is pluggable
(:mod:`repro.delay.models`): the paper uses SPICE inside the loop, and the
oracle ablation benchmark quantifies what the cheaper oracles give up.

Candidate scoring goes through the :class:`~repro.delay.models.\
CandidateEvaluator` protocol: with the graph-Elmore search oracle the
greedy loop uses the Sherman–Morrison incremental engine
(:mod:`repro.delay.incremental`) — one factorization per iteration shared
by every candidate — and falls back to naive per-candidate re-evaluation
for oracles without an incremental form.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.result import IterationRecord, RoutingResult, WIN_TOLERANCE
from repro.delay.incremental import get_candidate_evaluator, memoize_model
from repro.delay.models import (
    CandidateEvaluator,
    DelayModel,
    get_delay_model,
    reduce_delays,
)
from repro.delay.parameters import Technology
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph
from repro.graph.validation import check_spanning
from repro.guard.sentinels import (
    sentinel_connected,
    sentinel_delay_non_increase,
    sentinel_finite_delays,
    sentinel_monotone_cost,
)


def ldrg(net_or_graph, tech: Technology,
         delay_model: str | DelayModel = "spice",
         initial: RoutingGraph | None = None,
         max_added_edges: int | None = None,
         evaluation_model: str | DelayModel | None = None,
         candidate_evaluator: str | CandidateEvaluator = "auto"
         ) -> RoutingResult:
    """Run the LDRG algorithm.

    Args:
        net_or_graph: the :class:`~repro.geometry.net.Net` to route (an
            MST starting tree is built), or a pre-built starting
            :class:`RoutingGraph` (equivalent to passing ``initial``).
        tech: interconnect technology.
        delay_model: oracle used to *choose* edges ("spice" per the paper).
        initial: optional explicit starting topology (e.g. an ERT for the
            Table 7 variant); must span the net.
        max_added_edges: optional cap on greedy iterations (used for the
            per-iteration table rows; ``None`` = run to convergence).
        evaluation_model: oracle used to *report* delays (defaults to the
            search oracle). H2/H3-style splits — search cheap, report
            SPICE — are expressed this way.
        candidate_evaluator: how candidate edges are scored — a mode for
            :func:`~repro.delay.incremental.get_candidate_evaluator`
            (``"auto"``, ``"incremental"``, ``"naive"``, ``"parallel"``)
            or a ready :class:`CandidateEvaluator` instance.

    Returns:
        A :class:`RoutingResult` whose baseline is the starting topology.
    """
    search = get_delay_model(delay_model, tech)
    evaluate = (search if evaluation_model is None
                else get_delay_model(evaluation_model, tech))
    graph = _starting_graph(net_or_graph, initial)
    check_spanning(graph)
    return greedy_edge_addition(
        graph, search, evaluate,
        algorithm="ldrg",
        max_added_edges=max_added_edges,
        evaluator=candidate_evaluator,
    )


def greedy_edge_addition(graph: RoutingGraph,
                         search: DelayModel,
                         evaluate: DelayModel,
                         algorithm: str,
                         weights: Mapping[int, float] | None = None,
                         max_added_edges: int | None = None,
                         objective_name: str = "max",
                         evaluator: str | CandidateEvaluator = "auto"
                         ) -> RoutingResult:
    """The greedy loop shared by LDRG, SLDRG, and the CSORG variant.

    ``search`` scores candidate graphs (through ``evaluator``);
    ``evaluate`` produces the reported numbers. ``weights`` switches the
    objective from max delay to the weighted sink-delay sum. Iterates
    until no candidate edge improves the search objective (or the edge
    budget runs out) — the termination rule of Figure 4, step 2.

    The evaluation oracle is consulted exactly once per evaluation point
    (the starting topology and each accepted edge); the reported
    ``delay``, ``delays``, and history rows are all derived from those
    same per-sink results, so a retrying or degrading oracle can never
    report an objective that disagrees with its own delay map.
    """
    same_oracle = search is evaluate
    search = memoize_model(search)
    evaluate = search if same_oracle else memoize_model(evaluate)
    if isinstance(evaluator, str):
        evaluator = get_candidate_evaluator(search, weights=weights,
                                            mode=evaluator)
    graph = graph.copy()
    base_delays = evaluate.delays(graph)
    sentinel_finite_delays(base_delays, source=f"{algorithm}:base")
    base_delay = reduce_delays(base_delays, weights)
    base_cost = graph.cost()
    current = (base_delay if same_oracle
               else reduce_delays(search.delays(graph), weights))
    last_delays = base_delays
    last_cost = base_cost
    history: list[IterationRecord] = []
    budget = max_added_edges if max_added_edges is not None else float("inf")

    while len(history) < budget:
        candidates = graph.candidate_edges()
        if not candidates:
            break
        scores = evaluator.score_additions(graph, candidates)
        best_index = min(range(len(candidates)), key=scores.__getitem__)
        best_value = scores[best_index]
        if not best_value < current * (1.0 - WIN_TOLERANCE):
            break
        previous = current
        graph.add_edge(*candidates[best_index])
        sentinel_connected(graph, source=f"{algorithm}:iter{len(history)}")
        last_delays = evaluate.delays(graph)
        sentinel_finite_delays(
            last_delays, source=f"{algorithm}:iter{len(history)}")
        eval_value = reduce_delays(last_delays, weights)
        if same_oracle:
            # The loop only accepted this edge because it improved the
            # objective; the full re-evaluation disagreeing means the
            # candidate scoring path has drifted.
            sentinel_delay_non_increase(
                previous, eval_value,
                source=f"{algorithm}:iter{len(history)}")
        cost = graph.cost()
        sentinel_monotone_cost(last_cost, cost,
                               source=f"{algorithm}:iter{len(history)}")
        last_cost = cost
        # When one oracle both searches and reports, its exact value
        # re-anchors the termination threshold each iteration, so
        # incremental scoring error can never accumulate across rounds.
        current = eval_value if same_oracle else best_value
        history.append(IterationRecord(
            edge=candidates[best_index],
            delay=eval_value,
            cost=cost,
        ))

    return RoutingResult(
        graph=graph,
        delay=reduce_delays(last_delays, weights),
        cost=graph.cost(),
        delays=last_delays,
        base_delay=base_delay,
        base_cost=base_cost,
        algorithm=algorithm,
        model=evaluate.name,
        objective=objective_name,
        history=history,
    )


def _starting_graph(net_or_graph, initial: RoutingGraph | None) -> RoutingGraph:
    if initial is not None:
        if isinstance(net_or_graph, RoutingGraph):
            raise ValueError(
                "ambiguous starting topology: net_or_graph is already a "
                "RoutingGraph and initial= was passed as well — pass the "
                "starting graph exactly once (drop one of the two)")
        return initial
    if isinstance(net_or_graph, RoutingGraph):
        return net_or_graph
    return prim_mst(net_or_graph)
