"""LDRG — the Low Delay Routing Graph algorithm (Figure 4 of the paper).

Start from the MST; while some extra edge lowers the routing graph's max
source–sink delay, add the best such edge. The delay oracle is pluggable
(:mod:`repro.delay.models`): the paper uses SPICE inside the loop, and the
oracle ablation benchmark quantifies what the cheaper oracles give up.
"""

from __future__ import annotations

from typing import Callable

from repro.core.result import IterationRecord, RoutingResult, WIN_TOLERANCE
from repro.delay.models import DelayModel, get_delay_model
from repro.delay.parameters import Technology
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph
from repro.graph.validation import check_spanning

Objective = Callable[[RoutingGraph], float]


def ldrg(net_or_graph, tech: Technology,
         delay_model: str | DelayModel = "spice",
         initial: RoutingGraph | None = None,
         max_added_edges: int | None = None,
         evaluation_model: str | DelayModel | None = None) -> RoutingResult:
    """Run the LDRG algorithm.

    Args:
        net_or_graph: the :class:`~repro.geometry.net.Net` to route (an
            MST starting tree is built), or a pre-built starting
            :class:`RoutingGraph` (equivalent to passing ``initial``).
        tech: interconnect technology.
        delay_model: oracle used to *choose* edges ("spice" per the paper).
        initial: optional explicit starting topology (e.g. an ERT for the
            Table 7 variant); must span the net.
        max_added_edges: optional cap on greedy iterations (used for the
            per-iteration table rows; ``None`` = run to convergence).
        evaluation_model: oracle used to *report* delays (defaults to the
            search oracle). H2/H3-style splits — search cheap, report
            SPICE — are expressed this way.

    Returns:
        A :class:`RoutingResult` whose baseline is the starting topology.
    """
    search = get_delay_model(delay_model, tech)
    evaluate = (search if evaluation_model is None
                else get_delay_model(evaluation_model, tech))
    graph = _starting_graph(net_or_graph, initial)
    check_spanning(graph)
    return greedy_edge_addition(
        graph, search, evaluate,
        objective=search.max_delay,
        eval_objective=evaluate.max_delay,
        algorithm="ldrg",
        max_added_edges=max_added_edges,
    )


def greedy_edge_addition(graph: RoutingGraph,
                         search: DelayModel,
                         evaluate: DelayModel,
                         objective: Objective,
                         eval_objective: Objective,
                         algorithm: str,
                         max_added_edges: int | None = None,
                         objective_name: str = "max") -> RoutingResult:
    """The greedy loop shared by LDRG, SLDRG, and the CSORG variant.

    ``objective`` scores candidate graphs during the search;
    ``eval_objective`` produces the reported numbers. Iterates until no
    candidate edge improves the search objective (or the edge budget runs
    out) — the termination rule of Figure 4, step 2.
    """
    graph = graph.copy()
    base_delay = eval_objective(graph)
    base_cost = graph.cost()
    current = objective(graph)
    history: list[IterationRecord] = []
    budget = max_added_edges if max_added_edges is not None else float("inf")

    while len(history) < budget:
        best_edge: tuple[int, int] | None = None
        best_value = current
        threshold = current * (1.0 - WIN_TOLERANCE)
        for u, v in graph.candidate_edges():
            value = objective(graph.with_edge(u, v))
            if value < best_value and value < threshold:
                best_value = value
                best_edge = (u, v)
        if best_edge is None:
            break
        graph.add_edge(*best_edge)
        current = best_value
        history.append(IterationRecord(
            edge=best_edge,
            delay=eval_objective(graph),
            cost=graph.cost(),
        ))

    final_delays = evaluate.delays(graph)
    return RoutingResult(
        graph=graph,
        delay=eval_objective(graph),
        cost=graph.cost(),
        delays=final_delays,
        base_delay=base_delay,
        base_cost=base_cost,
        algorithm=algorithm,
        model=evaluate.name,
        objective=objective_name,
        history=history,
    )


def _starting_graph(net_or_graph, initial: RoutingGraph | None) -> RoutingGraph:
    if initial is not None:
        return initial
    if isinstance(net_or_graph, RoutingGraph):
        return net_or_graph
    return prim_mst(net_or_graph)
