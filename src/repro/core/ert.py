"""ERT — the Elmore Routing Tree of Boese, Kahng, McCoy & Robins [4].

The paper's Table 6 baseline: a greedy tree construction that grows from
the source, at each step attaching the unconnected sink via whichever
tree node minimizes the resulting partial tree's maximum Elmore delay.
Boese et al. found such trees to average within 2% of the optimal routing
tree, which is what makes Table 7 interesting: LDRG's extra edges improve
even on ERTs, so non-tree routings beat *optimal tree* routings.
"""

from __future__ import annotations

from repro.core.ldrg import greedy_edge_addition
from repro.core.result import RoutingResult
from repro.delay.elmore_tree import elmore_delays_component
from repro.delay.models import DelayModel, get_delay_model
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.routing_graph import RoutingGraph
from repro.graph.validation import check_tree
from repro.guard.sentinels import ensure_found


def elmore_routing_tree(net: Net, tech: Technology,
                        criticalities: dict[int, float] | None = None,
                        ) -> RoutingGraph:
    """Construct an ERT over ``net`` by greedy Elmore-delay tree growth.

    With ``criticalities`` the growth objective becomes the weighted sum
    ``Σ αᵢ·t(nᵢ)`` over the sinks already in the partial tree — the
    "ERT-C" critical-sink variant of Boese, Kahng & Robins [5]. Without,
    the objective is the max delay (the plain ERT of [4]).
    """
    if criticalities is not None:
        _check_weights(net, criticalities)
    graph = RoutingGraph(net)
    in_tree = [graph.source]
    remaining = set(graph.sink_indices())
    while remaining:
        best_edge: tuple[int, int] | None = None
        best_score = float("inf")
        for sink in remaining:
            for anchor in in_tree:
                graph.add_edge(anchor, sink)
                delays = elmore_delays_component(graph, tech)
                score = _partial_objective(graph, delays, criticalities)
                graph.remove_edge(anchor, sink)
                if score < best_score:
                    best_score = score
                    best_edge = (anchor, sink)
        best_edge = ensure_found(
            best_edge,
            "ERT growth scored no attachment for the remaining sinks "
            "(every candidate objective was non-finite or the net is "
            "malformed)")
        graph.add_edge(*best_edge)
        in_tree.append(best_edge[1])
        remaining.discard(best_edge[1])
    check_tree(graph)
    return graph


def _partial_objective(graph: RoutingGraph, delays: dict[int, float],
                       criticalities: dict[int, float] | None) -> float:
    """Objective of a partial tree: max delay or weighted sum.

    The weighted objective carries a small max-delay tie-break term:
    zero-criticality sinks otherwise contribute nothing, leaving their
    attachments arbitrary — and an arbitrarily wired non-critical sink
    still loads the critical path with its capacitance. Boese et al.'s
    critical-sink constructions likewise keep non-critical sinks sane via
    a secondary objective.
    """
    sinks = [s for s in delays if 0 < s < graph.num_pins]
    worst = max(delays[s] for s in sinks)
    if criticalities is None:
        return worst
    weighted = sum(criticalities.get(s, 0.0) * delays[s] for s in sinks)
    return weighted + 1e-3 * worst


def _check_weights(net: Net, criticalities: dict[int, float]) -> None:
    if any(alpha < 0 for alpha in criticalities.values()):
        raise ValueError("criticalities must be non-negative")
    bad = [s for s in criticalities if not 1 <= s < net.num_pins]
    if bad:
        raise ValueError(f"criticalities reference non-sink indices {bad}")


def ert(net: Net, tech: Technology,
        evaluation_model: str | DelayModel = "spice") -> RoutingResult:
    """Build an ERT and evaluate it against the MST baseline (Table 6)."""
    from repro.graph.mst import prim_mst

    evaluate = get_delay_model(evaluation_model, tech)
    mst = prim_mst(net)
    base_delays = evaluate.delays(mst)
    tree = elmore_routing_tree(net, tech)
    delays = evaluate.delays(tree)
    return RoutingResult(
        graph=tree,
        delay=max(delays.values()),
        cost=tree.cost(),
        delays=delays,
        base_delay=max(base_delays.values()),
        base_cost=mst.cost(),
        algorithm="ert",
        model=evaluate.name,
    )


def ert_ldrg(net: Net, tech: Technology,
             delay_model: str | DelayModel = "spice",
             max_added_edges: int | None = None,
             evaluation_model: str | DelayModel | None = None) -> RoutingResult:
    """LDRG started from an ERT instead of an MST (Table 7).

    The returned result's baseline is the *ERT* delay/cost, matching the
    paper's normalization for this table.
    """
    search = get_delay_model(delay_model, tech)
    evaluate = (search if evaluation_model is None
                else get_delay_model(evaluation_model, tech))
    tree = elmore_routing_tree(net, tech)
    result = greedy_edge_addition(
        tree, search, evaluate,
        algorithm="ert-ldrg",
        max_added_edges=max_added_edges,
    )
    return result
