"""A plain-text net-list format.

One stanza per net; coordinates in microns::

    # anything after '#' is a comment
    net clk_tree
      source 120.5 4480.0
      sink   800.0 9100.0
      sink   5500.0 300.25

Whitespace is free-form. The ``source`` line must appear exactly once per
stanza and before any ``sink`` line is not required — pins are gathered,
the single source identified by keyword.
"""

from __future__ import annotations

from pathlib import Path

from repro.geometry.net import Net
from repro.geometry.point import Point


class NetsFileError(ValueError):
    """Raised for malformed net files."""


def parse_nets(text: str) -> list[Net]:
    """Parse net stanzas from text. Returns nets in file order."""
    nets: list[Net] = []
    name: str | None = None
    source: Point | None = None
    sinks: list[Point] = []

    def flush(line_no: int) -> None:
        nonlocal name, source, sinks
        if name is None:
            return
        where = f"line {line_no}" if line_no > 0 else "end of input"
        if source is None:
            raise NetsFileError(
                f"net {name!r} has no source line (ending at {where})")
        if not sinks:
            raise NetsFileError(f"net {name!r} has no sinks")
        nets.append(Net(source=source, sinks=tuple(sinks), name=name))
        name, source, sinks = None, None, []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0].lower()
        if keyword == "net":
            if len(tokens) != 2:
                raise NetsFileError(f"line {line_no}: expected 'net <name>'")
            flush(line_no)
            name = tokens[1]
        elif keyword in ("source", "sink"):
            if name is None:
                raise NetsFileError(
                    f"line {line_no}: {keyword} outside a net stanza")
            if len(tokens) != 3:
                raise NetsFileError(
                    f"line {line_no}: expected '{keyword} <x> <y>'")
            try:
                point = Point(float(tokens[1]), float(tokens[2]))
            except ValueError:
                raise NetsFileError(
                    f"line {line_no}: bad coordinates {tokens[1:]!r}") from None
            if keyword == "source":
                if source is not None:
                    raise NetsFileError(
                        f"line {line_no}: net {name!r} has two sources")
                source = point
            else:
                sinks.append(point)
        else:
            raise NetsFileError(
                f"line {line_no}: unknown keyword {tokens[0]!r}")
    flush(line_no=-1)
    if not nets:
        raise NetsFileError("no nets found")
    return nets


def format_nets(nets: list[Net]) -> str:
    """Serialize nets to the stanza format (round-trips with parse)."""
    lines: list[str] = []
    for net in nets:
        lines.append(f"net {net.name}")
        lines.append(f"  source {net.source.x:.12g} {net.source.y:.12g}")
        for sink in net.sinks:
            lines.append(f"  sink {sink.x:.12g} {sink.y:.12g}")
        lines.append("")
    return "\n".join(lines)


def read_nets(path: str | Path) -> list[Net]:
    """Parse nets from a file."""
    return parse_nets(Path(path).read_text(encoding="utf-8"))


def write_nets(nets: list[Net], path: str | Path) -> None:
    """Write nets to a file."""
    Path(path).write_text(format_nets(nets), encoding="utf-8")
