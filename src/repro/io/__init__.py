"""File formats: net lists and routing-graph serialization."""

from repro.io.nets_file import format_nets, parse_nets, read_nets, write_nets
from repro.io.routing_json import (
    routing_from_dict,
    routing_to_dict,
    load_routing,
    save_routing,
)

__all__ = [
    "format_nets",
    "load_routing",
    "parse_nets",
    "read_nets",
    "routing_from_dict",
    "routing_to_dict",
    "save_routing",
    "write_nets",
]
