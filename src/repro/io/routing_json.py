"""JSON serialization of routing graphs.

A routing dict is self-contained: it embeds the net's pins, every Steiner
point's coordinates, and the edge list, so a routing can be archived and
reloaded without the original :class:`~repro.geometry.net.Net` object.

Loading validates by default: structural problems in the document
(missing keys, malformed coordinates, duplicate or dangling edges) and
error-severity findings from the routing-graph lint pass
(:func:`repro.analysis.lint_graph`) are rejected with a
:class:`RoutingFormatError` carrying the diagnostics, instead of letting
a malformed routing fail deep inside delay code.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
)
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.routing_graph import RoutingGraph

_FORMAT = "repro-routing-v1"


class RoutingFormatError(ValueError):
    """A routing document failed validation.

    Attributes:
        diagnostics: the findings that caused the rejection.
    """

    def __init__(self, message: str,
                 diagnostics: list[Diagnostic] | None = None) -> None:
        super().__init__(message)
        self.diagnostics: list[Diagnostic] = diagnostics or []


def routing_to_dict(graph: RoutingGraph) -> dict[str, Any]:
    """The routing graph as a JSON-ready dict."""
    steiner = {str(node): list(graph.position(node).as_tuple())
               for node in sorted(graph.steiner)}
    return {
        "format": _FORMAT,
        "net": {
            "name": graph.net.name,
            "source": list(graph.net.source.as_tuple()),
            "sinks": [list(p.as_tuple()) for p in graph.net.sinks],
        },
        "steiner": steiner,
        "edges": sorted(graph.edges()),
    }


def _format_diagnostic(message: str, *, source: str,
                       hint: str | None = None) -> Diagnostic:
    return Diagnostic(rule="json-malformed", severity=Severity.ERROR,
                      message=message, location=Location(file=source),
                      hint=hint)


def _build_graph(data: dict[str, Any], source: str) -> RoutingGraph:
    """Construct the graph, translating structural problems to diagnostics."""
    try:
        net_spec = data["net"]
        net = Net(source=Point(*net_spec["source"]),
                  sinks=tuple(Point(*coords) for coords in net_spec["sinks"]),
                  name=net_spec.get("name", "net"))
    except (KeyError, TypeError, ValueError) as exc:
        raise RoutingFormatError(
            f"{source}: malformed net specification: {exc}",
            [_format_diagnostic(f"malformed net specification: {exc}",
                                source=source,
                                hint="expected net.source = [x, y] and "
                                     "net.sinks = [[x, y], ...]")]) from exc
    graph = RoutingGraph(net)
    remap: dict[int, int] = {}
    try:
        steiner_spec = data.get("steiner", {})
        for original in sorted(int(k) for k in steiner_spec):
            coords = steiner_spec[str(original)]
            remap[original] = graph.add_steiner_point(Point(*coords))
    except (TypeError, ValueError) as exc:
        raise RoutingFormatError(
            f"{source}: malformed steiner table: {exc}",
            [_format_diagnostic(f"malformed steiner table: {exc}",
                                source=source,
                                hint="expected {index: [x, y]} with "
                                     "integer keys")]) from exc
    for entry in data.get("edges", []):
        try:
            u, v = (int(end) for end in entry)
            graph.add_edge(remap.get(u, u), remap.get(v, v))
        except (TypeError, ValueError) as exc:
            # RoutingGraphError (a ValueError) covers self-loops, unknown
            # nodes, and duplicate edges with a precise message.
            raise RoutingFormatError(
                f"{source}: bad edge {entry!r}: {exc}",
                [_format_diagnostic(f"bad edge {entry!r}: {exc}",
                                    source=source,
                                    hint="edges are [u, v] pairs of "
                                         "existing distinct nodes, each "
                                         "listed once")]) from exc
    return graph


def routing_from_dict(data: dict[str, Any], *, validate: bool = True,
                      source: str = "<routing>") -> RoutingGraph:
    """Rebuild a routing graph from :func:`routing_to_dict` output.

    Steiner node indices are remapped densely in ascending original
    order, so round-trips preserve edge structure even if the original
    indices had gaps.

    With ``validate`` (the default), the rebuilt graph is run through
    the routing-graph lint pass and any error-severity finding raises
    :class:`RoutingFormatError`; pass ``validate=False`` to load a known
    -broken routing for inspection (``repro-route lint`` does).
    """
    if data.get("format") != _FORMAT:
        raise RoutingFormatError(
            f"{source}: not a {_FORMAT} document: "
            f"format={data.get('format')!r}",
            [_format_diagnostic(
                f"not a {_FORMAT} document: format={data.get('format')!r}",
                source=source,
                hint=f'the document must carry "format": "{_FORMAT}"')])
    graph = _build_graph(data, source)
    if validate:
        errors = [d for d in lint_routing_graph(graph)
                  if d.severity is Severity.ERROR]
        if errors:
            detail = "; ".join(d.render() for d in errors)
            raise RoutingFormatError(
                f"{source}: routing failed validation: {detail}", errors)
    return graph


def lint_routing_graph(graph: RoutingGraph) -> list[Diagnostic]:
    """The graph lint pass (imported lazily to keep io importable alone)."""
    from repro.analysis.graph_rules import lint_graph

    return lint_graph(graph)


def save_routing(graph: RoutingGraph, path: str | Path) -> None:
    """Write a routing graph to a JSON file."""
    Path(path).write_text(json.dumps(routing_to_dict(graph), indent=2),
                          encoding="utf-8")


def load_routing(path: str | Path, *, validate: bool = True) -> RoutingGraph:
    """Read a routing graph from a JSON file (validated by default)."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise RoutingFormatError(
            f"{path}: not valid JSON: {exc}",
            [_format_diagnostic(f"not valid JSON: {exc}",
                                source=str(path))]) from exc
    if not isinstance(data, dict):
        raise RoutingFormatError(
            f"{path}: expected a JSON object, got {type(data).__name__}",
            [_format_diagnostic(
                f"expected a JSON object, got {type(data).__name__}",
                source=str(path))])
    return routing_from_dict(data, validate=validate, source=str(path))
