"""JSON serialization of routing graphs.

A routing dict is self-contained: it embeds the net's pins, every Steiner
point's coordinates, and the edge list, so a routing can be archived and
reloaded without the original :class:`~repro.geometry.net.Net` object.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.routing_graph import RoutingGraph

_FORMAT = "repro-routing-v1"


def routing_to_dict(graph: RoutingGraph) -> dict:
    """The routing graph as a JSON-ready dict."""
    steiner = {str(node): list(graph.position(node).as_tuple())
               for node in sorted(graph.steiner)}
    return {
        "format": _FORMAT,
        "net": {
            "name": graph.net.name,
            "source": list(graph.net.source.as_tuple()),
            "sinks": [list(p.as_tuple()) for p in graph.net.sinks],
        },
        "steiner": steiner,
        "edges": sorted(graph.edges()),
    }


def routing_from_dict(data: dict) -> RoutingGraph:
    """Rebuild a routing graph from :func:`routing_to_dict` output.

    Steiner node indices are remapped densely in ascending original
    order, so round-trips preserve edge structure even if the original
    indices had gaps.
    """
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document: "
                         f"format={data.get('format')!r}")
    net_spec = data["net"]
    net = Net(source=Point(*net_spec["source"]),
              sinks=tuple(Point(*coords) for coords in net_spec["sinks"]),
              name=net_spec.get("name", "net"))
    graph = RoutingGraph(net)
    remap: dict[int, int] = {}
    for original in sorted(int(k) for k in data.get("steiner", {})):
        coords = data["steiner"][str(original)]
        remap[original] = graph.add_steiner_point(Point(*coords))
    for u, v in data["edges"]:
        graph.add_edge(remap.get(u, u), remap.get(v, v))
    return graph


def save_routing(graph: RoutingGraph, path: str | Path) -> None:
    """Write a routing graph to a JSON file."""
    Path(path).write_text(json.dumps(routing_to_dict(graph), indent=2),
                          encoding="utf-8")


def load_routing(path: str | Path) -> RoutingGraph:
    """Read a routing graph from a JSON file."""
    return routing_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
