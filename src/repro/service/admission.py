"""Bounded admission control: load-shedding instead of unbounded backlog.

A service that queues without bound does not degrade, it defers its
collapse. The admission queue here has a hard capacity: when it is
full, :meth:`AdmissionQueue.offer` raises a structured
:class:`ServiceOverload` that the daemon converts into an ``overload``
error response — the client learns *immediately* that it must back off,
and the daemon's memory stays bounded (the same discipline the
``contracts-unbounded-growth`` analyzer enforces on caches).

The queue also owns the service's draining state: once
:meth:`AdmissionQueue.close` is called (SIGTERM), new offers raise
:class:`ServiceDraining` while already-admitted requests keep flowing
to the executor until the queue is empty.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Generic, TypeVar

from repro.contracts import boundary
from repro.runtime.errors import ReproRuntimeError

T = TypeVar("T")

#: Default admission capacity (requests buffered beyond the in-flight set).
DEFAULT_CAPACITY = 64


class ServiceOverload(ReproRuntimeError):
    """The admission queue is full; the request was shed, not queued."""

    def __init__(self, capacity: int, shed_total: int):
        super().__init__(
            f"admission queue full ({capacity} pending); request shed — "
            f"back off and retry")
        self.capacity = capacity
        self.shed_total = shed_total


class ServiceDraining(ReproRuntimeError):
    """The service is draining (SIGTERM); no new work is admitted."""

    def __init__(self) -> None:
        super().__init__("service is draining; no new requests are admitted")


@dataclass
class AdmissionStats:
    """Counters the ``stats`` op reports for capacity planning.

    ``depth_high_water`` is the deepest the queue ever got — the number
    that says how close the service ran to shedding.
    """

    admitted: int = 0
    shed: int = 0
    rejected_draining: int = 0
    served: int = 0
    depth_high_water: int = 0

    def to_json_dict(self) -> dict[str, Any]:
        return {"admitted": self.admitted, "shed": self.shed,
                "rejected_draining": self.rejected_draining,
                "served": self.served,
                "depth_high_water": self.depth_high_water}


@dataclass
class AdmissionQueue(Generic[T]):
    """A thread-safe bounded FIFO with structured overload rejection.

    The reader thread(s) :meth:`offer`; the executor :meth:`take`.
    Capacity bounds only the *waiting* set — the executor has already
    taken whatever is in flight.

    Args:
        capacity: maximum queued items (>= 1).
    """

    capacity: int = DEFAULT_CAPACITY
    _items: deque[T] = field(default_factory=deque, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)
    _ready: threading.Condition = field(init=False, repr=False)
    _closed: bool = False
    stats: AdmissionStats = field(default_factory=AdmissionStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        self._ready = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def stats_snapshot(self) -> dict[str, Any]:
        """A consistent counters snapshot for stats frames.

        The reader thread assembles stats frames while the executor
        mutates the counters under :attr:`_lock`; snapshotting under
        the same lock is what keeps a frame from showing, e.g., a
        ``served`` ahead of its ``admitted``.
        """
        with self._lock:
            payload = self.stats.to_json_dict()
            payload["depth"] = len(self._items)
            return payload

    @boundary(raises=(ServiceOverload, ServiceDraining))
    def offer(self, item: T) -> None:
        """Admit one item or raise a structured rejection.

        Raises:
            ServiceOverload: the queue is at capacity (the item is shed).
            ServiceDraining: :meth:`close` has been called.
        """
        with self._lock:
            if self._closed:
                self.stats.rejected_draining += 1
                raise ServiceDraining()
            if len(self._items) >= self.capacity:
                self.stats.shed += 1
                raise ServiceOverload(self.capacity, self.stats.shed)
            self._items.append(item)
            self.stats.admitted += 1
            self.stats.depth_high_water = max(self.stats.depth_high_water,
                                              len(self._items))
            self._ready.notify()

    @boundary(raises=(ServiceDraining,))
    def requeue(self, item: T) -> None:
        """Admit one item *ignoring capacity* (WAL-replay path).

        A replayed request was already admitted by a previous daemon
        generation; shedding it now would break the write-ahead log's
        exactly-once promise, so recovery may transiently exceed the
        configured capacity by the replay depth.

        Raises:
            ServiceDraining: :meth:`close` has been called.
        """
        with self._lock:
            if self._closed:
                self.stats.rejected_draining += 1
                raise ServiceDraining()
            self._items.append(item)
            self.stats.admitted += 1
            self.stats.depth_high_water = max(self.stats.depth_high_water,
                                              len(self._items))
            self._ready.notify()

    def take(self, timeout: float | None = None) -> T | None:
        """Pop the oldest admitted item, waiting up to ``timeout``.

        Returns ``None`` on timeout or when the queue is closed *and*
        empty (the executor's signal to finish up).
        """
        with self._lock:
            deadline_passed = False
            while not self._items and not self._closed and not deadline_passed:
                deadline_passed = not self._ready.wait(timeout=timeout)
            if self._items:
                item = self._items.popleft()
                self.stats.served += 1
                return item
            return None

    def close(self) -> None:
        """Enter draining: reject new offers, keep serving the backlog."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()

    def drain_backlog(self) -> list[T]:
        """Remove and return everything still queued (drain-deadline path)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            return items
