"""Deterministic service-level fault injection.

The PR-2 chaos injector proves the *oracle* layer survives faults; the
plan here drives the faults only a long-running service can experience:

* **worker kill** — a request whose execution calls ``os._exit`` mid
  route (pool mode kills a real worker process; serial mode reports the
  simulated crash), proving the daemon replaces casualties;
* **malformed frame** — wire garbage (truncated JSON, wrong types,
  non-object frames), proving the parser answers with typed ``protocol``
  errors instead of wedging the stream;
* **deadline storm** — a burst of requests with microscopic deadlines,
  proving expiry surfaces as structured ``timeout`` errors, fast, with
  no hangs and no starvation of well-behaved requests;
* **slow client** — frames delivered byte-by-byte with delays (driven by
  the smoke harness), proving one lagging connection cannot stall the
  admission loop;
* **oracle chaos** — per-request ``raise``/``hang``/``nan`` directives
  feeding the PR-2 injector, proving retry + degradation provenance.

Everything is drawn from one seeded stream, so a failing CI run
reproduces bit-for-bit locally — the same discipline as
:mod:`repro.runtime.chaos`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.geometry.net import Net
from repro.service.session import INJECT_KILL

#: The malformed-frame corpus: each entry is one way a client can send
#: garbage. Stable order — the plan indexes into it deterministically.
MALFORMED_FRAMES: tuple[str, ...] = (
    "{\"op\": \"route\", \"net\": ",               # truncated JSON
    "not json at all",                              # not JSON
    "[1, 2, 3]",                                    # non-object frame
    "{\"op\": \"warp\"}",                           # unknown op
    "{\"op\": \"route\"}",                          # missing net
    "{\"op\": \"route\", \"net\": {\"source\": [0, 0]}}",  # missing sinks
    "{\"op\": \"route\", \"net\": {\"source\": [0], \"sinks\": [[1, 1]]}}",
    "{\"op\": \"route\", \"net\": {\"source\": [0, 0], "
    "\"sinks\": [[\"a\", 1]]}}",                    # non-numeric coords
    "{\"op\": \"route\", \"deadline\": -1, \"net\": {\"source\": [0, 0], "
    "\"sinks\": [[1, 1]]}}",                        # negative deadline
    "{\"op\": \"route\", \"id\": [1], \"net\": {\"source\": [0, 0], "
    "\"sinks\": [[1, 1]]}}",                        # bad id type
)


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Rates and determinism knobs of the service-fault stream.

    Each generated request draws once from a seeded RNG; the outcome
    selects at most one fault. Rates must sum to at most 1.

    Attributes:
        seed: seed of the fault stream (reproducibility).
        kill_rate: fraction of requests carrying a worker-kill directive.
        malformed_rate: fraction of frames replaced by wire garbage.
        storm_rate: fraction of requests given a microscopic deadline.
        chaos_rate: fraction of requests carrying an oracle-fault
            directive (``raise``/``nan``, drawn evenly).
        storm_deadline: the microscopic deadline (seconds) storm
            requests carry.
    """

    seed: int = 0
    kill_rate: float = 0.0
    malformed_rate: float = 0.0
    storm_rate: float = 0.0
    chaos_rate: float = 0.0
    storm_deadline: float = 1e-3

    def __post_init__(self) -> None:
        rates = (self.kill_rate, self.malformed_rate, self.storm_rate,
                 self.chaos_rate)
        if any(not 0.0 <= rate <= 1.0 for rate in rates):
            raise ValueError("fault rates must lie in [0, 1]")
        if sum(rates) > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.storm_deadline <= 0:
            raise ValueError("storm_deadline must be positive")

    @property
    def fault_rate(self) -> float:
        return (self.kill_rate + self.malformed_rate + self.storm_rate
                + self.chaos_rate)

    def to_json_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "kill_rate": self.kill_rate,
                "malformed_rate": self.malformed_rate,
                "storm_rate": self.storm_rate,
                "chaos_rate": self.chaos_rate,
                "storm_deadline": self.storm_deadline}


def net_frame(net: Net) -> dict[str, Any]:
    """The wire form of one net."""
    return {"name": net.name,
            "source": [net.source.x, net.source.y],
            "sinks": [[s.x, s.y] for s in net.sinks]}


@dataclass(frozen=True)
class CampaignFrame:
    """One line of a campaign stream, with exactly-once bookkeeping.

    Attributes:
        line: the raw wire line (possibly deliberate garbage).
        frame_id: the well-formed frame's ``id`` (``None`` for
            malformed lines, which the daemon answers with a null-id
            protocol error).
        duplicate_of: the ``id`` this frame duplicates (coalescing/
            warm-cache workload), or ``None`` for originals.
    """

    line: str
    frame_id: str | None
    duplicate_of: str | None = None


def build_campaign_stream(plan: ServiceFaultPlan, nets: Sequence[Net],
                          algorithm: str = "ldrg",
                          deadline: float = 30.0,
                          duplicate_every: int = 0,
                          id_prefix: str = "req") -> list[CampaignFrame]:
    """A deterministic fault stream annotated for exactly-once checks.

    Same generator as :func:`build_fault_stream` (identical RNG draw
    order, so same plan + same nets ⇒ same bytes), but each line comes
    back as a :class:`CampaignFrame` that says which ``id`` must be
    answered — the bookkeeping the kill/recover chaos campaign needs to
    assert that every admitted request is answered exactly once across
    daemon generations.
    """
    rng = random.Random(plan.seed)
    frames: list[CampaignFrame] = []
    emitted = 0
    for index, net in enumerate(nets):
        roll = rng.random()
        frame_id = f"{id_prefix}-{index}"
        frame: dict[str, Any] = {
            "op": "route", "id": frame_id, "algorithm": algorithm,
            "deadline": deadline, "net": net_frame(net),
        }
        kill_t = plan.kill_rate
        malformed_t = kill_t + plan.malformed_rate
        storm_t = malformed_t + plan.storm_rate
        chaos_t = storm_t + plan.chaos_rate
        if roll < kill_t:
            frame["inject"] = INJECT_KILL
        elif roll < malformed_t:
            frames.append(CampaignFrame(
                line=MALFORMED_FRAMES[rng.randrange(len(MALFORMED_FRAMES))],
                frame_id=None))
            continue
        elif roll < storm_t:
            frame["deadline"] = plan.storm_deadline
        elif roll < chaos_t:
            frame["inject"] = "raise" if rng.random() < 0.5 else "nan"
        frames.append(CampaignFrame(
            line=json.dumps(frame, sort_keys=True), frame_id=frame_id))
        emitted += 1
        if duplicate_every and emitted % duplicate_every == 0:
            dup = dict(frame, id=f"{frame_id}-dup")
            frames.append(CampaignFrame(
                line=json.dumps(dup, sort_keys=True),
                frame_id=f"{frame_id}-dup", duplicate_of=frame_id))
    return frames


def build_fault_stream(plan: ServiceFaultPlan, nets: Sequence[Net],
                       algorithm: str = "ldrg",
                       deadline: float = 30.0,
                       duplicate_every: int = 0) -> list[str]:
    """A deterministic JSON-lines request stream with injected faults.

    One frame per net, in order; the plan's seeded RNG decides which
    frames are sabotaged and how. ``duplicate_every`` > 0 additionally
    re-emits every Nth well-formed frame immediately (fresh ``id``),
    which is the coalescing/warm-cache workload.

    Returns:
        The request lines (no trailing newlines), ready to pipe into the
        daemon. Same plan + same nets ⇒ same bytes, always.
    """
    return [frame.line
            for frame in build_campaign_stream(
                plan, nets, algorithm=algorithm, deadline=deadline,
                duplicate_every=duplicate_every)]
