"""Per-engine circuit breakers over the oracle degradation ladder.

The resilience ladder (:mod:`repro.runtime.resilience`) already retries
and degrades *per request* — but a dead engine (ngspice binary gone,
a numerically poisoned technology corner) then costs every single
request its full retry budget before degrading, turning one sick rung
into a service-wide latency cliff. The breaker board watches outcomes
at the daemon level and, after ``failure_threshold`` *consecutive*
failures attributable to an engine, opens that engine's breaker:
subsequent requests skip the rung entirely (recorded as a
``degrade`` provenance event, so responses are marked degraded and are
never cached). After ``cooldown`` seconds the breaker goes half-open
and lets exactly one probe request try the engine again — a clean
probe closes the breaker, a failed probe re-opens it for another
cooldown.

States::

    CLOSED ── threshold consecutive failures ──▶ OPEN
    OPEN ── cooldown elapsed ──▶ HALF_OPEN (one probe dispatched)
    HALF_OPEN ── probe success ──▶ CLOSED
    HALF_OPEN ── probe failure ──▶ OPEN

Failure classification is provenance-driven: a ``degrade`` event whose
``source`` names an engine counts as that engine failing (the ladder
only degrades after exhausting retries), and a terminal
timeout/crash/``NumericalIncident``/``RetryExhausted`` outcome counts
against the request's engine of record. Breaker-originated skip events
carry a ``breaker:`` source prefix precisely so they are *not* fed back
in as failures.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.runtime.provenance import KIND_DEGRADE
from repro.runtime.trial import TrialFailure, TrialOutcome, TrialResult

#: Breaker states (wire values in daemon stats frames).
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"

#: Provenance-source prefix marking breaker-originated degrade events
#: (excluded from failure classification to avoid self-reinforcement).
BREAKER_SOURCE_PREFIX = "breaker:"

#: Terminal failure kinds / error types that count against the engine
#: of record when no finer-grained provenance attributes the failure.
_FAILURE_KINDS = frozenset({"timeout", "crash"})
_FAILURE_ERROR_TYPES = frozenset({"NumericalIncident", "RetryExhausted",
                                  "NgspiceError"})


@dataclass(frozen=True)
class BreakerPolicy:
    """Knobs of one engine's breaker (shared by the whole board).

    Attributes:
        failure_threshold: consecutive failures that open the breaker.
        cooldown: seconds an open breaker waits before half-opening.
    """

    failure_threshold: int = 5
    cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown <= 0:
            raise ValueError("cooldown must be positive")


class _Breaker:
    """State of one engine's breaker (board-internal)."""

    def __init__(self) -> None:
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probe_in_flight = False
        self.opened_total = 0

    def to_json_dict(self) -> dict[str, Any]:
        return {"state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "opened_total": self.opened_total}


class BreakerBoard:
    """Thread-safe per-engine breaker state for one daemon.

    Args:
        engines: the session's oracle ladder, best rung first.
        policy: shared breaker knobs.
        clock: monotonic clock, injectable for tests.
    """

    def __init__(self, engines: Sequence[str],
                 policy: BreakerPolicy | None = None,
                 clock: Callable[[], float] = time.monotonic):
        self.engines = tuple(engines)
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers = {engine: _Breaker() for engine in self.engines}

    # -- dispatch side ------------------------------------------------

    def open_engines(self) -> frozenset[str]:
        """Engines the next request should skip.

        Called once per dispatch. An open breaker past its cooldown
        transitions to half-open here and is *excluded* from the
        returned set exactly once — that dispatch is the probe; until
        its outcome is observed the engine stays skipped for everyone
        else.
        """
        skip: set[str] = set()
        now = self._clock()
        with self._lock:
            for engine, breaker in self._breakers.items():
                if breaker.state == STATE_OPEN:
                    if now - breaker.opened_at >= self.policy.cooldown:
                        breaker.state = STATE_HALF_OPEN
                        breaker.probe_in_flight = True
                        continue  # this caller probes the engine
                    skip.add(engine)
                elif breaker.state == STATE_HALF_OPEN:
                    if breaker.probe_in_flight:
                        skip.add(engine)
                    else:
                        breaker.probe_in_flight = True
        return frozenset(skip)

    def engine_of_record(self, skip: frozenset[str]) -> str:
        """The rung a request dispatched with ``skip`` actually leads on."""
        for engine in self.engines:
            if engine not in skip:
                return engine
        return self.engines[-1]

    # -- observation side ---------------------------------------------

    def observe(self, outcome: TrialOutcome, engine_of_record: str) -> None:
        """Feed one settled outcome back into the board.

        Provenance ``degrade`` events attribute failures to the engines
        that exhausted their retries; a clean result credits the engine
        that produced the number; terminal failures debit the engine of
        record.
        """
        if isinstance(outcome, TrialResult):
            answering = engine_of_record
            for event in outcome.provenance:
                if event.kind != KIND_DEGRADE:
                    continue
                if event.source.startswith(BREAKER_SOURCE_PREFIX):
                    # A breaker-originated skip moved the engine of
                    # record down a rung; that is not a fresh failure.
                    answering = _engine_name(event.target)
                    continue
                self.record_failure(_engine_name(event.source))
                answering = _engine_name(event.target)
            self.record_success(answering)
            return
        if isinstance(outcome, TrialFailure):
            if outcome.kind in _FAILURE_KINDS or (
                    outcome.error_type in _FAILURE_ERROR_TYPES):
                self.record_failure(engine_of_record)

    def record_failure(self, engine: str) -> None:
        with self._lock:
            breaker = self._breakers.get(engine)
            if breaker is None:
                return
            if breaker.state == STATE_HALF_OPEN:
                self._trip(breaker)
            elif breaker.state == STATE_CLOSED:
                breaker.consecutive_failures += 1
                if (breaker.consecutive_failures
                        >= self.policy.failure_threshold):
                    self._trip(breaker)

    def record_success(self, engine: str) -> None:
        with self._lock:
            breaker = self._breakers.get(engine)
            if breaker is None:
                return
            breaker.state = STATE_CLOSED
            breaker.consecutive_failures = 0
            breaker.probe_in_flight = False

    def _trip(self, breaker: _Breaker) -> None:
        breaker.state = STATE_OPEN
        breaker.opened_at = self._clock()
        breaker.opened_total += 1
        breaker.probe_in_flight = False
        breaker.consecutive_failures = 0

    # -- reporting ----------------------------------------------------

    def state_of(self, engine: str) -> str:
        with self._lock:
            breaker = self._breakers.get(engine)
            return STATE_CLOSED if breaker is None else breaker.state

    def to_json_dict(self) -> dict[str, Any]:
        with self._lock:
            return {engine: breaker.to_json_dict()
                    for engine, breaker in self._breakers.items()}


def _engine_name(model_name: str) -> str:
    """Ladder-model name → configured engine name (``spice-X`` → ``X``)."""
    if model_name.startswith("spice-"):
        return model_name[len("spice-"):]
    return model_name
