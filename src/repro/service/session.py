"""Per-request routing sessions: deadlines, retries, degradation, caching.

One ``route`` request becomes one *session*: the request's net is routed
under a wall-clock deadline (the runtime pool's ``trial_deadline``),
with transient oracle faults retried via :mod:`repro.runtime.retry` and
engine failures degraded down the ngspice→transient→analytic ladder —
every retry and every degradation landing as provenance on the
response, so a client can never receive a degraded number without being
told.

Sessions are keyed by a *config fingerprint* digesting everything that
determines the answer (net geometry, algorithm, oracle segmentation,
engine ladder, technology, chaos policy). The fingerprint drives two
layers of warmth: the journal-backed
:class:`~repro.runtime.journal.ResultCache` (identical requests are
served without routing at all) and, beneath it, the PR-3 delay memo
(structurally identical graphs share oracle evaluations when the
configured oracle is pure).

:func:`run_route_task` is the module-level pool entry point — picklable,
so the daemon's worker-pool mode ships requests to isolated processes
where a kill or hang costs one request, never the daemon.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.contracts import boundary
from repro.core import (
    RoutingResult,
    csorg_ldrg,
    ert,
    ert_ldrg,
    h1,
    h2,
    h3,
    ldrg,
    sert,
    sldrg,
)
from repro.delay.models import DelayModel, SpiceDelayModel
from repro.delay.parameters import Technology
from repro.delay.spice_delay import SpiceOptions
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.guard.incidents import KIND_FALLBACK, record_event
from repro.runtime import provenance
from repro.runtime.provenance import KIND_DEGRADE
from repro.runtime.chaos import ChaosDelayModel, ChaosPolicy
from repro.runtime.journal import ResultCache, fingerprint
from repro.runtime.pool import trial_deadline
from repro.runtime.resilience import ResilientDelayModel, build_engine_ladder
from repro.runtime.retry import RetryPolicy
from repro.runtime.trial import (
    FAILURE_CRASH,
    TrialFailure,
    TrialOutcome,
    TrialResult,
)
from repro.service.protocol import (
    ERROR_CRASH,
    ERROR_DRAINED,
    ERROR_EXCEPTION,
    ERROR_TIMEOUT,
    ProtocolError,
    Request,
    error_response,
    ok_response,
)

#: The service's routing algorithms (the paper's nine).
ALGORITHMS: dict[str, Callable[[Net, Technology, DelayModel],
                               RoutingResult]] = {
    "ldrg": lambda net, tech, model: ldrg(net, tech, delay_model=model),
    "sldrg": lambda net, tech, model: sldrg(net, tech, delay_model=model),
    "h1": lambda net, tech, model: h1(net, tech, delay_model=model),
    "h2": lambda net, tech, model: h2(net, tech, evaluation_model=model),
    "h3": lambda net, tech, model: h3(net, tech, evaluation_model=model),
    "ert": lambda net, tech, model: ert(net, tech, evaluation_model=model),
    "ert-ldrg": lambda net, tech, model: ert_ldrg(net, tech,
                                                  delay_model=model),
    "sert": lambda net, tech, model: sert(net, tech,
                                          evaluation_model=model),
    "csorg": lambda net, tech, model: csorg_ldrg(net, tech,
                                                 delay_model=model),
}

#: TrialFailure kind → wire error kind (identical taxonomy by design).
_FAILURE_TO_ERROR = {
    "exception": ERROR_EXCEPTION,
    "timeout": ERROR_TIMEOUT,
    "crash": ERROR_CRASH,
    "drained": ERROR_DRAINED,
}

#: Fault-injection directives a request may carry (gated by config).
INJECT_KILL = "kill-worker"
INJECT_DIRECTIVES = (INJECT_KILL, "raise", "hang", "nan")


@dataclass(frozen=True)
class SessionConfig:
    """Everything a session needs to execute one request — picklable.

    Attributes:
        tech: interconnect technology of every routed net.
        segments: default pi-sections per wire in the delay oracle
            (requests may override per-frame).
        engines: oracle ladder in decreasing fidelity order; a single
            in-process engine with no chaos runs *unwrapped* (pure, so
            the PR-3 delay memo applies), anything else runs behind the
            retry + degradation ladder.
        retry: backoff policy for transient oracle faults.
        chaos: deterministic fault injection on the engine of record
            (``None`` disables).
        default_deadline: per-request budget (seconds) when the frame
            names none.
        max_deadline: hard ceiling a frame's ``deadline`` is clamped to.
        enable_fault_injection: honor per-request ``inject`` directives
            (tests and the smoke harness only — never production).
        multinet: answer eligible greedy requests (ldrg/sldrg, no fault
            directives) with the fleet-scale graph-Elmore backend
            (:mod:`repro.delay.multinet`), batching queued requests into
            stacked evaluations. This *changes the oracle* for those
            requests — from the SPICE ladder to graph-Elmore — so the
            flag is part of every request fingerprint; ineligible
            requests take the ordinary per-net path with a recorded
            :data:`~repro.guard.incidents.KIND_FALLBACK` event.
    """

    tech: Technology = field(default_factory=Technology.cmos08)
    segments: int = 1
    engines: tuple[str, ...] = ("transient", "analytic")
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    chaos: ChaosPolicy | None = None
    default_deadline: float = 30.0
    max_deadline: float = 300.0
    enable_fault_injection: bool = False
    multinet: bool = False

    def __post_init__(self) -> None:
        if self.segments < 1:
            raise ValueError("segments must be >= 1")
        if not self.engines:
            raise ValueError("need at least one oracle engine")
        if self.default_deadline <= 0 or self.max_deadline <= 0:
            raise ValueError("deadlines must be positive")

    def deadline_for(self, request: Request) -> float:
        """The request's effective budget: frame value clamped to the cap."""
        wanted = (request.deadline if request.deadline is not None
                  else self.default_deadline)
        return min(wanted, self.max_deadline)

    def fingerprint_data(self) -> dict[str, Any]:
        """The config components of every request fingerprint."""
        return {
            "segments": self.segments,
            "engines": list(self.engines),
            "tech": dataclasses.asdict(self.tech),
            "chaos": (None if self.chaos is None
                      else self.chaos.to_json_dict()),
            "multinet": self.multinet,
        }


def request_fingerprint(request: Request, config: SessionConfig) -> str:
    """Stable digest of everything that determines a route response.

    Identical fingerprints get identical answers, so this is the
    coalescing key and the warm-cache key. Request ``id`` and
    ``deadline`` are deliberately excluded — they change delivery, not
    the answer.
    """
    net = request.net
    assert net is not None, "fingerprint is only defined for route requests"
    payload = dict(config.fingerprint_data())
    payload.update({
        "algorithm": request.algorithm,
        "net": {
            "source": [net.source.x, net.source.y],
            "sinks": [[s.x, s.y] for s in net.sinks],
        },
        "segments_override": request.segments,
        "inject": request.inject,
    })
    return fingerprint(payload)


def effective_engines(engines: Sequence[str],
                      skip_engines: frozenset[str]) -> tuple[str, ...]:
    """The ladder with breaker-opened rungs removed (never emptied).

    The last configured rung is the engine of last resort: even with
    its breaker open it stays reachable, because answering degraded
    beats not answering at all.
    """
    kept = tuple(e for e in engines if e not in skip_engines)
    return kept if kept else tuple(engines[-1:])


def build_model(config: SessionConfig, request: Request,
                skip_engines: frozenset[str] = frozenset()) -> DelayModel:
    """The request's delay oracle: plain, or the hardened ladder.

    A single in-process engine with no fault injection is returned
    unwrapped — it is pure, so the candidate evaluators memoize it and
    identical nets share oracle work across requests. Chaos, an
    ``inject`` directive, or a multi-rung ladder (including ngspice)
    switches to :class:`~repro.runtime.ResilientDelayModel`: bounded
    retries per rung, degradation with provenance between rungs.

    ``skip_engines`` names rungs whose circuit breaker is open
    (:mod:`repro.service.breaker`): each skipped rung is dropped from
    the ladder with a recorded ``degrade`` provenance event whose
    source carries the ``breaker:`` prefix — the response is therefore
    marked degraded and never cached, and the board does not mistake
    the skip for a fresh engine failure.
    """
    engines = config.engines
    if skip_engines:
        kept = effective_engines(engines, skip_engines)
        for engine in engines:
            if engine not in kept:
                record_event(
                    KIND_DEGRADE, source=f"breaker:{engine}",
                    target=kept[0],
                    detail="circuit breaker open; rung skipped without "
                           "spending its retry budget")
        engines = kept
    segments = (request.segments if request.segments is not None
                else config.segments)
    opts = SpiceOptions(segments=segments)
    chaos = _effective_chaos(config, request)
    if (len(engines) == 1 and engines[0] != "ngspice"
            and chaos is None):
        base = SpiceOptions(segments=segments, engine=engines[0])
        model: DelayModel = SpiceDelayModel(config.tech, base)
        model.name = f"spice-{engines[0]}"
        return model
    ladder = build_engine_ladder(config.tech, opts, engines)
    if chaos is not None:
        net = request.net
        salt = net.name if net is not None else ""
        ladder[0] = ChaosDelayModel(ladder[0], chaos, salt=salt)
    return ResilientDelayModel(ladder, retry=config.retry)


def _effective_chaos(config: SessionConfig,
                     request: Request) -> ChaosPolicy | None:
    """The chaos policy in force: config-wide, or a per-request directive."""
    if config.enable_fault_injection:
        seed = config.chaos.seed if config.chaos is not None else 0
        if request.inject == "raise":
            return ChaosPolicy(seed=seed, raise_rate=1.0)
        if request.inject == "hang":
            return ChaosPolicy(seed=seed, hang_rate=1.0)
        if request.inject == "nan":
            return ChaosPolicy(seed=seed, nan_rate=1.0)
    return config.chaos


def route_outcome(request: Request, config: SessionConfig,
                  budget: float | None,
                  skip_engines: frozenset[str] = frozenset()
                  ) -> TrialOutcome:
    """Route one net under a deadline, returning a structured outcome.

    This is the serial (in-daemon) execution path: it runs on the main
    thread so ``trial_deadline`` can arm ``SIGALRM``. Nothing escapes —
    any exception, timeout included, lands as a
    :class:`~repro.runtime.trial.TrialFailure`.
    """
    if (config.enable_fault_injection and request.inject == INJECT_KILL):
        # In-process execution cannot survive a genuine kill (it would
        # take the daemon down); the serial path reports the crash the
        # pool path would observe.
        return TrialFailure(
            kind=FAILURE_CRASH, error_type="WorkerCrash",
            message="injected worker kill (serial mode: simulated crash)")
    start = time.perf_counter()
    try:
        with provenance.collecting() as events:
            with trial_deadline(budget):
                result = _route(request, config, skip_engines)
        return TrialResult.from_routing(
            result, provenance=tuple(events),
            elapsed=time.perf_counter() - start)
    except Exception as exc:
        return TrialFailure.from_exception(
            exc, elapsed=time.perf_counter() - start)


#: Algorithms with a fleet-batched graph-Elmore form (greedy edge
#: addition — the only methods with a generation loop to stack).
MULTINET_ALGORITHMS: tuple[str, ...] = ("ldrg", "sldrg")


def multinet_eligible(request: Request, config: SessionConfig) -> bool:
    """Whether a ``--multinet`` daemon may batch this request.

    Only the greedy edge-addition algorithms have a stacked form, and
    the fleet path is the pure in-process graph-Elmore oracle — chaos
    and fault-injection directives have no SPICE seam to act on there,
    so their presence forces the ordinary per-net path.
    """
    return (config.multinet
            and request.net is not None
            and request.algorithm in MULTINET_ALGORITHMS
            and request.inject is None
            and config.chaos is None)


def route_fleet_outcomes(requests: Sequence[Request], config: SessionConfig,
                         budget: float | None) -> list[TrialOutcome]:
    """Route a batch of eligible requests as one stacked fleet.

    The daemon's ``--multinet`` batch path: the queued requests' greedy
    generations are scored by stacked linear-algebra calls
    (:func:`repro.delay.multinet.route_fleet`), grouped per algorithm.
    Provenance is batch-scoped by construction — stacked execution is
    shared state (a factorization fallback genuinely affects every
    member), so each response carries the batch's full event list. A
    fleet-level failure falls back to routing each member alone through
    the same backend, with a recorded
    :data:`~repro.guard.incidents.KIND_FALLBACK` event, so one poisoned
    net cannot fail its batch-mates.
    """
    start = time.perf_counter()
    try:
        with provenance.collecting() as events:
            with trial_deadline(budget):
                results = _route_fleet(requests, config)
        elapsed = time.perf_counter() - start
        shared = tuple(events)
        return [TrialResult.from_routing(result, provenance=shared,
                                         elapsed=elapsed)
                for result in results]
    except Exception:
        return [_route_fleet_member(request, config, budget)
                for request in requests]


def _route_fleet_member(request: Request, config: SessionConfig,
                        budget: float | None) -> TrialOutcome:
    """Fleet-of-one salvage path after a batched fleet failed."""
    start = time.perf_counter()
    try:
        with provenance.collecting() as events:
            record_event(
                KIND_FALLBACK, source="service-multinet",
                target="fleet-of-one",
                detail="batched fleet raised; this member re-routed alone "
                       "on the same graph-Elmore backend")
            with trial_deadline(budget):
                result = _route_fleet([request], config)[0]
        return TrialResult.from_routing(
            result, provenance=tuple(events),
            elapsed=time.perf_counter() - start)
    except Exception as exc:
        return TrialFailure.from_exception(
            exc, elapsed=time.perf_counter() - start)


def _route_fleet(requests: Sequence[Request],
                 config: SessionConfig) -> list[RoutingResult]:
    """Route eligible requests through the stacked backend, in order."""
    # Local imports: the delay layer's fleet module pulls in the full
    # linear-algebra stack, which a daemon not running --multinet never
    # needs.
    from repro.delay.multinet import route_fleet
    from repro.graph.steiner import iterated_one_steiner

    results: list[RoutingResult | None] = [None] * len(requests)
    by_algorithm: dict[str, list[int]] = {}
    for index, request in enumerate(requests):
        by_algorithm.setdefault(request.algorithm, []).append(index)
    for algorithm, indices in by_algorithm.items():
        nets: list[Net] = []
        for index in indices:
            net = requests[index].net
            assert net is not None, "fleet requests always carry a net"
            nets.append(net)
        # LDRG starts from the MST (route_fleet builds it); SLDRG starts
        # from the iterated-one-Steiner tree, as its sequential driver
        # does.
        starts: list[Any] = (
            [iterated_one_steiner(net) for net in nets]
            if algorithm == "sldrg" else list(nets))
        routed = route_fleet(starts, config.tech, algorithm=algorithm)
        for index, result in zip(indices, routed):
            results[index] = result
    return [result for result in results if result is not None]


def run_route_task(frame: Mapping[str, Any], config: SessionConfig,
                   skip_engines: frozenset[str] = frozenset()
                   ) -> TrialResult:
    """Pool-worker entry point: route one request frame or raise.

    Module-level (hence picklable); the worker pool converts exceptions
    and timeouts to structured failures, and an injected worker kill
    here really does kill the worker process — the daemon observes a
    ``crash`` outcome and replaces the worker, which is exactly the
    fault the harness wants to prove survivable. ``skip_engines`` is
    the dispatching daemon's snapshot of open circuit breakers.
    """
    request = _request_from_task_frame(frame)
    if config.enable_fault_injection and request.inject == INJECT_KILL:
        os._exit(42)
    with provenance.collecting() as events:
        result = _route(request, config, skip_engines)
    return TrialResult.from_routing(result, provenance=tuple(events))


def wire_frame(request: Request) -> dict[str, Any]:
    """The request's full wire form, re-parseable by ``parse_frame``.

    This is what the write-ahead log journals: a recovering daemon
    re-parses it through the same validation path as live traffic, so
    a WAL entry can never smuggle in a frame the protocol would have
    rejected.
    """
    net = request.net
    assert net is not None, "only route requests are journaled"
    frame: dict[str, Any] = {
        "op": "route", "id": request.id, "algorithm": request.algorithm,
        "net": {"name": net.name,
                "source": [net.source.x, net.source.y],
                "sinks": [[s.x, s.y] for s in net.sinks]},
    }
    if request.deadline is not None:
        frame["deadline"] = request.deadline
    if request.segments is not None:
        frame["segments"] = request.segments
    if request.inject is not None:
        frame["inject"] = request.inject
    return frame


def task_frame(request: Request) -> dict[str, Any]:
    """The picklable frame ``run_route_task`` rebuilds a request from."""
    net = request.net
    assert net is not None
    return {
        "id": request.id,
        "algorithm": request.algorithm,
        "segments": request.segments,
        "inject": request.inject,
        "net": {"name": net.name,
                "source": [net.source.x, net.source.y],
                "sinks": [[s.x, s.y] for s in net.sinks]},
    }


def _request_from_task_frame(frame: Mapping[str, Any]) -> Request:
    net_data = frame["net"]
    net = Net(source=_point(net_data["source"]),
              sinks=tuple(_point(s) for s in net_data["sinks"]),
              name=str(net_data.get("name", "net")))
    segments = frame.get("segments")
    return Request(op="route", id=frame.get("id"), net=net,
                   algorithm=str(frame["algorithm"]),
                   segments=None if segments is None else int(segments),
                   inject=frame.get("inject"))


def _point(raw: Any) -> Point:
    return Point(float(raw[0]), float(raw[1]))


def _route(request: Request, config: SessionConfig,
           skip_engines: frozenset[str] = frozenset()) -> RoutingResult:
    net = request.net
    if net is None:
        raise ProtocolError("route request carries no net")
    try:
        algorithm = ALGORITHMS[request.algorithm]
    except KeyError:
        raise ProtocolError(
            f"unknown algorithm {request.algorithm!r}; expected one of "
            f"{', '.join(sorted(ALGORITHMS))}",
            frame_id=request.id) from None
    if config.multinet and not multinet_eligible(request, config):
        # A --multinet daemon answering on the per-net SPICE path is a
        # degradation of its batching promise; say so on the response.
        record_event(
            KIND_FALLBACK, source=f"service:{request.algorithm}",
            target="per-net",
            detail="request not fleet-eligible (algorithm, chaos, or "
                   "inject directive); served on the per-net path")
    model = build_model(config, request, skip_engines)
    return algorithm(net, config.tech, model)


@boundary(raises=())
def execute_request(request: Request, config: SessionConfig,
                    cache: ResultCache | None = None,
                    budget: float | None = None) -> dict[str, Any]:
    """The full serial path: cache lookup → route → cache fill → frame.

    A *total* boundary: every failure mode becomes a structured error
    frame, nothing raises. ``budget`` is the remaining wall-clock budget
    (queue wait already subtracted); ``None`` means the config default.
    """
    if budget is None:
        budget = config.deadline_for(request)
    fp = request_fingerprint(request, config)
    if cache is not None:
        warm = cache.lookup_cached(fp)
        if warm is not None:
            return ok_response(request.id, "route",
                               dict(warm, fingerprint=fp, cached=True))
    outcome = route_outcome(request, config, budget)
    return outcome_to_response(request, fp, outcome, cache=cache)


def outcome_to_response(request: Request, fp: str, outcome: TrialOutcome,
                        cache: ResultCache | None = None,
                        coalesced: bool = False) -> dict[str, Any]:
    """Project a trial outcome onto the wire, filling the warm cache.

    Only clean (non-degraded) successes are cached: a degraded number is
    correct *for that moment's* engine availability and must not be
    replayed after the engine of record recovers.
    """
    if isinstance(outcome, TrialResult):
        body = {
            "fingerprint": fp,
            "cached": False,
            "coalesced": coalesced,
            "degraded": outcome.degraded,
            "engine": outcome.model,
            "elapsed": outcome.elapsed,
            "result": {
                "algorithm": outcome.algorithm,
                "delay": outcome.delay,
                "cost": outcome.cost,
                "base_delay": outcome.base_delay,
                "base_cost": outcome.base_cost,
                "delay_ratio": outcome.delay_ratio,
                "cost_ratio": outcome.cost_ratio,
                "improved": outcome.improved,
                "num_added_edges": outcome.num_added_edges,
            },
            "provenance": [e.to_json_dict() for e in outcome.provenance],
        }
        if cache is not None and not outcome.degraded:
            cacheable = dict(body)
            cacheable.pop("coalesced")
            try:
                cache.store(fp, cacheable)
            except OSError:  # repro: allow=contracts-broad-catch-swallow — a full disk must degrade the cache, not fail the request that already computed successfully
                pass
        return ok_response(request.id, "route", body)
    kind = _FAILURE_TO_ERROR.get(outcome.kind, ERROR_EXCEPTION)
    return error_response(
        request.id, kind, outcome.error_type, outcome.message,
        extra={"fingerprint": fp, "coalesced": coalesced,
               "elapsed": outcome.elapsed,
               "provenance": [e.to_json_dict()
                              for e in outcome.provenance]})
