"""Write-ahead request log: no admitted request is ever silently lost.

The PR-2 trial journal makes *sweeps* crash-safe; this module does the
same for the *service*. Every admitted route frame is appended to an
append-only JSON-lines log (``wal.jsonl`` in the daemon's run
directory) **before** execution, and marked with a terminal ``done``
record **after** its response has been handed to the transport. A
daemon killed at any instant therefore leaves a log from which the next
generation can reconstruct exactly which requests were admitted but
never answered — ``repro serve --recover RUN_DIR`` re-enqueues those,
answering already-completed fingerprints from the warm
:class:`~repro.runtime.journal.ResultCache`, so recovery is idempotent
and exactly-once from the client's point of view.

Durability discipline mirrors :mod:`repro.runtime.journal`: each append
is flushed and fsynced before the admit/done call returns, and startup
compaction rewrites the log through
:func:`~repro.runtime.journal.atomic_write_text` (tmp + fsync +
``os.replace`` + directory fsync), so a crash mid-compaction can never
destroy the only copy. A torn final line — the signature of dying mid
``write`` — is tolerated on load and reported, not raised.

Record shapes (one JSON object per line)::

    {"v": 1, "type": "admitted", "seq": 7, "fp": "…", "frame": {…}}
    {"v": 1, "type": "done", "seq": 7, "status": "ok"}

``seq`` is a monotonically increasing per-log sequence number;
``frame`` is the request's wire form, re-parseable by
:func:`~repro.service.protocol.parse_frame`. ``status`` is the
response's disposition (``ok``, an error kind, or ``rejected`` for
frames shed at admission after logging).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.contracts import boundary
from repro.runtime.journal import atomic_write_text

#: WAL format version, bumped on incompatible record changes.
WAL_VERSION = 1

#: The log's file name inside a run directory.
WAL_FILENAME = "wal.jsonl"


def wal_path(run_dir: Path) -> Path:
    return Path(run_dir) / WAL_FILENAME


@dataclass(frozen=True)
class PendingEntry:
    """One admitted-but-unanswered request reconstructed from the log."""

    seq: int
    fingerprint: str
    frame: dict[str, Any]


@dataclass(frozen=True)
class WalReplay:
    """What :func:`load_pending` found in a run directory's log.

    Attributes:
        pending: admitted entries with no terminal record, in admission
            order — the requests a recovering daemon must re-enqueue.
        next_seq: first unused sequence number for the next generation.
        records: well-formed records seen (admitted + done).
        completed: admitted entries that do have a terminal record.
        corrupt_lines: unparseable or torn lines skipped on load.
    """

    pending: tuple[PendingEntry, ...]
    next_seq: int
    records: int
    completed: int
    corrupt_lines: int


class RequestWAL:
    """Append-only write-ahead log of admitted request frames.

    Thread-safe: reader threads :meth:`admit` while the executor thread
    marks :meth:`done`; one lock serializes appends so records are
    never interleaved mid-line.

    Args:
        run_dir: directory holding ``wal.jsonl`` (created if missing).
        next_seq: first sequence number to hand out (a recovering
            daemon passes :attr:`WalReplay.next_seq`).
        fail_after: chaos hook — the append with this 0-based index
            raises :class:`OSError` (one-shot disk-full simulation);
            ``None`` disables.
    """

    def __init__(self, run_dir: Path, next_seq: int = 0,
                 fail_after: int | None = None):
        self.run_dir = Path(run_dir)
        self.path = wal_path(self.run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._next_seq = next_seq
        self._appends = 0
        self._fail_after = fail_after
        self.errors = 0

    @boundary(raises=(OSError,))
    def admit(self, frame: Mapping[str, Any], fingerprint: str) -> int:
        """Durably record one admitted frame; returns its sequence number.

        Raises:
            OSError: the record could not be made durable (disk full,
                permissions). The caller decides availability-vs-
                durability — the daemon serves the request anyway and
                counts the error.
        """
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            self._append({"v": WAL_VERSION, "type": "admitted", "seq": seq,  # repro: allow=interlock-blocking-under-lock — fsync under the WAL lock is the point: appends must hit the log in sequence order, and this lock serializes nothing but the append itself
                          "fp": fingerprint, "frame": dict(frame)})
            return seq

    @boundary(raises=(OSError,))
    def done(self, seq: int, status: str) -> None:
        """Durably record the terminal disposition of entry ``seq``."""
        with self._lock:
            self._append({"v": WAL_VERSION, "type": "done", "seq": seq,  # repro: allow=interlock-blocking-under-lock — same serialized-append contract as admit: the fsync *is* the critical section
                          "status": status})

    def _append(self, record: dict[str, Any]) -> None:
        index = self._appends
        self._appends += 1
        if self._fail_after is not None and index == self._fail_after:
            self.errors += 1
            raise OSError(28, "injected WAL write failure (disk full)")
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        try:
            fd = os.open(self.path,
                         os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        except OSError:
            self.errors += 1
            raise
        try:
            os.write(fd, line.encode("utf-8"))
            os.fsync(fd)
        except OSError:
            self.errors += 1
            raise
        finally:
            os.close(fd)


def load_pending(run_dir: Path) -> WalReplay:
    """Reconstruct the admitted-but-unanswered set from a run directory.

    Tolerant by design: a missing log means an empty replay; torn or
    corrupt lines (the tail a crash can leave) are skipped and counted,
    never raised — losing the torn *admitted* line means that request
    was never durably admitted, which the client-side retry contract
    already covers.
    """
    path = wal_path(Path(run_dir))
    admitted: dict[int, PendingEntry] = {}
    finished: set[int] = set()
    corrupt = 0
    records = 0
    max_seq = -1
    try:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
    except FileNotFoundError:
        raw_lines = []
    for raw in raw_lines:
        if not raw.strip():
            continue
        try:
            record = json.loads(raw)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
            kind = record["type"]
            seq = int(record["seq"])
            if kind == "admitted":
                frame = record["frame"]
                if not isinstance(frame, dict):
                    raise ValueError("'frame' is not an object")
                admitted[seq] = PendingEntry(
                    seq=seq, fingerprint=str(record["fp"]), frame=frame)
            elif kind == "done":
                finished.add(seq)
            else:
                raise ValueError(f"unknown record type {kind!r}")
        except (ValueError, KeyError, TypeError):  # torn/corrupt line (expected after SIGKILL mid-append): counted and skipped
            corrupt += 1
            continue
        records += 1
        max_seq = max(max_seq, seq)
    pending = tuple(entry for seq, entry in sorted(admitted.items())
                    if seq not in finished)
    completed = sum(1 for seq in admitted if seq in finished)
    return WalReplay(pending=pending, next_seq=max_seq + 1,
                     records=records, completed=completed,
                     corrupt_lines=corrupt)


@boundary(raises=(OSError,))
def compact(run_dir: Path, replay: WalReplay) -> None:
    """Atomically rewrite the log to just the still-pending entries.

    Run at recovery startup, before the new generation appends: settled
    admitted/done pairs and corrupt tails are dropped, pending entries
    keep their original sequence numbers (so ``done`` records written
    by the new generation still pair up). The rewrite goes through the
    PR-2 atomic-write idiom, so a crash mid-compaction leaves either
    the old log or the new one — never a mix, never nothing.
    """
    lines = [json.dumps({"v": WAL_VERSION, "type": "admitted",
                         "seq": entry.seq, "fp": entry.fingerprint,
                         "frame": entry.frame},
                        sort_keys=True, separators=(",", ":"))
             for entry in replay.pending]
    atomic_write_text(wal_path(Path(run_dir)),
                      "".join(line + "\n" for line in lines))
