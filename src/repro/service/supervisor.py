"""The daemon's keeper: spawn, watch, restart, and know when to stop.

``repro serve --supervised`` runs this parent process instead of the
daemon itself. The supervisor spawns the daemon as a child (stdio
inherited, so the JSON-lines pipes — and any bytes buffered in them —
survive child death), then watches two signals:

* **crash** — the child process exits with a nonzero status;
* **hang** — the child's heartbeat file (touched by the daemon every
  ``ServiceConfig.heartbeat_interval`` seconds) goes stale for longer
  than ``heartbeat_timeout``; the supervisor SIGKILLs the wedged child
  and treats it as a crash.

Either way the child is restarted after a seeded exponential backoff —
with ``--run-dir`` state (write-ahead log, warm cache) intact, the new
generation replays every admitted-but-unanswered request via
``--recover``. A *crash loop* (more than ``restart_budget`` restarts
inside ``restart_window`` seconds) means restarts are not helping: the
supervisor writes a structured ``supervisor-giveup.json``, prints one
structured JSON line to stderr, and exits **3** (the CLI's
guard-incident code: the operator must intervene).

A clean child exit (0 — EOF drain or SIGTERM drain) ends supervision
with exit 0. SIGTERM/SIGINT to the supervisor are forwarded to the
child as SIGTERM, so the whole tree drains gracefully as one unit.

Every lifecycle decision is appended to ``supervisor.log.jsonl`` in the
run directory (one JSON object per line), so a post-mortem can replay
exactly what the supervisor saw.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.contracts import boundary
from repro.runtime.journal import atomic_write_text
from repro.runtime.retry import RetryPolicy

#: Exit status of a supervisor that gave up on a crash-looping child.
EXIT_GIVE_UP = 3

#: Files the supervisor shares with the daemon inside the run directory.
HEARTBEAT_FILENAME = "heartbeat"
PID_FILENAME = "daemon.pid"
GIVEUP_FILENAME = "supervisor-giveup.json"
LOG_FILENAME = "supervisor.log.jsonl"


def _default_backoff() -> RetryPolicy:
    return RetryPolicy(max_attempts=16, base_delay=0.1, multiplier=2.0,
                       max_delay=5.0, jitter=0.5, seed=0)


@dataclass(frozen=True)
class SupervisorPolicy:
    """Restart discipline of one supervisor.

    Attributes:
        restart_budget: restarts allowed inside ``restart_window``
            before the supervisor gives up (exit 3).
        restart_window: the crash-loop window, seconds.
        heartbeat_timeout: seconds of heartbeat staleness that declare
            the child hung (``0`` disables hang detection).
        poll_interval: child/heartbeat poll tick, seconds.
        backoff: seeded backoff between restarts (delays are drawn in
            order per restart-within-window, so reruns are
            reproducible).
    """

    restart_budget: int = 5
    restart_window: float = 60.0
    heartbeat_timeout: float = 10.0
    poll_interval: float = 0.1
    backoff: RetryPolicy = field(default_factory=_default_backoff)

    def __post_init__(self) -> None:
        if self.restart_budget < 1:
            raise ValueError("restart_budget must be >= 1")
        if self.restart_window <= 0:
            raise ValueError("restart_window must be positive")
        if self.heartbeat_timeout < 0:
            raise ValueError("heartbeat_timeout must be non-negative")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")


class Supervisor:
    """Spawn-and-watch loop around one daemon command line.

    Args:
        child_argv: the daemon command (already carrying ``--run-dir``
            and ``--recover``; the supervisor never edits it, so every
            generation starts identically).
        run_dir: shared state directory (heartbeat, WAL, logs).
        policy: restart discipline.
        sleep: injectable sleep (tests compress the backoff).
    """

    def __init__(self, child_argv: Sequence[str], run_dir: Path,
                 policy: SupervisorPolicy | None = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.child_argv = list(child_argv)
        self.run_dir = Path(run_dir)
        self.policy = policy if policy is not None else SupervisorPolicy()
        self._sleep = sleep
        self._stop_requested = False
        self._child: subprocess.Popen[bytes] | None = None
        self._spawned_at = 0.0
        self.generation = 0
        self.restarts_total = 0

    # -- lifecycle ----------------------------------------------------

    @boundary(raises=(OSError, subprocess.TimeoutExpired))
    def run(self) -> int:
        """Supervise until clean exit, forwarded shutdown, or give-up."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        previous = self._install_signal_forwarding()
        #: Restart wall-clock stamps inside the current window.
        recent: list[float] = []
        delays = list(self.policy.backoff.backoff_delays())
        try:
            while True:
                child = self._spawn()
                exit_code, hung = self._watch(child)
                if self._stop_requested:
                    self._log({"event": "stopped", "exit_code": exit_code,
                               "generation": self.generation})
                    return exit_code
                if exit_code == 0 and not hung:
                    self._log({"event": "clean-exit",
                               "generation": self.generation})
                    return 0
                now = time.monotonic()
                recent = [t for t in recent
                          if now - t <= self.policy.restart_window]
                if len(recent) >= self.policy.restart_budget:
                    return self._give_up(exit_code, hung, len(recent))
                recent.append(now)
                self.restarts_total += 1
                delay = (delays[min(len(recent) - 1, len(delays) - 1)]
                         if delays else 0.0)
                self._log({"event": "restart",
                           "generation": self.generation,
                           "exit_code": exit_code, "hung": hung,
                           "backoff_s": delay,
                           "restarts_in_window": len(recent)})
                if delay > 0:
                    self._sleep(delay)
                self.generation += 1
        finally:
            self._restore_signal_forwarding(previous)

    def _spawn(self) -> "subprocess.Popen[bytes]":
        # stdio is inherited on purpose: the request/response pipes
        # belong to the supervisor's caller and must survive child
        # death, so a restarted generation keeps reading the same
        # stream where its predecessor stopped.
        child = subprocess.Popen(self.child_argv)
        self._child = child
        self._spawned_at = time.time()
        self._log({"event": "spawn", "generation": self.generation,
                   "pid": child.pid})
        return child

    def _watch(self, child: "subprocess.Popen[bytes]") -> tuple[int, bool]:
        """Block until the child exits or hangs; returns (code, hung)."""
        while True:
            code = child.poll()
            if code is not None:
                return code, False
            if self._heartbeat_stale():
                self._log({"event": "hang-detected",
                           "generation": self.generation,
                           "pid": child.pid,
                           "heartbeat_timeout": self.policy
                           .heartbeat_timeout})
                child.kill()
                child.wait()
                return -9, True
            self._sleep(self.policy.poll_interval)

    def _heartbeat_stale(self) -> bool:
        if self.policy.heartbeat_timeout <= 0:
            return False
        path = self.run_dir / HEARTBEAT_FILENAME
        try:
            beat = path.stat().st_mtime
        except OSError:
            beat = 0.0
        # Measured from the later of last-beat and spawn: a child still
        # importing has never beaten and must not be "stale" at birth.
        reference = max(beat, self._spawned_at)
        return time.time() - reference > self.policy.heartbeat_timeout

    def _give_up(self, exit_code: int, hung: bool, in_window: int) -> int:
        record = {
            "event": "give-up",
            "generation": self.generation,
            "last_exit_code": exit_code,
            "last_failure": "hang" if hung else "crash",
            "restarts_in_window": in_window,
            "restart_window_s": self.policy.restart_window,
            "restart_budget": self.policy.restart_budget,
            "restarts_total": self.restarts_total,
            "exit_code": EXIT_GIVE_UP,
        }
        self._log(record)
        try:
            atomic_write_text(self.run_dir / GIVEUP_FILENAME,
                              json.dumps(record, indent=2,
                                         sort_keys=True) + "\n")
        except OSError:  # repro: allow=contracts-broad-catch-swallow — the give-up artifact is advisory; the stderr line and exit code below carry the decision even on a full disk
            pass
        print(json.dumps(record, sort_keys=True), file=sys.stderr,
              flush=True)
        return EXIT_GIVE_UP

    # -- signals ------------------------------------------------------

    def _install_signal_forwarding(self) -> dict[int, Any]:
        if threading.current_thread() is not threading.main_thread():
            return {}

        def _forward(signum: int, frame: object) -> None:
            self._stop_requested = True
            child = self._child
            if child is not None and child.poll() is None:
                try:
                    child.send_signal(signal.SIGTERM)
                except OSError:  # repro: allow=contracts-broad-catch-swallow — the child exited between poll and signal; the watch loop reaps it either way
                    pass

        previous: dict[int, Any] = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.getsignal(signum)
            signal.signal(signum, _forward)
        return previous

    def _restore_signal_forwarding(self, previous: dict[int, Any]) -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    # -- logging ------------------------------------------------------

    def _log(self, record: dict[str, Any]) -> None:
        line = json.dumps(
            dict(record, ts=time.time(), supervisor_pid=os.getpid()),
            sort_keys=True)
        try:
            with open(self.run_dir / LOG_FILENAME, "a",
                      encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:  # repro: allow=contracts-broad-catch-swallow — lifecycle logging is best-effort; supervision must continue on a full disk
            pass
