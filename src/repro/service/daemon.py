"""The routing daemon: admission, coalescing, execution, graceful drain.

Front ends
----------
* **stdio** — :meth:`RoutingDaemon.serve` reads JSON-lines requests
  from a stream (stdin) and writes responses to another (stdout); EOF
  ends the session after the backlog is served.
* **socket** — :meth:`RoutingDaemon.serve_socket` accepts localhost TCP
  connections, each speaking the same JSON-lines protocol.

Both feed one bounded :class:`~repro.service.admission.AdmissionQueue`;
both answer *every* frame — malformed input, overload, draining, and
execution failures all come back as typed error responses.

Execution
---------
``workers=0`` routes requests serially on the daemon's main thread,
where the runtime pool's ``trial_deadline`` arms ``SIGALRM``;
``workers>=1`` ships requests to a persistent
:class:`~repro.runtime.pool.WorkerPool` of isolated processes, so a
kill or hard hang costs one request and one worker, never the daemon.

Identical requests (same config fingerprint) are *coalesced*: the first
becomes the leader, later ones wait for the leader's response and
receive a copy marked ``"coalesced": true``. Clean results also fill
the journal-backed warm cache, so repeats after the leader finished are
served without routing at all.

Shutdown
--------
SIGTERM (or :meth:`RoutingDaemon.request_drain`) triggers the graceful
drain: admission closes (new requests get ``draining`` rejections), the
backlog and in-flight requests get up to ``drain_grace`` seconds to
finish, stragglers are failed with structured ``drained`` errors, the
journal-backed cache is already durable (atomic per-record writes), and
the daemon exits 0.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, IO, Iterator

from repro.contracts import boundary
from repro.runtime.journal import ResultCache, atomic_write_text
from repro.runtime.pool import PoolTask, WorkerPool
from repro.runtime.trial import (
    FAILURE_DRAINED,
    TrialFailure,
    TrialOutcome,
)
from repro.service.admission import (
    AdmissionQueue,
    ServiceDraining,
    ServiceOverload,
)
from repro.service.breaker import BreakerBoard, BreakerPolicy
from repro.service.protocol import (
    ERROR_DRAINING,
    ERROR_EXCEPTION,
    ERROR_OVERLOAD,
    ERROR_PROTOCOL,
    ERROR_TIMEOUT,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    encode_frame,
    error_response,
    ok_response,
)
from repro.service.session import (
    SessionConfig,
    multinet_eligible,
    outcome_to_response,
    request_fingerprint,
    route_fleet_outcomes,
    route_outcome,
    run_route_task,
    task_frame,
    wire_frame,
)
from repro.service.supervisor import HEARTBEAT_FILENAME, PID_FILENAME
from repro.service.wal import PendingEntry, RequestWAL, compact, load_pending

#: One response writer: thread-safe, never raises into the executor.
Reply = Callable[[dict[str, Any]], None]

#: Executor poll tick (seconds) — bounds drain-flag reaction latency.
_TICK = 0.1


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon-level knobs, wrapping the per-request session config.

    Attributes:
        session: how each request executes (oracle, retries, chaos).
        queue_capacity: bound of the admission queue (load shedding
            beyond it).
        workers: 0 = serial on the daemon thread; N >= 1 = a persistent
            pool of N isolated worker processes.
        drain_grace: seconds the graceful drain gives the backlog and
            in-flight requests before failing them as ``drained``.
        cache_dir: warm-result journal directory (``None`` = in-memory
            cache only).
        cache_capacity: in-memory warm-cache bound.
        max_coalesced: waiters allowed behind one in-flight fingerprint
            before further duplicates are shed as overload.
        run_dir: durability/supervision state directory — the
            write-ahead request log, heartbeat file, and pid file live
            here (``None`` disables all three).
        recover: replay admitted-but-unanswered WAL entries from
            ``run_dir`` at startup (requires ``run_dir``).
        breaker: per-engine circuit-breaker policy over the oracle
            ladder (``None`` disables breakers).
        heartbeat_interval: seconds between heartbeat-file touches
            (the supervisor's hang detector watches the file's mtime).
        wal_fail_after: chaos hook — the WAL append with this 0-based
            index raises ``OSError`` once (disk-full simulation).
    """

    session: SessionConfig = field(default_factory=SessionConfig)
    queue_capacity: int = 64
    workers: int = 0
    drain_grace: float = 10.0
    cache_dir: Path | None = None
    cache_capacity: int = 4096
    max_coalesced: int = 64
    run_dir: Path | None = None
    recover: bool = False
    breaker: BreakerPolicy | None = field(default_factory=BreakerPolicy)
    heartbeat_interval: float = 1.0
    wal_fail_after: int | None = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.drain_grace < 0:
            raise ValueError("drain_grace must be non-negative")
        if self.max_coalesced < 1:
            raise ValueError("max_coalesced must be >= 1")
        if self.recover and self.run_dir is None:
            raise ValueError("recover requires run_dir (the WAL to "
                             "replay)")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")


@dataclass
class ServiceStats:
    """Service-level counters, reported by the ``stats`` op.

    The counters are mutated by the executor thread and read by reader/
    connection threads assembling stats frames, so every access goes
    through a method holding the internal lock — callers never touch
    the fields directly. ``to_json_dict`` is therefore a consistent
    snapshot (``requests_failed`` always equals the sum over
    ``errors_by_kind``, never a torn mid-update view).
    """

    requests_ok: int = 0
    requests_failed: int = 0
    protocol_errors: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    degraded: int = 0
    worker_crashes: int = 0
    replayed: int = 0
    wal_errors: int = 0
    errors_by_kind: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def count_error(self, kind: str) -> None:
        with self._lock:
            self.requests_failed += 1
            self.errors_by_kind[kind] = (
                self.errors_by_kind.get(kind, 0) + 1)

    def count_protocol_error(self, kind: str) -> None:
        """One malformed frame: a protocol error that also failed."""
        with self._lock:
            self.protocol_errors += 1
            self.requests_failed += 1
            self.errors_by_kind[kind] = (
                self.errors_by_kind.get(kind, 0) + 1)

    def count_ok(self, *, cached: bool = False,
                 degraded: bool = False) -> None:
        with self._lock:
            self.requests_ok += 1
            if cached:
                self.cache_hits += 1
            if degraded:
                self.degraded += 1

    def record_worker_crash(self) -> None:
        with self._lock:
            self.worker_crashes += 1

    def record_replayed(self) -> None:
        with self._lock:
            self.replayed += 1

    def record_coalesced(self) -> None:
        with self._lock:
            self.coalesced += 1

    def record_wal_error(self) -> None:
        with self._lock:
            self.wal_errors += 1

    def to_json_dict(self) -> dict[str, Any]:
        with self._lock:
            return {"requests_ok": self.requests_ok,
                    "requests_failed": self.requests_failed,
                    "protocol_errors": self.protocol_errors,
                    "cache_hits": self.cache_hits,
                    "coalesced": self.coalesced,
                    "degraded": self.degraded,
                    "worker_crashes": self.worker_crashes,
                    "replayed": self.replayed,
                    "wal_errors": self.wal_errors,
                    "errors_by_kind": dict(self.errors_by_kind)}


@dataclass
class _Admitted:
    """One admitted route request, with everything delivery needs."""

    request: Request
    fingerprint: str
    reply: Reply
    admitted_at: float
    budget: float
    wal_seq: int | None = None
    replayed: bool = False
    skip_engines: frozenset[str] = frozenset()
    followers: list["_Admitted"] = field(default_factory=list)

    def remaining(self) -> float:
        return self.budget - (time.monotonic() - self.admitted_at)


class RoutingDaemon:
    """A fault-tolerant routing service over JSON-lines transports."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config if config is not None else ServiceConfig()
        self.queue: AdmissionQueue[_Admitted] = AdmissionQueue(
            capacity=self.config.queue_capacity)
        self.cache = ResultCache(self.config.cache_dir,
                                 capacity=self.config.cache_capacity)
        self.stats = ServiceStats()
        self._drain_requested = threading.Event()
        #: Leaders by fingerprint: queued or in-flight requests later
        #: duplicates coalesce onto. Bounded by queue capacity + pool
        #: size; entries are removed the moment the leader responds.
        self._leaders: dict[str, _Admitted] = {}
        self._leaders_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._previous_sigterm: Any = None
        self._signals_installed = False
        self._heartbeat_stop = threading.Event()
        self.breakers = (None if self.config.breaker is None
                         else BreakerBoard(self.config.session.engines,
                                           self.config.breaker))
        self.wal: RequestWAL | None = None
        self._pending_replay: tuple[PendingEntry, ...] = ()
        if self.config.run_dir is not None:
            run_dir = Path(self.config.run_dir)
            run_dir.mkdir(parents=True, exist_ok=True)
            next_seq = 0
            if self.config.recover:
                replay = load_pending(run_dir)
                compact(run_dir, replay)
                self._pending_replay = replay.pending
                next_seq = replay.next_seq
            self.wal = RequestWAL(run_dir, next_seq=next_seq,
                                  fail_after=self.config.wal_fail_after)

    # -- shutdown -----------------------------------------------------

    def request_drain(self) -> None:
        """Begin graceful shutdown (idempotent, any thread)."""
        self._drain_requested.set()
        self._begin_drain()

    def _begin_drain(self) -> None:
        """Stop admitting: close the queue and the listening socket."""
        self.queue.close()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:  # repro: allow=contracts-broad-catch-swallow — double-close while racing the accept loop is harmless; the goal (stop accepting) is met
                pass

    def _install_signal_handlers(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return

        def _on_term(signum: int, frame: object) -> None:
            # Only set the flag: the handler interrupts the executor
            # thread at an arbitrary bytecode, possibly while it holds
            # the (non-reentrant) queue lock inside take() — closing
            # the queue here could self-deadlock. The executor loop
            # notices the flag within one poll tick and drains.
            self._drain_requested.set()

        self._previous_sigterm = signal.getsignal(signal.SIGTERM)
        signal.signal(signal.SIGTERM, _on_term)
        self._signals_installed = True

    def _restore_signal_handlers(self) -> None:
        """Put back whatever SIGTERM handler the host process had.

        Embedding the daemon (tests, the supervisor's in-process uses)
        must not permanently clobber the host's handlers.
        """
        if not self._signals_installed:
            return
        self._signals_installed = False
        try:
            signal.signal(signal.SIGTERM, self._previous_sigterm)
        except (ValueError, TypeError):  # repro: allow=contracts-broad-catch-swallow — restoring from a non-main thread (or an exotic saved handler) is best-effort; the daemon is exiting either way
            pass

    # -- intake -------------------------------------------------------

    @boundary(raises=())
    def handle_line(self, line: str, reply: Reply) -> None:
        """Parse, validate, and admit (or immediately answer) one frame.

        Runs on reader threads; a total boundary — every outcome is a
        reply, never an exception into the transport loop.
        """
        stripped = line.strip()
        if not stripped:
            return
        try:
            request = parse_checked(stripped, self.config.session)
        except ProtocolError as exc:
            self.stats.count_protocol_error(ERROR_PROTOCOL)
            reply(error_response(exc.frame_id, ERROR_PROTOCOL,
                                 type(exc).__name__, str(exc)))
            return
        try:
            if request.op == "ping":
                reply(ok_response(request.id, "ping", {
                    "version": PROTOCOL_VERSION,
                    "draining": self._drain_requested.is_set()}))
                return
            if request.op == "stats":
                # Each component snapshots its own counters under its
                # owning lock; the frame is a composition of consistent
                # snapshots, never a lock-free read of live counters.
                payload: dict[str, Any] = {
                    "service": self.stats.to_json_dict(),
                    "admission": self.queue.stats_snapshot(),
                    "cache": self.cache.stats_snapshot()}
                if self.breakers is not None:
                    payload["breakers"] = self.breakers.to_json_dict()
                reply(ok_response(request.id, "stats", payload))
                return
            self._admit_route(request, reply)
        except Exception as exc:
            # The last line of defense: whatever went wrong inside
            # admission must not kill the reader thread or leave the
            # client without an answer.
            self.stats.count_error(ERROR_EXCEPTION)
            reply(error_response(request.id, ERROR_EXCEPTION,
                                 type(exc).__name__, str(exc)))

    def _admit_route(self, request: Request, reply: Reply) -> None:
        fp = request_fingerprint(request, self.config.session)
        item = _Admitted(request=request, fingerprint=fp, reply=reply,
                         admitted_at=time.monotonic(),
                         budget=self.config.session.deadline_for(request))
        # Write-ahead: the frame is durably journaled *before* any
        # admission decision executes it, so a crash after this line
        # can never silently lose the request. Frames shed below get a
        # terminal record immediately.
        self._wal_admit(item)
        # Only the coalescing *decision* happens under the leaders
        # lock; the overload reply and its terminal WAL record (an
        # fsync) run after release so a slow disk cannot stall every
        # other admission.
        coalesce_full = False
        with self._leaders_lock:
            leader = self._leaders.get(fp)
            if leader is not None:
                if len(leader.followers) >= self.config.max_coalesced:
                    coalesce_full = True
                else:
                    leader.followers.append(item)
                    return
        if coalesce_full:
            self.stats.count_error(ERROR_OVERLOAD)
            self._wal_done(item, ERROR_OVERLOAD)
            reply(error_response(
                request.id, ERROR_OVERLOAD, "ServiceOverload",
                f"too many requests coalesced behind fingerprint "
                f"{fp} (cap {self.config.max_coalesced})"))
            return
        try:
            self.queue.offer(item)
        except ServiceOverload as exc:
            self.stats.count_error(ERROR_OVERLOAD)
            self._wal_done(item, ERROR_OVERLOAD)
            reply(error_response(request.id, ERROR_OVERLOAD,
                                 type(exc).__name__, str(exc)))
            return
        except ServiceDraining as exc:
            self.stats.count_error(ERROR_DRAINING)
            self._wal_done(item, ERROR_DRAINING)
            reply(error_response(request.id, ERROR_DRAINING,
                                 type(exc).__name__, str(exc)))
            return
        with self._leaders_lock:
            self._leaders[fp] = item

    # -- write-ahead log ----------------------------------------------

    def _wal_admit(self, item: _Admitted) -> None:
        """Journal one admitted frame; a WAL failure degrades durability,
        never availability (the request is still served)."""
        if self.wal is None:
            return
        try:
            item.wal_seq = self.wal.admit(wire_frame(item.request),  # repro: allow=interlock-unguarded-shared-field — single write before the item is published: every later reader acquires queue/leaders locks first, which fences this store
                                          item.fingerprint)
        except OSError:  # disk-full must not reject the request: served undurably, error counted (clients needing the guarantee watch wal_errors)
            self.stats.record_wal_error()

    def _wal_done(self, item: _Admitted, status: str) -> None:
        if self.wal is None or item.wal_seq is None:
            return
        try:
            self.wal.done(item.wal_seq, status)
        except OSError:  # a lost terminal record means at worst one extra idempotent, cache-served replay after the next crash
            self.stats.record_wal_error()

    # -- recovery & run-dir services ----------------------------------

    def _replay_pending(self, reply: Reply) -> None:
        """Re-enqueue the previous generation's unanswered WAL entries.

        Runs once, before the transport starts reading. Entries whose
        fingerprint already completed are answered from the warm cache
        by the normal execution path (that is what makes recovery
        idempotent); the rest are routed again. Admission capacity does
        not apply — these requests were already admitted once, and
        shedding them now would break the exactly-once promise the WAL
        exists to keep.
        """
        entries, self._pending_replay = self._pending_replay, ()
        for entry in entries:
            try:
                request = parse_checked(json.dumps(entry.frame),
                                        self.config.session)
            except ProtocolError as exc:
                # The frame was valid when admitted, so this means the
                # config changed between generations (e.g. fault
                # injection turned off). Terminal-record it so it is
                # never replayed again.
                self.stats.count_protocol_error(ERROR_PROTOCOL)
                reply(error_response(exc.frame_id, ERROR_PROTOCOL,
                                     type(exc).__name__, str(exc)))
                if self.wal is not None:
                    try:
                        self.wal.done(entry.seq, ERROR_PROTOCOL)
                    except OSError:  # same availability-over-durability trade as _wal_done
                        self.stats.record_wal_error()
                continue
            # Recomputed, never trusted from the log: the fingerprint
            # must bind the request to *this* generation's config.
            fp = request_fingerprint(request, self.config.session)
            item = _Admitted(
                request=request, fingerprint=fp, reply=reply,
                admitted_at=time.monotonic(),
                budget=self.config.session.deadline_for(request),
                wal_seq=entry.seq, replayed=True)
            with self._leaders_lock:
                leader = self._leaders.get(fp)
                if leader is not None:
                    leader.followers.append(item)
                    continue
            try:
                self.queue.requeue(item)
            except ServiceDraining:
                self._deliver(item, self._drained_response(item))
                continue
            with self._leaders_lock:
                self._leaders[fp] = item

    def _start_run_dir_services(self) -> None:
        """Write the pid file and start the heartbeat thread."""
        if self.config.run_dir is None:
            return
        run_dir = Path(self.config.run_dir)
        try:
            atomic_write_text(run_dir / PID_FILENAME, f"{os.getpid()}\n")
        except OSError:  # repro: allow=contracts-broad-catch-swallow — the pid file is advisory (chaos harnesses read it); serving continues without it
            pass
        threading.Thread(
            target=self._heartbeat_loop,
            args=(run_dir / HEARTBEAT_FILENAME,),
            name="service-heartbeat", daemon=True).start()

    def _heartbeat_loop(self, path: Path) -> None:
        """Touch the heartbeat file until told to stop.

        The supervisor's hang detector watches this file's mtime. The
        beat runs on its own thread, so it proves the process is alive
        and scheduling threads — catching stopped (``SIGSTOP``),
        swapped-to-death, and interpreter-wedged daemons; executor
        stalls on one slow request deliberately do *not* trip it (they
        are bounded by per-request deadlines, not the watchdog).
        """
        while True:
            try:
                path.touch()
            except OSError:  # repro: allow=contracts-broad-catch-swallow — a missed beat on a sick filesystem at worst triggers a supervisor restart, which is the safe direction
                pass
            if self._heartbeat_stop.wait(self.config.heartbeat_interval):
                return

    # -- delivery -----------------------------------------------------

    def _deliver(self, item: _Admitted, response: dict[str, Any]) -> None:
        """Reply to the leader and every coalesced follower, then untrack."""
        with self._leaders_lock:
            if self._leaders.get(item.fingerprint) is item:
                del self._leaders[item.fingerprint]
            followers = list(item.followers)
            item.followers.clear()
        if item.replayed:
            response = dict(response, replayed=True)
            self.stats.record_replayed()
        self._count_response(response)
        item.reply(response)
        self._wal_done(item, _disposition(response))
        for follower in followers:
            echoed = dict(response,
                          id=follower.request.id, coalesced=True)
            echoed.pop("replayed", None)
            if follower.replayed:
                echoed["replayed"] = True
                self.stats.record_replayed()
            self.stats.record_coalesced()
            self._count_response(echoed)
            follower.reply(echoed)
            self._wal_done(follower, _disposition(echoed))

    def _count_response(self, response: dict[str, Any]) -> None:
        if response.get("status") == "ok":
            self.stats.count_ok(cached=bool(response.get("cached")),
                                degraded=bool(response.get("degraded")))
            return
        error = response.get("error")
        kind = (error.get("kind", "exception")
                if isinstance(error, dict) else "exception")
        if kind == "crash":
            self.stats.record_worker_crash()
        self.stats.count_error(kind)

    # -- execution ----------------------------------------------------

    def _execute(self, item: _Admitted) -> dict[str, Any]:
        """Serial path: warm cache, deadline bookkeeping, then route."""
        warm = self.cache.lookup_cached(item.fingerprint)
        if warm is not None:
            return ok_response(item.request.id, "route",
                               dict(warm, fingerprint=item.fingerprint,
                                    cached=True))
        remaining = item.remaining()
        if remaining <= 0:
            return self._expired(item)
        if multinet_eligible(item.request, self.config.session):
            # Fleet-of-one keeps serial answers on the same oracle (and
            # hence the same fingerprint → answer mapping) as pooled
            # batches of the same daemon config. The stacked path is
            # pure graph-Elmore, so breakers do not apply.
            outcome = route_fleet_outcomes(
                [item.request], self.config.session, remaining)[0]
        else:
            skip = (frozenset() if self.breakers is None
                    else self.breakers.open_engines())
            outcome = route_outcome(item.request, self.config.session,
                                    remaining, skip)
            if self.breakers is not None:
                self.breakers.observe(
                    outcome, self.breakers.engine_of_record(skip))
        return outcome_to_response(item.request, item.fingerprint, outcome,
                                   cache=self.cache)

    def _expired(self, item: _Admitted) -> dict[str, Any]:
        return error_response(
            item.request.id, ERROR_TIMEOUT, "TrialTimeout",
            f"deadline ({item.budget:g}s) expired after "
            f"{time.monotonic() - item.admitted_at:.3f}s in queue",
            extra={"fingerprint": item.fingerprint})

    def _drained_response(self, item: _Admitted,
                          outcome: TrialOutcome | None = None
                          ) -> dict[str, Any]:
        if outcome is None:
            outcome = TrialFailure(
                kind=FAILURE_DRAINED, error_type="TrialDrained",
                message="request abandoned by graceful drain")
        return outcome_to_response(item.request, item.fingerprint, outcome)

    def _run_serial(self) -> None:
        """Executor loop, serial mode (runs on the calling thread)."""
        while not self._drain_requested.is_set():
            item = self.queue.take(timeout=_TICK)
            if item is not None:
                self._deliver(item, self._execute(item))
            elif self.queue.closed:
                break
        if self._drain_requested.is_set():
            self._begin_drain()
            self._drain_serial_backlog()

    def _drain_serial_backlog(self) -> None:
        """Serve what fits in the drain grace; fail the rest as drained."""
        deadline = time.monotonic() + self.config.drain_grace
        backlog = self.queue.drain_backlog()
        for index, item in enumerate(backlog):
            if time.monotonic() >= deadline:
                for straggler in backlog[index:]:
                    self._deliver(straggler,
                                  self._drained_response(straggler))
                return
            self._deliver(item, self._execute(item))

    def _run_pooled(self) -> None:
        """Executor loop, worker-pool mode."""
        pool = WorkerPool(self.config.workers)
        in_flight: dict[tuple[int, int], _Admitted] = {}
        sequence = 0

        def settle(key: tuple[int, int], outcome: TrialOutcome) -> None:
            settled = in_flight.pop(key, None)
            if settled is not None:
                if self.breakers is not None:
                    self.breakers.observe(
                        outcome, self.breakers.engine_of_record(
                            settled.skip_engines))
                self._deliver(settled, outcome_to_response(
                    settled.request, settled.fingerprint, outcome,
                    cache=self.cache))

        try:
            while not self._drain_requested.is_set():
                batch: list[_Admitted] = []
                while pool.can_accept():
                    item = self.queue.take(timeout=0.0)
                    if item is None:
                        break
                    if multinet_eligible(item.request,
                                         self.config.session):
                        # Fleet-eligible requests never occupy a pool
                        # slot: the whole gathered batch becomes one
                        # stacked in-process route_fleet call below.
                        batch.append(item)
                        continue
                    self._dispatch(pool, item, in_flight,
                                   key=(0, sequence))
                    sequence += 1
                if batch:
                    self._execute_fleet(batch)
                if in_flight:
                    for key, outcome in pool.poll(_TICK):
                        settle(key, outcome)
                elif self.queue.closed and len(self.queue) == 0:
                    break
                else:
                    # Idle: park on the queue instead of spinning
                    # (poll returns immediately with no busy workers).
                    idle_item = self.queue.take(timeout=_TICK)
                    if idle_item is not None:
                        if multinet_eligible(idle_item.request,
                                             self.config.session):
                            self._execute_fleet([idle_item])
                        else:
                            self._dispatch(pool, idle_item, in_flight,
                                           key=(0, sequence))
                            sequence += 1
            if self._drain_requested.is_set():
                self._begin_drain()
                for key, outcome in pool.drain(
                        self.config.drain_grace).items():
                    settle(key, outcome)
                for leftover in in_flight.values():
                    self._deliver(leftover,
                                  self._drained_response(leftover))
                in_flight.clear()
                for item in self.queue.drain_backlog():
                    self._deliver(item, self._drained_response(item))
        finally:
            pool.shutdown()

    def _execute_fleet(self, batch: list[_Admitted]) -> None:
        """Answer gathered fleet-eligible requests as one stacked batch.

        Runs in-process on the executor thread — the stacked graph-
        Elmore path has no SPICE subprocess to isolate and finishes in
        milliseconds, so it does not need a pool slot. Warm-cache and
        expiry bookkeeping is per member; survivors route through one
        :func:`~repro.service.session.route_fleet_outcomes` call whose
        deadline is the tightest member's remaining budget.
        """
        ready: list[_Admitted] = []
        for item in batch:
            warm = self.cache.lookup_cached(item.fingerprint)
            if warm is not None:
                self._deliver(item, ok_response(
                    item.request.id, "route",
                    dict(warm, fingerprint=item.fingerprint,
                         cached=True)))
                continue
            if item.remaining() <= 0:
                self._deliver(item, self._expired(item))
                continue
            ready.append(item)
        if not ready:
            return
        budget = min(item.remaining() for item in ready)
        outcomes = route_fleet_outcomes(
            [item.request for item in ready], self.config.session, budget)
        for item, outcome in zip(ready, outcomes):
            self._deliver(item, outcome_to_response(
                item.request, item.fingerprint, outcome,
                cache=self.cache))

    def _dispatch(self, pool: WorkerPool, item: _Admitted,
                  in_flight: dict[tuple[int, int], _Admitted],
                  key: tuple[int, int]) -> None:
        warm = self.cache.lookup_cached(item.fingerprint)
        if warm is not None:
            self._deliver(item, ok_response(
                item.request.id, "route",
                dict(warm, fingerprint=item.fingerprint, cached=True)))
            return
        remaining = item.remaining()
        if remaining <= 0:
            self._deliver(item, self._expired(item))
            return
        skip = (frozenset() if self.breakers is None
                else self.breakers.open_engines())
        item.skip_engines = skip
        task = PoolTask(key=key, fn=run_route_task,
                        args=(task_frame(item.request),
                              self.config.session, skip))
        immediate = pool.submit(task, timeout=remaining)
        if immediate is not None:
            self._deliver(item, outcome_to_response(
                item.request, item.fingerprint, immediate))
            return
        in_flight[key] = item

    # -- front ends ---------------------------------------------------

    @boundary(raises=(OSError,))
    def serve(self, input_stream: IO[str], output_stream: IO[str],
              install_signal_handlers: bool = False) -> int:
        """stdio front end: serve frames until EOF or drain; return 0.

        The reader thread feeds the admission queue; execution runs on
        the calling thread (main thread in the CLI, so per-request
        ``SIGALRM`` deadlines arm). Every line gets a response on
        ``output_stream``.
        """
        if install_signal_handlers:
            self._install_signal_handlers()
        write_lock = threading.Lock()

        def reply(frame: dict[str, Any]) -> None:
            with write_lock:
                try:
                    output_stream.write(encode_frame(frame) + "\n")
                    output_stream.flush()
                except (OSError, ValueError):  # repro: allow=contracts-broad-catch-swallow — the client hung up; dropping its response is the only option and the request itself already completed
                    pass

        self._start_run_dir_services()
        self._replay_pending(reply)
        reader = threading.Thread(  # repro: allow=interlock-daemon-thread-durable-io — daemon so a wedged stdin cannot block drain; a torn WAL tail from exit-kill is tolerated by load_pending's truncation scan
            target=self._read_stream, args=(input_stream, reply),
            name="service-reader", daemon=True)
        reader.start()
        try:
            if self.config.workers > 0:
                self._run_pooled()
            else:
                self._run_serial()
        finally:
            self._heartbeat_stop.set()
            self._restore_signal_handlers()
        reader.join(timeout=5.0)
        return 0

    def _read_stream(self, stream: IO[str], reply: Reply,
                     close_on_eof: bool = True) -> None:
        """Reader loop: one frame per line.

        ``close_on_eof`` distinguishes the transports: stdio EOF means
        the whole session is over (close admission, serve the backlog,
        exit), while one socket client hanging up must not affect the
        daemon or its other connections.
        """
        try:
            while True:
                line = stream.readline(MAX_FRAME_BYTES + 2)
                if line == "":
                    break
                if len(line) > MAX_FRAME_BYTES:
                    self.stats.count_protocol_error(ERROR_PROTOCOL)
                    reply(error_response(
                        None, ERROR_PROTOCOL, "ProtocolError",
                        f"frame exceeds {MAX_FRAME_BYTES} bytes"))
                    continue
                self.handle_line(line, reply)
        except (OSError, ValueError):  # repro: allow=contracts-broad-catch-swallow — transport died mid-read; already-admitted requests still execute
            pass
        finally:
            if close_on_eof:
                self.queue.close()

    @boundary(raises=(OSError,))
    def serve_socket(self, host: str = "127.0.0.1", port: int = 0,
                     install_signal_handlers: bool = False,
                     ready: Callable[[str, int], None] | None = None,
                     client_timeout: float = 60.0) -> int:
        """Localhost TCP front end (JSON-lines per connection).

        Binds, reports the bound address via ``ready`` (port 0 picks a
        free port), and serves until :meth:`request_drain`. Each
        connection gets its own reader thread; a connection idle longer
        than ``client_timeout`` seconds mid-request is dropped (the
        slow-client guard).
        """
        if install_signal_handlers:
            self._install_signal_handlers()
        listener = socket.create_server((host, port))
        self._listener = listener
        bound_host, bound_port = listener.getsockname()[:2]
        if ready is not None:
            ready(str(bound_host), int(bound_port))
        self._start_run_dir_services()
        # Socket replays answer into the void: the admitting
        # connection died with the previous generation, so the value of
        # the replay is filling the cache — the client's retry hits it.
        self._replay_pending(lambda frame: None)
        accept_thread = threading.Thread(  # repro: allow=interlock-daemon-thread-durable-io — daemon so a hung accept cannot outlive drain; WAL tails torn at exit are recovered (truncated) on the next generation's replay
            target=self._accept_loop, args=(listener, client_timeout),
            name="service-accept", daemon=True)
        accept_thread.start()
        try:
            if self.config.workers > 0:
                self._run_pooled()
            else:
                self._run_serial()
        finally:
            self._heartbeat_stop.set()
            self._restore_signal_handlers()
        try:
            listener.close()
        except OSError:  # repro: allow=contracts-broad-catch-swallow — already closed by request_drain; shutdown proceeds either way
            pass
        return 0

    def _accept_loop(self, listener: socket.socket,
                     client_timeout: float) -> None:
        while not self._drain_requested.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:  # repro: allow=contracts-broad-catch-swallow — listener closed by request_drain: the accept loop's normal exit
                break
            conn.settimeout(client_timeout)
            threading.Thread(target=self._serve_connection, args=(conn,),  # repro: allow=interlock-daemon-thread-durable-io — daemon so one wedged client cannot block shutdown; its in-flight admit at worst leaves a torn tail that load_pending truncates
                             name="service-conn", daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        stream = conn.makefile("r", encoding="utf-8", newline="\n")

        def reply(frame: dict[str, Any]) -> None:
            with write_lock:
                try:
                    conn.sendall((encode_frame(frame) + "\n")
                                 .encode("utf-8"))
                except OSError:  # repro: allow=contracts-broad-catch-swallow — client hung up; its responses have nowhere to go and the connection closes below
                    pass

        try:
            self._read_stream(stream, reply, close_on_eof=False)
        finally:
            try:
                stream.close()
                conn.close()
            except OSError:  # repro: allow=contracts-broad-catch-swallow — double-close on a dead socket during teardown is harmless
                pass


def _disposition(response: dict[str, Any]) -> str:
    """A delivered response's WAL terminal status (``ok`` or error kind)."""
    if response.get("status") == "ok":
        return "ok"
    error = response.get("error")
    return (str(error.get("kind", "exception"))
            if isinstance(error, dict) else "exception")


def parse_checked(line: str, session: SessionConfig) -> Request:
    """Protocol parse plus daemon-level policy checks.

    Raises:
        ProtocolError: malformed frame, unknown algorithm, or a
            fault-injection directive on a daemon that has injection
            disabled (a production daemon must not let clients crash
            workers).
    """
    from repro.service.protocol import parse_frame
    from repro.service.session import ALGORITHMS

    request = parse_frame(line)
    if request.op == "route" and request.algorithm not in ALGORITHMS:
        raise ProtocolError(
            f"unknown algorithm {request.algorithm!r}; expected one of "
            f"{', '.join(sorted(ALGORITHMS))}", frame_id=request.id)
    if request.inject is not None and not session.enable_fault_injection:
        raise ProtocolError(
            "'inject' requires the daemon to run with fault injection "
            "enabled (--fault-injection)", frame_id=request.id)
    return request


def iter_responses(lines: Iterator[str]) -> Iterator[dict[str, Any]]:
    """Parse a response stream (client-side helper for tests/harnesses)."""
    import json

    for line in lines:
        stripped = line.strip()
        if stripped:
            data = json.loads(stripped)
            if isinstance(data, dict):
                yield data
