"""JSON-lines wire protocol of the routing service.

One frame per line, UTF-8 JSON objects both ways. Requests carry an
``op`` (``route``, ``ping``, ``stats``) plus an optional client-chosen
``id`` echoed verbatim in the response; responses carry a ``status`` of
``"ok"`` or ``"error"``. Every failure mode has a typed shape: a frame
the parser cannot accept becomes a ``protocol`` error *response* (never
a dropped connection, never a traceback), and execution failures reuse
the runtime's structured :class:`~repro.runtime.trial.TrialFailure`
kinds (``timeout``, ``crash``, ``exception``, ``drained``) plus the
service-level ``overload`` and ``draining`` rejections.

A ``route`` request::

    {"op": "route", "id": "r1",
     "net": {"name": "clk", "source": [120.5, 4480.0],
             "sinks": [[800.0, 9100.0], [5500.0, 300.25]]},
     "algorithm": "ldrg", "deadline": 5.0, "segments": 1}

and its response::

    {"id": "r1", "status": "ok", "op": "route",
     "fingerprint": "…", "cached": false, "coalesced": false,
     "degraded": false, "result": {…}, "provenance": […],
     "elapsed": 0.18}

The full field tables live in ``docs/service.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.contracts import boundary
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.runtime.errors import ReproRuntimeError

#: Protocol version, echoed in ``ping`` responses and bumped on
#: incompatible frame changes.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's wire size — a slow-client/garbage guard;
#: longer lines are rejected with a ``protocol`` error before parsing.
MAX_FRAME_BYTES = 1_000_000

#: Hard ceiling on pins per net; protects the O(pins²) routing core
#: from a single pathological request starving every other client.
MAX_PINS = 512

#: Structured error kinds a response may carry.
ERROR_PROTOCOL = "protocol"
ERROR_OVERLOAD = "overload"
ERROR_DRAINING = "draining"
ERROR_DRAINED = "drained"
ERROR_TIMEOUT = "timeout"
ERROR_CRASH = "crash"
ERROR_EXCEPTION = "exception"

#: Supported request operations.
OPS = ("route", "ping", "stats")


class ProtocolError(ReproRuntimeError):
    """A frame the protocol cannot accept (malformed, oversized, unknown).

    Carries the offending frame's ``id`` when one could be recovered,
    so the error response still correlates with the client's request.
    """

    def __init__(self, message: str, frame_id: object = None):
        super().__init__(message)
        self.frame_id = frame_id


@dataclass(frozen=True)
class Request:
    """One parsed, validated request frame.

    Attributes:
        op: ``"route"``, ``"ping"``, or ``"stats"``.
        id: client correlation token (echoed verbatim; may be ``None``).
        net: the net to route (``route`` only).
        algorithm: registered algorithm name (``route`` only).
        deadline: per-request wall-clock budget in seconds, or ``None``
            for the service default.
        segments: pi-sections per wire in the delay oracle, or ``None``
            for the service default.
        inject: fault-injection directive (``"kill-worker"``, ``"raise"``,
            ``"hang"``, ``"nan"``) — honored only when the daemon was
            started with fault injection enabled; see
            :mod:`repro.service.faults`.
    """

    op: str
    id: object = None
    net: Net | None = None
    algorithm: str = "ldrg"
    deadline: float | None = None
    segments: int | None = None
    inject: str | None = None


@boundary(raises=(ProtocolError,))
def parse_frame(line: str) -> Request:
    """Parse and validate one request line.

    Raises:
        ProtocolError: for anything the protocol cannot accept — bad
            JSON, a non-object frame, an oversized line, an unknown
            ``op``, or a malformed ``net``. The error message names the
            offending field; the daemon turns it into a structured
            ``protocol`` error response.
    """
    if len(line.encode("utf-8", errors="replace")) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame exceeds {MAX_FRAME_BYTES} bytes (slow-client guard)")
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(data).__name__}")
    frame_id = data.get("id")
    if frame_id is not None and not isinstance(frame_id, (str, int)):
        raise ProtocolError("'id' must be a string or integer")
    op = data.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}",
            frame_id=frame_id)
    if op != "route":
        return Request(op=op, id=frame_id)
    return _parse_route(data, frame_id)


def _parse_route(data: Mapping[str, Any], frame_id: object) -> Request:
    net = _parse_net(data.get("net"), frame_id)
    algorithm = data.get("algorithm", "ldrg")
    if not isinstance(algorithm, str):
        raise ProtocolError("'algorithm' must be a string",
                            frame_id=frame_id)
    deadline = _optional_number(data, "deadline", frame_id)
    if deadline is not None and deadline <= 0:
        raise ProtocolError("'deadline' must be positive",
                            frame_id=frame_id)
    segments_raw = data.get("segments")
    segments: int | None = None
    if segments_raw is not None:
        if not isinstance(segments_raw, int) or isinstance(segments_raw, bool):
            raise ProtocolError("'segments' must be an integer",
                                frame_id=frame_id)
        if not 1 <= segments_raw <= 32:
            raise ProtocolError("'segments' must lie in [1, 32]",
                                frame_id=frame_id)
        segments = segments_raw
    inject = data.get("inject")
    if inject is not None and not isinstance(inject, str):
        raise ProtocolError("'inject' must be a string", frame_id=frame_id)
    return Request(op="route", id=frame_id, net=net, algorithm=algorithm,
                   deadline=deadline, segments=segments, inject=inject)


def _optional_number(data: Mapping[str, Any], key: str,
                     frame_id: object) -> float | None:
    value = data.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"'{key}' must be a number", frame_id=frame_id)
    return float(value)


def _parse_net(raw: object, frame_id: object) -> Net:
    if not isinstance(raw, dict):
        raise ProtocolError(
            "'net' must be an object with 'source' and 'sinks'",
            frame_id=frame_id)
    name = raw.get("name", "net")
    if not isinstance(name, str) or not name:
        raise ProtocolError("'net.name' must be a non-empty string",
                            frame_id=frame_id)
    source = _parse_point(raw.get("source"), "net.source", frame_id)
    sinks_raw = raw.get("sinks")
    if not isinstance(sinks_raw, list) or not sinks_raw:
        raise ProtocolError("'net.sinks' must be a non-empty array",
                            frame_id=frame_id)
    if 1 + len(sinks_raw) > MAX_PINS:
        raise ProtocolError(
            f"net has {1 + len(sinks_raw)} pins; the service accepts "
            f"at most {MAX_PINS}", frame_id=frame_id)
    sinks = tuple(_parse_point(item, f"net.sinks[{index}]", frame_id)
                  for index, item in enumerate(sinks_raw))
    try:
        return Net(source=source, sinks=sinks, name=name)
    except ValueError as exc:  # duplicate pins etc. — Net's own checks
        raise ProtocolError(f"invalid net: {exc}", frame_id=frame_id) from exc


def _parse_point(raw: object, label: str, frame_id: object) -> Point:
    if (not isinstance(raw, (list, tuple)) or len(raw) != 2
            or any(isinstance(v, bool) or not isinstance(v, (int, float))
                   for v in raw)):
        raise ProtocolError(f"'{label}' must be an [x, y] number pair",
                            frame_id=frame_id)
    x, y = float(raw[0]), float(raw[1])
    if not (_finite(x) and _finite(y)):
        raise ProtocolError(f"'{label}' coordinates must be finite",
                            frame_id=frame_id)
    return Point(x, y)


def _finite(value: float) -> bool:
    return value == value and abs(value) != float("inf")


# ---------------------------------------------------------------------------
# Response frames
# ---------------------------------------------------------------------------


def ok_response(request_id: object, op: str,
                body: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """A success frame: ``{"id":…, "status": "ok", "op":…, **body}``."""
    frame: dict[str, Any] = {"id": request_id, "status": "ok", "op": op}
    if body:
        frame.update(body)
    return frame


def error_response(request_id: object, kind: str, error_type: str,
                   message: str,
                   extra: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """A typed error frame.

    Args:
        request_id: the request's ``id`` (``None`` when unrecoverable).
        kind: one of the ``ERROR_*`` kinds.
        error_type: exception class name, for grouping.
        message: one-line cause (no tracebacks cross the wire).
        extra: additional top-level fields (``fingerprint``, ``elapsed``).
    """
    frame: dict[str, Any] = {
        "id": request_id, "status": "error",
        "error": {"kind": kind, "error_type": error_type,
                  "message": message},
    }
    if extra:
        frame.update(extra)
    return frame


def encode_frame(frame: Mapping[str, Any]) -> str:
    """Serialize one response frame to a single JSON line (no newline)."""
    return json.dumps(frame, sort_keys=True, separators=(",", ":"))


@dataclass
class FrameStats:
    """Wire-level counters a daemon front end keeps per stream."""

    frames_in: int = 0
    frames_out: int = 0
    protocol_errors: int = 0
    oversized: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    def count_error(self, kind: str) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
