"""repro.service: a fault-tolerant routing daemon.

The service turns the repo's experiment runner into a long-running
system: a persistent daemon that accepts nets as JSON-lines frames
(stdin/stdout first, localhost TCP socket second), routes them with any
of the registered algorithms, and streams structured results back —
engineered robustness-first:

* :mod:`repro.service.protocol` — versioned JSON-lines framing where
  every malformed frame becomes a typed ``protocol`` error response,
  never a traceback;
* :mod:`repro.service.admission` — a bounded admission queue with
  load-shedding (structured ``overload`` rejections, never an unbounded
  backlog) and a draining state for graceful shutdown;
* :mod:`repro.service.session` — per-request execution: deadline
  enforcement via the runtime pool's ``trial_deadline``, retry/backoff
  for transient faults, the ngspice→transient→analytic degradation
  ladder with provenance on every response, and config-fingerprinted
  warm-result caching;
* :mod:`repro.service.daemon` — the service loop: request coalescing,
  SIGTERM-triggered graceful drain, serial or worker-pool execution;
* :mod:`repro.service.wal` — the write-ahead request log: every
  admitted frame is durably journaled before execution and terminally
  recorded after delivery, so ``repro serve --recover`` replays exactly
  the admitted-but-unanswered set after a crash;
* :mod:`repro.service.supervisor` — the crash/hang watchdog parent of
  ``repro serve --supervised``: heartbeat monitoring, seeded-backoff
  restarts, and a crash-loop budget that gives up with exit 3;
* :mod:`repro.service.breaker` — per-engine circuit breakers over the
  degradation ladder, so a dead engine stops costing every request its
  retry budget;
* :mod:`repro.service.faults` — a deterministic service-level fault
  harness (worker kills, malformed frames, deadline storms, slow
  clients, daemon SIGKILLs) used to prove every failure surfaces as a
  typed error and every admitted request is answered exactly once.

See ``docs/service.md`` for the protocol, lifecycle, recovery model,
and failure-mode table.
"""

from repro.service.admission import (
    AdmissionQueue,
    AdmissionStats,
    ServiceDraining,
    ServiceOverload,
)
from repro.service.breaker import (
    BreakerBoard,
    BreakerPolicy,
)
from repro.service.daemon import (
    RoutingDaemon,
    ServiceConfig,
    ServiceStats,
)
from repro.service.faults import ServiceFaultPlan, build_fault_stream
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    encode_frame,
    error_response,
    ok_response,
    parse_frame,
)
from repro.service.session import (
    ALGORITHMS,
    SessionConfig,
    execute_request,
    multinet_eligible,
    request_fingerprint,
    route_fleet_outcomes,
    wire_frame,
)
from repro.service.supervisor import (
    EXIT_GIVE_UP,
    Supervisor,
    SupervisorPolicy,
)
from repro.service.wal import (
    PendingEntry,
    RequestWAL,
    WalReplay,
    load_pending,
)

__all__ = [
    "ALGORITHMS",
    "AdmissionQueue",
    "AdmissionStats",
    "BreakerBoard",
    "BreakerPolicy",
    "EXIT_GIVE_UP",
    "PROTOCOL_VERSION",
    "PendingEntry",
    "ProtocolError",
    "Request",
    "RequestWAL",
    "RoutingDaemon",
    "ServiceConfig",
    "ServiceDraining",
    "ServiceFaultPlan",
    "ServiceOverload",
    "ServiceStats",
    "SessionConfig",
    "Supervisor",
    "SupervisorPolicy",
    "WalReplay",
    "build_fault_stream",
    "encode_frame",
    "error_response",
    "execute_request",
    "load_pending",
    "multinet_eligible",
    "ok_response",
    "parse_frame",
    "request_fingerprint",
    "route_fleet_outcomes",
    "wire_frame",
]
