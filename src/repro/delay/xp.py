"""The pluggable array-namespace boundary for batched evaluation.

The multi-net backend (:mod:`repro.delay.multinet`) is written against a
module-level handle ``xp`` instead of importing ``numpy`` directly, the
same seam CuPy, JAX, and the array-API ecosystem standardized on: every
operation it needs (``stack``, ``linalg.cholesky``, ``linalg.solve``,
``matmul``, fancy indexing, reductions) has identical semantics across
conforming namespaces, so pointing ``xp`` at CuPy runs the identical
code on a GPU with device arrays end to end.

CuPy is strictly optional — nothing here imports it unless a caller
asks for the ``"cupy"`` backend, and asking on a machine without it
raises a clear error instead of an import crash at module load.
:func:`asnumpy` is the single exit point back to host memory, so result
handling stays backend-agnostic too.
"""

from __future__ import annotations

from types import ModuleType
from typing import Any

import numpy

#: Backend specs accepted by :func:`resolve_backend`.
BACKENDS = ("auto", "numpy", "cupy")


def resolve_backend(spec: str = "auto") -> ModuleType:
    """Resolve a backend spec to its array namespace module.

    ``"numpy"`` is the default and always available. ``"cupy"`` imports
    CuPy lazily and raises :class:`RuntimeError` when it is not
    installed. ``"auto"`` currently means numpy — GPU execution is
    opt-in, never a silent behavior change on machines that happen to
    have CuPy.
    """
    if spec in ("auto", "numpy"):
        return numpy
    if spec == "cupy":
        try:
            import cupy  # noqa: F401 — optional accelerator backend
        except ImportError as exc:
            raise RuntimeError(
                "the 'cupy' array backend was requested but CuPy is not "
                "installed; install cupy matching the local CUDA toolkit "
                "or use backend='numpy'") from exc
        return cupy
    raise ValueError(
        f"unknown array backend {spec!r}; expected one of {BACKENDS}")


def backend_name(xp: ModuleType) -> str:
    """Short display name of an array namespace ("numpy", "cupy")."""
    return str(getattr(xp, "__name__", repr(xp))).split(".")[0]


def asnumpy(xp: ModuleType, array: Any) -> numpy.ndarray:
    """Materialize ``array`` as a host-memory numpy array.

    On the numpy backend this is a no-copy ``asarray``; on CuPy it is
    the device→host transfer. All result extraction in the multi-net
    backend funnels through here, so the scoring code never needs to
    know which memory space it computed in.
    """
    converter = getattr(xp, "asnumpy", None)
    if converter is not None:
        return numpy.asarray(converter(array))
    return numpy.asarray(array)
