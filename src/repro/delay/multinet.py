"""Fleet-scale candidate evaluation: many nets, one stacked linear-algebra call.

The Sherman–Morrison engine (:mod:`repro.delay.incremental`) already
vectorizes all candidates *within* one net behind a single factorization.
Sweeps and the routing service, however, route nets strictly one at a
time, so a 50-net table generation pays 50 separate factorizations, 50
Python greedy-loop dispatches, and 50 rounds of per-net numpy overhead
per iteration. This module lifts the same math one axis higher:

* :class:`_StackedBase` assembles each net's reduced conductance system
  (vectorized scatter-adds following the exact conventions of
  :func:`~repro.delay.rc_builder.build_reduced_rc`) and factorizes the
  whole fleet as one stacked
  ``(B, n, n)`` Cholesky — numpy's batched ``linalg`` gufuncs process
  each matrix independently, so every net's numbers are bit-for-bit
  independent of which other nets share its batch (that invariance is
  what makes serial-vs-batched byte-identity checkable);
* :class:`FleetEvaluator` scores one greedy generation's candidates for
  the whole fleet as a single flattened Sherman–Morrison expression with
  per-net owner masks, and satisfies the ordinary
  :class:`~repro.delay.models.CandidateEvaluator` protocol as the
  degenerate fleet of one;
* :func:`route_fleet` drives N independent greedy loops in lockstep —
  one stacked factorization per generation serves every active net's
  base delays *and* its candidate batch; converged nets drop out.

All array math goes through the pluggable :mod:`repro.delay.xp`
namespace boundary (numpy by default, CuPy opt-in and import-guarded),
so the identical code is GPU-ready without a branch in the math.

Honesty levers carry over from the sequential path: the PR-4 shadow
audit wraps each fleet member (sampled re-scores through the naive
oracle; a diverging member is quarantined onto the reference path
without disturbing the rest of the fleet), base-delay results are
memoized under the exact per-net ``(model key, graph fingerprint)``
identity the sequential :class:`~repro.delay.incremental.DelayMemo`
uses — never a batch position — and a batched factorization that numpy
rejects falls back, with a recorded provenance event, to the per-net
:class:`~repro.guard.numerics.GuardedFactorization` ladder. The
property suite pins fleet-batched scores to the per-net incremental
engine at ≤ 1e-9 relative with identical chosen edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.result import IterationRecord, RoutingResult, WIN_TOLERANCE
from repro.delay.incremental import (
    PSEUDO_SHORT_CONDUCTANCE,
    DelayMemo,
    NaiveCandidateEvaluator,
    graph_fingerprint,
    memoize_model,
)
from repro.delay.models import (
    CandidateEdge,
    DelayModel,
    ElmoreGraphModel,
    WidthUpgrade,
    get_delay_model,
    reduce_delays,
)
from repro.delay.parameters import Technology
from repro.delay.rc_builder import EdgeWidths, edge_width
from repro.delay.xp import asnumpy, backend_name, resolve_backend
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph, RoutingGraphError
from repro.graph.validation import check_spanning
from repro.guard.audit import ShadowAuditedEvaluator
from repro.guard.incidents import KIND_FALLBACK, record_event
from repro.guard.numerics import GuardedFactorization
from repro.guard.policy import active_guard
from repro.guard.sentinels import (
    sentinel_connected,
    sentinel_delay_non_increase,
    sentinel_finite_delays,
    sentinel_monotone_cost,
)


# ---------------------------------------------------------------------------
# Stacked linear algebra
# ---------------------------------------------------------------------------


def _guarded_inverse_stack(stack: np.ndarray, context: str) -> np.ndarray:
    """Per-net guarded inverses when the batched factorization is rejected.

    The slow lane of the fleet base: each system goes through the full
    conditioned :class:`GuardedFactorization` ladder (regularization,
    rcond floor, structured incidents), exactly as the sequential engine
    would — so a fleet containing one pathological net degrades to the
    sequential path's behavior for *every* net of its group rather than
    returning unconditioned garbage for any of them.
    """
    record_event(
        KIND_FALLBACK, source=context or "multinet-base",
        target="guarded-factorization",
        detail=f"batched Cholesky rejected for {len(stack)} stacked "
               f"systems; per-net guarded factorizations serve this "
               f"generation",
        count=len(stack))
    return np.stack([
        GuardedFactorization(
            matrix, spd=True, context=f"{context}[member={index}]").inverse()
        for index, matrix in enumerate(stack)])


def _batched_spd_inverse(stack: np.ndarray, xp, context: str):
    """Inverse of a ``(B, n, n)`` stack of SPD systems, on backend ``xp``.

    ``G⁻¹ = L⁻ᵀ L⁻¹`` from one batched Cholesky; every batched gufunc
    involved works matrix-by-matrix, so member results do not depend on
    batch composition. Any failure (a non-PD member fails the *whole*
    stacked call, and numpy's batched path performs no conditioning
    check) drops the group to per-net guarded factorizations.
    """
    device = xp.asarray(stack)
    try:
        chol = xp.linalg.cholesky(device)
        identity = xp.eye(stack.shape[-1], dtype=device.dtype)
        chol_inv = xp.linalg.solve(chol, identity)
        inverse = xp.matmul(xp.swapaxes(chol_inv, -1, -2), chol_inv)
    except np.linalg.LinAlgError:
        # A rejected batched factorization downgrades the group to the
        # per-net GuardedFactorization ladder (recorded as a fallback
        # provenance event); ladder exhaustion still raises a structured
        # NumericalIncident rather than swallowing the fault.
        return xp.asarray(_guarded_inverse_stack(stack, context))
    if not bool(xp.isfinite(inverse).all()):
        return xp.asarray(_guarded_inverse_stack(stack, context))
    return inverse


class _MemberSystem:
    """One member's assembled reduced RC system, advanced edge by edge.

    Rebuilding every member's dense conductance system each generation
    dominated the fleet profile, yet a generation changes a member's
    graph by exactly one accepted edge. The evaluator therefore keeps
    each member's assembled ``(G, c, drive)`` arrays alive and
    :meth:`refresh` folds newly added edges in place — the identical
    per-edge arithmetic :meth:`_assemble` (and hence
    :func:`~repro.delay.rc_builder.build_reduced_rc`) uses, applied in
    edge-acceptance order instead of sorted-edge order; the ≤ 1e-9
    property bound absorbs that last-ulp accumulation difference, and
    per-member updates never look at the rest of the fleet, preserving
    the serial-vs-batched byte identity.
    """

    def __init__(self, graph: RoutingGraph, tech: Technology,
                 widths: EdgeWidths | None = None):
        if not graph.spans_net():
            raise RoutingGraphError(
                f"routing over net {graph.net.name!r} does not span "
                f"all pins")
        self.graph = graph
        #: node id → system row, as an array so whole edge and candidate
        #: batches translate in one fancy-indexing step. With one
        #: π-section per edge rows are exactly the sorted node list —
        #: the same row convention :func:`build_reduced_rc` uses.
        self.nodes = sorted(graph.nodes())
        size = len(self.nodes)
        self.row_lookup = np.full(max(self.nodes) + 1, -1, dtype=np.intp)
        for row, node in enumerate(self.nodes):
            self.row_lookup[node] = row
        self.coords = np.array([graph.position(node).as_tuple()
                                for node in self.nodes], dtype=float)
        self.conductance = np.zeros((size, size))
        self.capacitance = np.zeros(size)
        self.drive = np.zeros(size)
        self.edge_set: set[tuple[int, int]] = {
            (int(u), int(v)) for u, v in graph.edges()}
        self._assemble(graph, tech, widths)

    def refresh(self, graph: RoutingGraph, tech: Technology) -> bool:
        """Bring the system up to date with ``graph``; False → rebuild.

        Reusable only for the *same* graph object (greedy loops mutate
        their graph in place, and the identity check also rules out an
        ``id()``-reuse collision) that has gained edges since assembly —
        each new edge's π-section folds in with in-place adds. Any other
        change (edges removed, a different object) disqualifies the
        cache and the caller assembles afresh.
        """
        if graph is not self.graph:
            return False
        edges = [(int(u), int(v)) for u, v in graph.edges()]
        added = [edge for edge in edges if edge not in self.edge_set]
        if len(self.edge_set) + len(added) != len(edges):
            return False
        G = self.conductance
        for u, v in added:
            row_u = int(self.row_lookup[u])
            row_v = int(self.row_lookup[v])
            delta = self.coords[row_u] - self.coords[row_v]
            length = abs(delta[0]) + abs(delta[1])
            if length > 0:
                seg_g = 1.0 / (tech.wire_resistance * length)
                seg_c = tech.wire_capacitance * (
                    tech.cap_area_fraction
                    + (1.0 - tech.cap_area_fraction)) * length
            else:
                seg_g = PSEUDO_SHORT_CONDUCTANCE
                seg_c = 0.0
            G[row_u, row_u] += seg_g
            G[row_v, row_v] += seg_g
            G[row_u, row_v] -= seg_g
            G[row_v, row_u] -= seg_g
            self.capacitance[row_u] += seg_c / 2.0
            self.capacitance[row_v] += seg_c / 2.0
            self.edge_set.add((u, v))
        return True

    def _assemble(self, graph: RoutingGraph, tech: Technology,
                  widths: EdgeWidths | None) -> None:
        """Scatter the member's full reduced RC system from scratch.

        The vectorized twin of :func:`~repro.delay.rc_builder.\
        build_reduced_rc` at ``segments=1``: identical per-edge
        conductances/capacitances (1 µΩ pseudo-short for zero-length
        edges, π-section half-caps, sink loads, driver conductance, the
        1e-24 capacitance floor), accumulated with ordered scatter-adds
        instead of a Python loop. The property suite pins the resulting
        delays to the sequential builder's at ≤ 1e-9 relative.
        """
        G = self.conductance
        c = self.capacitance
        edges = np.asarray(graph.edges(), dtype=np.intp)
        if len(edges):
            rows_u = self.row_lookup[edges[:, 0]]
            rows_v = self.row_lookup[edges[:, 1]]
            delta = self.coords[rows_u] - self.coords[rows_v]
            lengths = np.abs(delta[:, 0]) + np.abs(delta[:, 1])
            if widths is None:
                width_vec = np.ones(len(edges))
            else:
                width_vec = np.array(
                    [edge_width(widths, int(u), int(v))
                     for u, v in edges])
            positive = lengths > 0
            resistance = (tech.wire_resistance / width_vec
                          * np.where(positive, lengths, 1.0))
            seg_g = np.where(positive, 1.0 / resistance,
                             PSEUDO_SHORT_CONDUCTANCE)
            area = tech.cap_area_fraction * width_vec
            fringe = 1.0 - tech.cap_area_fraction
            seg_c = tech.wire_capacitance * (area + fringe) * lengths
            np.add.at(G, (rows_u, rows_u), seg_g)
            np.add.at(G, (rows_v, rows_v), seg_g)
            np.subtract.at(G, (rows_u, rows_v), seg_g)
            np.subtract.at(G, (rows_v, rows_u), seg_g)
            np.add.at(c, rows_u, seg_c / 2.0)
            np.add.at(c, rows_v, seg_c / 2.0)
        sink_rows = self.row_lookup[np.arange(1, graph.num_pins)]
        c[sink_rows] += tech.sink_capacitance
        g_driver = 1.0 / tech.driver_resistance
        source_row = int(self.row_lookup[graph.source])
        G[source_row, source_row] += g_driver
        self.drive[source_row] = g_driver
        # Nodes with zero capacitance (possible only for degenerate
        # zero-length topologies) get a vanishing cap so the state space
        # stays well-posed — the same floor build_reduced_rc applies.
        floor = 1e-24
        c[c < floor] = floor


class _StackedBase:
    """One generation's stacked factorizations for a same-shape fleet group.

    All member systems must share the same node set and pin count (the
    caller groups by that key), so they stack without padding: padding
    would perturb BLAS summation orders and break the per-net
    bit-independence the determinism smoke relies on.
    """

    def __init__(self, systems: Sequence[_MemberSystem], xp,
                 context: str = "multinet-base"):
        self.xp = xp
        self.nodes = systems[0].nodes
        self.row_lookup = systems[0].row_lookup
        size = len(self.nodes)
        conductance = np.stack(
            [system.conductance for system in systems])
        capacitance = np.stack(
            [system.capacitance for system in systems])
        drive = np.stack([system.drive for system in systems])
        self.Ginv = _batched_spd_inverse(
            conductance, xp, f"{context}[n={size}]")
        cap_dev = xp.asarray(capacitance)
        drive_dev = xp.asarray(drive)
        self.v_inf = xp.matmul(self.Ginv, drive_dev[..., None])[..., 0]
        self.T0 = xp.matmul(self.Ginv,
                            (cap_dev * self.v_inf)[..., None])[..., 0]
        self.sinks = list(systems[0].graph.sink_indices())
        self.sink_rows = self.row_lookup[np.array(self.sinks,
                                                  dtype=np.intp)]
        self._T0_host = asnumpy(xp, self.T0)

    def row(self, node: int) -> int:
        return int(self.row_lookup[node])

    def member_delays(self, slot: int) -> dict[int, float]:
        """Per-sink Elmore delays of fleet member ``slot``'s base graph.

        The first moment at the sinks *is* ``T0`` — the same vector the
        candidate corrections are taken against — so one stacked
        factorization yields both the full evaluation of every member
        and its whole candidate batch.
        """
        return {sink: float(self._T0_host[slot, row])
                for sink, row in zip(self.sinks, self.sink_rows)}

    def score(self, owner: np.ndarray, rows_u: np.ndarray,
              rows_v: np.ndarray, delta_g: np.ndarray, delta_c: np.ndarray,
              weights: Mapping[int, float] | None) -> np.ndarray:
        """Objective after each ``(owner, u, v, Δg, Δc)`` low-rank update.

        The flattened cross-net form of
        :meth:`repro.delay.incremental._ElmoreBase.score`: ``owner[j]``
        selects candidate ``j``'s member slice of the stack, and every
        operation is elementwise per candidate (plus a fixed-order
        per-column sink reduction), so scores are bitwise independent of
        how candidates from different nets interleave.
        """
        xp = self.xp
        Ginv = self.Ginv
        owner_dev = xp.asarray(owner)
        rows_u_dev = xp.asarray(rows_u)
        rows_v_dev = xp.asarray(rows_v)
        delta_g_dev = xp.asarray(delta_g)
        delta_c_dev = xp.asarray(delta_c)
        guu = Ginv[owner_dev, rows_u_dev, rows_u_dev]
        gvv = Ginv[owner_dev, rows_v_dev, rows_v_dev]
        guv = Ginv[owner_dev, rows_u_dev, rows_v_dev]
        # f = g / (1 + g·q) computed as 1/(1/g + q): no overflow for the
        # 1e6-conductance pseudo-short, exact zero for Δg = 0 upgrades.
        q = guu + gvv - 2.0 * guv
        factor = xp.zeros_like(delta_g_dev)
        nonzero = delta_g_dev != 0.0
        factor[nonzero] = 1.0 / (1.0 / delta_g_dev[nonzero] + q[nonzero])

        v_u = self.v_inf[owner_dev, rows_u_dev]
        v_v = self.v_inf[owner_dev, rows_v_dev]
        alpha = (self.T0[owner_dev, rows_u_dev]
                 - self.T0[owner_dev, rows_v_dev]
                 + delta_c_dev * (v_u * (guu - guv) + v_v * (guv - gvv)))

        sink_rows_dev = xp.asarray(self.sink_rows)
        cols_u = Ginv[owner_dev[None, :], sink_rows_dev[:, None],
                      rows_u_dev[None, :]]
        cols_v = Ginv[owner_dev[None, :], sink_rows_dev[:, None],
                      rows_v_dev[None, :]]
        base = self.T0[owner_dev[None, :], sink_rows_dev[:, None]]
        delays = (base + delta_c_dev * (v_u * cols_u + v_v * cols_v)
                  - (factor * alpha) * (cols_u - cols_v))
        if weights is None:
            return asnumpy(xp, delays.max(axis=0))
        weight_vec = xp.asarray(
            np.array([weights.get(sink, 0.0) for sink in self.sinks]))
        return asnumpy(xp, weight_vec @ delays)


# ---------------------------------------------------------------------------
# The fleet evaluator
# ---------------------------------------------------------------------------


def _addition_deltas(coords_u: np.ndarray, coords_v: np.ndarray,
                     tech: Technology) -> tuple[np.ndarray, np.ndarray]:
    """Per-candidate ``(Δg, Δc)`` for edge additions (π-section halves).

    Manhattan lengths come from one vectorized gather of the member
    systems' cached node coordinates instead of per-candidate
    :meth:`Point.manhattan` calls; the arithmetic (|Δx| + |Δy|, then the
    1/(r·ℓ) and c·ℓ/2 forms) is elementwise identical to the sequential
    engine's, pseudo-short included.
    """
    delta = coords_u - coords_v
    lengths = np.abs(delta[:, 0]) + np.abs(delta[:, 1])
    resistance = tech.resistance_per_um(1.0)
    capacitance = tech.capacitance_per_um(1.0)
    positive = lengths > 0
    delta_g = np.where(
        positive,
        1.0 / (resistance * np.where(positive, lengths, 1.0)),
        PSEUDO_SHORT_CONDUCTANCE)
    delta_c = np.where(positive, capacitance * lengths / 2.0, 0.0)
    return delta_g, delta_c


class FleetEvaluator:
    """Batched multi-net Elmore candidate scoring behind the standard protocol.

    One instance serves a whole fleet: :meth:`evaluate_generation` takes
    each active net's graph and candidate batch and returns every net's
    base sink delays plus candidate scores from one stacked call per
    same-shape group. The plain :class:`~repro.delay.models.\
    CandidateEvaluator` methods are the fleet of one, so this evaluator
    drops into any greedy loop (and is what ``mode="multinet"`` of
    :func:`~repro.delay.incremental.get_candidate_evaluator` returns).

    Args:
        tech: interconnect technology (the evaluator is exact for the
            graph-Elmore oracle over it).
        weights: optional sink criticalities switching the objective to
            the weighted sum, as everywhere else.
        backend: array-namespace spec for :func:`~repro.delay.xp.\
            resolve_backend` — ``"numpy"`` (default via ``"auto"``) or
            ``"cupy"``.
        memo: optional :class:`~repro.delay.incremental.DelayMemo` the
            per-net *base* evaluations are read from and recorded into,
            keyed by ``(model key, per-net graph fingerprint)`` — the
            identical identity the sequential memo uses, never a batch
            position.
    """

    def __init__(self, tech: Technology,
                 weights: Mapping[int, float] | None = None,
                 backend: str = "auto",
                 memo: DelayMemo | None = None):
        self.tech = tech
        self.weights = dict(weights) if weights is not None else None
        self.xp = resolve_backend(backend)
        self.backend = backend_name(self.xp)
        self.memo = memo
        self._model_key = ElmoreGraphModel(tech).memo_key()
        #: assembled systems of the current fleet, keyed by graph
        #: ``id()`` (validated against the object on reuse) and pruned
        #: to the live fleet each generation so long-lived evaluators
        #: (the service) do not accumulate dead systems.
        self._systems: dict[int, _MemberSystem] = {}

    # -- fleet interface ----------------------------------------------------

    def evaluate_generation(
            self, graphs: Sequence[RoutingGraph],
            candidates: Sequence[Sequence[CandidateEdge]],
    ) -> tuple[list[dict[int, float]], list[list[float]]]:
        """Base delays and candidate scores for one fleet generation.

        Returns ``(delays, scores)`` aligned with ``graphs``: member
        ``i``'s full per-sink base delays and one score per candidate in
        ``candidates[i]``. Everything comes from one stacked
        factorization per same-shape group.
        """
        if len(graphs) != len(candidates):
            raise ValueError(
                f"fleet mismatch: {len(graphs)} graphs but "
                f"{len(candidates)} candidate batches")
        delays_out: list[dict[int, float]] = [{} for _ in graphs]
        scores_out: list[list[float]] = [[] for _ in graphs]
        systems = [self._system_for(graph) for graph in graphs]
        self._systems = {id(graph): system
                         for graph, system in zip(graphs, systems)}
        for indices in self._shape_groups(graphs):
            base = _StackedBase([systems[i] for i in indices], self.xp)
            for slot, i in enumerate(indices):
                delays_out[i] = self._memoized_delays(graphs[i], base, slot)
            owner_parts, u_parts, v_parts = [], [], []
            for slot, i in enumerate(indices):
                batch = candidates[i]
                if not batch:
                    continue
                pairs = np.asarray(batch, dtype=np.intp)
                owner_parts.append(
                    np.full(len(batch), slot, dtype=np.intp))
                u_parts.append(base.row_lookup[pairs[:, 0]])
                v_parts.append(base.row_lookup[pairs[:, 1]])
            if not owner_parts:
                continue
            owner = np.concatenate(owner_parts)
            rows_u = np.concatenate(u_parts)
            rows_v = np.concatenate(v_parts)
            # one coordinate gather for the whole group's candidates —
            # still elementwise per candidate, so per-member bits do not
            # depend on how the group's batches interleave
            coords = np.stack([systems[i].coords for i in indices])
            delta_g, delta_c = _addition_deltas(
                coords[owner, rows_u], coords[owner, rows_v], self.tech)
            flat_scores = base.score(
                owner, rows_u, rows_v, delta_g, delta_c, self.weights)
            cursor = 0
            for slot, i in enumerate(indices):
                width = len(candidates[i])
                scores_out[i] = [float(s)
                                 for s in flat_scores[cursor:cursor + width]]
                cursor += width
        return delays_out, scores_out

    def score_fleet_additions(
            self, graphs: Sequence[RoutingGraph],
            candidates: Sequence[Sequence[CandidateEdge]],
    ) -> list[list[float]]:
        """Candidate-addition scores for every member of a fleet."""
        return self.evaluate_generation(graphs, candidates)[1]

    # -- CandidateEvaluator protocol (the fleet of one) ---------------------

    def score_additions(self, graph: RoutingGraph,
                        candidates: Sequence[CandidateEdge]) -> list[float]:
        if not candidates:
            return []
        return self.score_fleet_additions([graph], [candidates])[0]

    def score_width_upgrades(self, graph: RoutingGraph,
                             widths: Mapping[tuple[int, int], float],
                             upgrades: Sequence[WidthUpgrade]) -> list[float]:
        if not upgrades:
            return []
        base = _StackedBase([_MemberSystem(graph, self.tech, widths)],
                            self.xp, context="multinet-widths")
        rows_u, rows_v, delta_g, delta_c = [], [], [], []
        for (u, v), new_width in upgrades:
            length = graph.edge_length(u, v)
            old_width = edge_width(widths, u, v)
            rows_u.append(base.row(u))
            rows_v.append(base.row(v))
            if length > 0:
                delta_g.append(
                    1.0 / (self.tech.resistance_per_um(new_width) * length)
                    - 1.0 / (self.tech.resistance_per_um(old_width) * length))
                delta_c.append(
                    (self.tech.capacitance_per_um(new_width)
                     - self.tech.capacitance_per_um(old_width)) * length / 2.0)
            else:
                # Zero-length pseudo-shorts are width-independent: the 1 µΩ
                # conductance and zero capacitance do not move with width.
                delta_g.append(0.0)
                delta_c.append(0.0)
        scores = base.score(
            np.zeros(len(upgrades), dtype=np.intp),
            np.array(rows_u, dtype=np.intp), np.array(rows_v, dtype=np.intp),
            np.array(delta_g), np.array(delta_c), self.weights)
        return [float(s) for s in scores]

    # -- internals ----------------------------------------------------------

    def _system_for(self, graph: RoutingGraph) -> _MemberSystem:
        """The member's assembled system — refreshed in place when the
        cached entry is the same graph object grown by some edges, fully
        reassembled otherwise."""
        cached = self._systems.get(id(graph))
        if cached is not None and cached.refresh(graph, self.tech):
            return cached
        return _MemberSystem(graph, self.tech)

    def _shape_groups(self,
                      graphs: Sequence[RoutingGraph]) -> list[list[int]]:
        """Fleet indices grouped by stackable shape, first-seen order.

        Two graphs stack iff they share the node set (hence system size
        and row mapping) and the pin count (hence sink rows).
        """
        groups: dict[tuple, list[int]] = {}
        for index, member in enumerate(graphs):
            key = (member.num_pins, tuple(sorted(member.nodes())))
            groups.setdefault(key, []).append(index)
        return list(groups.values())

    def _memoized_delays(self, graph: RoutingGraph, base: _StackedBase,
                         slot: int) -> dict[int, float]:
        """Member base delays, read through / recorded into the memo.

        The key is the member's own electrical fingerprint paired with
        the oracle's model key — identical to what
        :class:`~repro.delay.incremental.MemoizedDelayModel` would use,
        so fleet and sequential evaluations share hits and a net's entry
        never depends on where in the batch it sat.
        """
        if self.memo is None:
            return base.member_delays(slot)
        key = (self._model_key, graph_fingerprint(graph))
        cached = self.memo.get(key)
        if cached is not None:
            return cached
        delays = base.member_delays(slot)
        self.memo.put(key, delays)
        return dict(delays)


# ---------------------------------------------------------------------------
# The lockstep fleet driver
# ---------------------------------------------------------------------------


class _Prescored:
    """Adapter presenting already-batched scores as a CandidateEvaluator.

    The shadow auditor wraps a *fast evaluator*; in the fleet the fast
    scores already exist (they came out of the stacked call), so this
    shim hands them over verbatim and the unmodified
    :class:`~repro.guard.audit.ShadowAuditedEvaluator` supplies the
    sampling, divergence, and per-member quarantine semantics on top.
    """

    def __init__(self) -> None:
        self.scores: list[float] = []

    def score_additions(self, graph: RoutingGraph,
                        candidates: Sequence[CandidateEdge]) -> list[float]:
        return list(self.scores)

    def score_width_upgrades(self, graph: RoutingGraph,
                             widths: Mapping[tuple[int, int], float],
                             upgrades: Sequence[WidthUpgrade]) -> list[float]:
        return list(self.scores)


@dataclass
class _Member:
    """Lockstep state of one net's greedy loop inside the fleet."""

    graph: RoutingGraph
    started: bool = False
    base_delay: float = 0.0
    base_cost: float = 0.0
    current: float = 0.0
    last_delays: dict[int, float] = field(default_factory=dict)
    last_cost: float = 0.0
    history: list[IterationRecord] = field(default_factory=list)
    #: edge accepted last generation, awaiting its full re-evaluation
    #: (which the *next* generation's stacked base provides for free)
    pending_edge: tuple[int, int] | None = None
    pending_previous: float = 0.0
    pending_cost: float = 0.0
    auditor: ShadowAuditedEvaluator | None = None
    prescored: _Prescored | None = None
    result: RoutingResult | None = None

    @property
    def done(self) -> bool:
        return self.result is not None

    @property
    def quarantined(self) -> bool:
        return self.auditor is not None and self.auditor.quarantined


def _starting_graph(item: Net | RoutingGraph) -> RoutingGraph:
    if isinstance(item, RoutingGraph):
        return item.copy()
    return prim_mst(item)


def route_fleet(nets_or_graphs: Sequence[Net | RoutingGraph],
                tech: Technology, *,
                algorithm: str = "ldrg",
                delay_model: str | DelayModel = "elmore",
                evaluation_model: str | DelayModel | None = None,
                weights: Mapping[int, float] | None = None,
                max_added_edges: int | None = None,
                backend: str = "auto",
                memo: DelayMemo | None = None) -> list[RoutingResult]:
    """Route a fleet of nets through lockstep greedy edge addition.

    Each member runs exactly the greedy loop of
    :func:`repro.core.ldrg.greedy_edge_addition` — same acceptance rule
    (:data:`~repro.core.result.WIN_TOLERANCE`), same sentinels, same
    re-anchoring of the termination threshold on the full re-evaluation
    — but every generation's base factorizations *and* candidate scores
    for all still-active members come from one stacked call. Members
    whose candidate batch stops winning (or whose edge budget runs out)
    finalize into a :class:`~repro.core.result.RoutingResult` and drop
    out of the batch.

    Args:
        nets_or_graphs: the fleet — nets (an MST starting tree is built
            per net, the LDRG convention) and/or explicit starting
            graphs (e.g. Steiner trees for the SLDRG variant).
        tech: interconnect technology shared by the fleet.
        algorithm: label stamped on results ("ldrg", "sldrg", ...).
        delay_model: the search oracle; must resolve to the graph-Elmore
            model — the stacked engine is its closed form, and anything
            else has no batched factorization to share. Callers with
            other oracles should fall back to sequential routing (and
            say so: see :data:`~repro.guard.incidents.KIND_FALLBACK`).
        evaluation_model: optional distinct reporting oracle (defaults
            to the search oracle). When it differs, reported delays come
            from per-member evaluations of that oracle, exactly like the
            sequential loop's split-oracle mode.
        weights: optional sink criticalities (weighted-sum objective).
        max_added_edges: per-member cap on greedy iterations.
        backend: array-namespace spec (``"auto"``/``"numpy"``/``"cupy"``).
        memo: optional :class:`~repro.delay.incremental.DelayMemo` the
            per-member base evaluations are read from and recorded into
            (keyed per net fingerprint, so hits are shared with the
            sequential memoized path). Default ``None``: within one
            fleet run every generation changes every fingerprint, so a
            fleet-local memo would only ever miss.

    Returns:
        One :class:`RoutingResult` per input, in input order.
    """
    search = get_delay_model(delay_model, tech)
    if not isinstance(search, ElmoreGraphModel):
        raise ValueError(
            f"fleet routing requires the graph-Elmore search oracle (its "
            f"delays are one stacked linear solve per generation); got "
            f"{search!r} — route such nets sequentially instead")
    same_oracle = evaluation_model is None or evaluation_model is search
    search_memoized = memoize_model(search)
    evaluate = (search_memoized if same_oracle
                else memoize_model(get_delay_model(evaluation_model, tech)))
    evaluator = FleetEvaluator(tech, weights=weights, backend=backend,
                               memo=memo)
    policy = active_guard()

    members: list[_Member] = []
    for item in nets_or_graphs:
        graph = _starting_graph(item)
        check_spanning(graph)
        member = _Member(graph=graph)
        if policy.audit_enabled:
            member.prescored = _Prescored()
            member.auditor = ShadowAuditedEvaluator(
                member.prescored,
                NaiveCandidateEvaluator(search_memoized, weights=weights),
                policy,
                source=f"multinet:{algorithm}:{graph.net.name}")
        members.append(member)

    budget = max_added_edges if max_added_edges is not None else float("inf")
    while True:
        active = [m for m in members if not m.done]
        if not active:
            break
        fast = [m for m in active if not m.quarantined]
        slow = [m for m in active if m.quarantined]
        fast_candidates = [m.graph.candidate_edges() for m in fast]
        delays_list, scores_list = evaluator.evaluate_generation(
            [m.graph for m in fast], fast_candidates)
        for m, delays in zip(fast, delays_list):
            _advance_member(m, delays, evaluate, same_oracle,
                            algorithm, weights)
        for m in slow:
            # A quarantined member's fast path is retired entirely: its
            # full evaluations and candidate scores both come from the
            # (memoized) reference oracle for the rest of the run.
            _advance_member(m, evaluate.delays(m.graph), evaluate,
                            same_oracle, algorithm, weights)
        for m, candidates, scores in zip(fast, fast_candidates, scores_list):
            _greedy_step(m, candidates, scores, evaluate, same_oracle,
                         algorithm, weights, budget)
        for m in slow:
            _greedy_step(m, m.graph.candidate_edges(), None, evaluate,
                         same_oracle, algorithm, weights, budget)
    return [m.result for m in members if m.result is not None]


def _advance_member(member: _Member, delays: dict[int, float],
                    evaluate: DelayModel, same_oracle: bool,
                    algorithm: str, weights: Mapping[int, float] | None
                    ) -> None:
    """Fold one generation's full evaluation into a member's loop state.

    Generation 0 establishes the baseline; later generations complete
    the edge accepted in the previous one (the deferred re-evaluation,
    sentinel checks, history row, and threshold re-anchoring of the
    sequential loop body).
    """
    iteration = len(member.history)
    if not member.started:
        # First sight of this member: the baseline evaluation.
        member.started = True
        base_delays = (delays if same_oracle
                       else evaluate.delays(member.graph))
        sentinel_finite_delays(base_delays, source=f"{algorithm}:base")
        member.base_delay = reduce_delays(base_delays, weights)
        member.base_cost = member.graph.cost()
        member.current = (member.base_delay if same_oracle
                          else reduce_delays(delays, weights))
        member.last_delays = base_delays
        member.last_cost = member.base_cost
        return
    if member.pending_edge is None:
        return
    edge = member.pending_edge
    member.pending_edge = None
    full_delays = delays if same_oracle else evaluate.delays(member.graph)
    sentinel_finite_delays(full_delays, source=f"{algorithm}:iter{iteration}")
    eval_value = reduce_delays(full_delays, weights)
    if same_oracle:
        # The loop only accepted this edge because it improved the
        # objective; the full re-evaluation disagreeing means the
        # candidate scoring path has drifted.
        sentinel_delay_non_increase(
            member.pending_previous, eval_value,
            source=f"{algorithm}:iter{iteration}")
        member.current = eval_value
    member.last_delays = full_delays
    member.history.append(IterationRecord(
        edge=edge, delay=eval_value, cost=member.pending_cost))


def _greedy_step(member: _Member, candidates: Sequence[CandidateEdge],
                 batched_scores: Sequence[float] | None,
                 evaluate: DelayModel, same_oracle: bool, algorithm: str,
                 weights: Mapping[int, float] | None,
                 budget: float) -> None:
    """One member's accept-or-finalize decision for this generation.

    ``batched_scores`` are the member's scores from the stacked
    generation call (``None`` for quarantined members, whose scores the
    auditor produces from the reference path instead). The budget and
    empty-batch exits come before any auditor involvement so the seeded
    audit sampler sees exactly the batch sequence the sequential loop
    would have shown it.
    """
    if len(member.history) >= budget:
        _finalize(member, evaluate, algorithm, weights)
        return
    if not candidates:
        _finalize(member, evaluate, algorithm, weights)
        return
    if member.auditor is not None:
        if member.prescored is not None:
            member.prescored.scores = (
                list(batched_scores) if batched_scores is not None else [])
        scores: Sequence[float] = member.auditor.score_additions(
            member.graph, candidates)
    else:
        assert batched_scores is not None
        scores = batched_scores
    best_index = min(range(len(candidates)), key=scores.__getitem__)
    best_value = scores[best_index]
    if not best_value < member.current * (1.0 - WIN_TOLERANCE):
        _finalize(member, evaluate, algorithm, weights)
        return
    member.graph.add_edge(*candidates[best_index])
    sentinel_connected(member.graph,
                       source=f"{algorithm}:iter{len(member.history)}")
    cost = member.graph.cost()
    sentinel_monotone_cost(member.last_cost, cost,
                           source=f"{algorithm}:iter{len(member.history)}")
    member.pending_edge = candidates[best_index]
    member.pending_previous = member.current
    member.pending_cost = cost
    member.last_cost = cost
    if not same_oracle:
        member.current = best_value


def _finalize(member: _Member, evaluate: DelayModel, algorithm: str,
              weights: Mapping[int, float] | None) -> None:
    member.result = RoutingResult(
        graph=member.graph,
        delay=reduce_delays(member.last_delays, weights),
        cost=member.graph.cost(),
        delays=member.last_delays,
        base_delay=member.base_delay,
        base_cost=member.base_cost,
        algorithm=algorithm,
        model=evaluate.name,
        objective="max" if weights is None else "weighted-sum",
        history=member.history,
    )
