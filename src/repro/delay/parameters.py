"""Interconnect technology parameters (Table 1 of the paper).

All values in SI units; lengths in microns. The paper's parameters are
"representative of a typical 0.8µ CMOS process":

=========================  ======================
driver resistance          100 Ω
wire resistance            0.03 Ω/µm
wire capacitance           0.352 fF/µm
wire inductance            492 fH/µm
sink loading capacitance   15.3 fF
layout area                10² mm² (10 000 µm square)
=========================  ======================

Wire sizing (Section 5.2) follows the usual width laws: resistance scales
as ``1/w`` while capacitance splits into an area term (∝ w) and a fringe
term (width-independent). At ``w = 1`` both laws reproduce the Table 1
per-µm values exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Technology:
    """Electrical parameters of the interconnect process.

    Attributes:
        driver_resistance: output resistance of the source driver (Ω).
        wire_resistance: wire resistance per µm at unit width (Ω/µm).
        wire_capacitance: wire capacitance per µm at unit width (F/µm).
        wire_inductance: wire inductance per µm (H/µm).
        sink_capacitance: loading capacitance at each sink pin (F).
        region: side of the square layout region (µm).
        cap_area_fraction: fraction of ``wire_capacitance`` that scales
            with wire width (area capacitance); the rest is fringe.
    """

    driver_resistance: float = 100.0
    wire_resistance: float = 0.03
    wire_capacitance: float = 0.352e-15
    wire_inductance: float = 492e-15
    sink_capacitance: float = 15.3e-15
    region: float = 10_000.0
    cap_area_fraction: float = 0.6

    def __post_init__(self) -> None:
        positive = {
            "driver_resistance": self.driver_resistance,
            "wire_resistance": self.wire_resistance,
            "wire_capacitance": self.wire_capacitance,
            "sink_capacitance": self.sink_capacitance,
            "region": self.region,
        }
        for field_name, value in positive.items():
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")
        if self.wire_inductance < 0:
            raise ValueError("wire_inductance must be non-negative")
        if not 0.0 <= self.cap_area_fraction <= 1.0:
            raise ValueError("cap_area_fraction must lie in [0, 1]")

    @classmethod
    def cmos08(cls) -> "Technology":
        """The paper's 0.8µ CMOS parameters (Table 1)."""
        return cls()

    def resistance_per_um(self, width: float = 1.0) -> float:
        """Wire resistance per µm at the given width (Ω/µm); r ∝ 1/w."""
        if width <= 0:
            raise ValueError("wire width must be positive")
        return self.wire_resistance / width

    def capacitance_per_um(self, width: float = 1.0) -> float:
        """Wire capacitance per µm at the given width (F/µm).

        Area term scales with width; fringe term does not:
        ``c(w) = c₀·(f·w + (1 − f))`` with ``f = cap_area_fraction``.
        """
        if width <= 0:
            raise ValueError("wire width must be positive")
        area = self.cap_area_fraction * width
        fringe = 1.0 - self.cap_area_fraction
        return self.wire_capacitance * (area + fringe)

    def inductance_per_um(self, width: float = 1.0) -> float:
        """Wire inductance per µm (width dependence neglected)."""
        if width <= 0:
            raise ValueError("wire width must be positive")
        return self.wire_inductance

    def edge_resistance(self, length: float, width: float = 1.0) -> float:
        """Total resistance of a wire of ``length`` µm."""
        return self.resistance_per_um(width) * length

    def edge_capacitance(self, length: float, width: float = 1.0) -> float:
        """Total capacitance of a wire of ``length`` µm."""
        return self.capacitance_per_um(width) * length

    def with_driver(self, driver_resistance: float) -> "Technology":
        """A copy with a different driver strength (used in sweeps)."""
        return replace(self, driver_resistance=driver_resistance)

    def intrinsic_time_constant(self) -> float:
        """``r·c`` per µm² — the natural scale of distributed wire delay."""
        return self.wire_resistance * self.wire_capacitance
