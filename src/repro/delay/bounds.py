"""Rubinstein–Penfield–Horowitz delay bounds for RC trees (citation [19]).

The paper's Elmore machinery rests on RPH's analysis of RC trees. Beyond
the first moment, RPH introduced per-sink resistance/capacitance sums

    T_D(i) = Σ_k R(k,i) · C_k          (the Elmore delay)
    T_R(i) = Σ_k R(k,i)² / R(i,i) · C_k
    T_P    = Σ_k R(k,k) · C_k

with ``R(k,i)`` the resistance of the shared source→k / source→i path,
satisfying ``T_R(i) ≤ T_D(i) ≤ T_P``. RPH's waveform bounds

    1 − (T_D(i) − t) / T_P  ≥  v_i(t)  ≥  1 − T_D(i) / (t + T_R(i))

invert into threshold-delay bounds for crossing fraction ``x``:

    t_x ≥ max(0, T_D(i) − T_P · (1 − x))          (lower)
    t_x ≤ T_D(i) / (1 − x) − T_R(i)               (upper)

On a single RC both reduce to the elementary inequalities
``1 − e^{−u} ≤ u`` and ``e^{u} ≥ 1 + u``. Both bounds are verified
against the exact analytic engine across random routing trees and
thresholds in the test suite; the bound-tightness benchmark reports how
far the 50% crossing actually sits inside the sandwich.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.delay.elmore_tree import elmore_delays
from repro.delay.parameters import Technology
from repro.delay.rc_builder import EdgeWidths, edge_width
from repro.graph.routing_graph import RoutingGraph


@dataclass(frozen=True)
class RphQuantities:
    """The RPH sums for one sink."""

    t_d: float  # Elmore delay
    t_r: float  # resistance-weighted (always <= t_d)
    t_p: float  # the tree-wide bound (always >= t_d)


def rph_quantities(graph: RoutingGraph, tech: Technology,
                   widths: EdgeWidths | None = None) -> dict[int, RphQuantities]:
    """Compute ``(T_D, T_R, T_P)`` for every sink of a routing tree.

    O(k²): for each node pair the shared-path resistance is the
    resistance to the deepest common ancestor, computed from per-node
    path-resistance maps.
    """
    parents = graph.rooted_parents()
    # Path resistance from the source to every node (driver included:
    # the driver resistance is shared by every pair of paths).
    r_path: dict[int, float] = {}
    order = _bfs_order(graph, parents)
    for node in order:
        parent = parents[node]
        if parent is None:
            r_path[node] = tech.driver_resistance
        else:
            width = edge_width(widths, parent, node)
            r_edge = tech.resistance_per_um(width) * graph.edge_length(parent, node)
            r_path[node] = r_path[parent] + r_edge

    # Node capacitances (lumped π halves + sink loads), as everywhere else.
    cap: dict[int, float] = {node: 0.0 for node in order}
    for u, v in graph.edges():
        c_edge = (tech.capacitance_per_um(edge_width(widths, u, v))
                  * graph.edge_length(u, v))
        cap[u] += c_edge / 2.0
        cap[v] += c_edge / 2.0
    for sink in graph.sink_indices():
        cap[sink] += tech.sink_capacitance

    ancestors = {node: _ancestor_set(node, parents) for node in order}
    t_p = sum(r_path[k] * cap[k] for k in order)
    elmore = elmore_delays(graph, tech, widths)

    result: dict[int, RphQuantities] = {}
    for sink in graph.sink_indices():
        t_r = 0.0
        for k in order:
            shared = _shared_resistance(sink, k, ancestors, r_path)
            t_r += shared * shared / r_path[sink] * cap[k]
        result[sink] = RphQuantities(t_d=elmore[sink], t_r=t_r, t_p=t_p)
    return result


def delay_bounds(graph: RoutingGraph, tech: Technology,
                 fraction: float = 0.5,
                 widths: EdgeWidths | None = None
                 ) -> dict[int, tuple[float, float]]:
    """Provable (lower, upper) bounds on each sink's threshold delay."""
    if not 0 < fraction < 1:
        raise ValueError("fraction must lie strictly between 0 and 1")
    quantities = rph_quantities(graph, tech, widths)
    return {
        sink: (max(0.0, q.t_d - q.t_p * (1.0 - fraction)),
               q.t_d / (1.0 - fraction) - q.t_r)
        for sink, q in quantities.items()
    }


def _bfs_order(graph: RoutingGraph,
               parents: dict[int, int | None]) -> list[int]:
    children: dict[int, list[int]] = {node: [] for node in parents}
    for node, parent in parents.items():
        if parent is not None:
            children[parent].append(node)
    order = [graph.source]
    cursor = 0
    while cursor < len(order):
        order.extend(children[order[cursor]])
        cursor += 1
    return order


def _ancestor_set(node: int, parents: dict[int, int | None]) -> frozenset[int]:
    chain = {node}
    current = node
    while parents[current] is not None:
        current = parents[current]  # type: ignore[assignment]
        chain.add(current)
    return frozenset(chain)


def _shared_resistance(i: int, k: int, ancestors, r_path) -> float:
    """R(k, i): resistance of the common prefix of the two source paths,
    driver resistance included."""
    common = ancestors[i] & ancestors[k]
    # The deepest common ancestor is the common node with max path R.
    return max(r_path[node] for node in common)
