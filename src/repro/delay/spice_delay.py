"""The "SPICE" delay oracle: 50%-threshold delay from circuit simulation.

Given a routing graph, build its interconnect circuit and report, for
every sink, the time its voltage first reaches 50% of the final value
under a unit step at the driver — the quantity all of the paper's tables
are built from.

Two engines, identical answers on RC circuits (cross-validated in tests):

* ``"analytic"`` (default): exact eigendecomposition solution of the
  reduced RC system — no timestep error, fast enough to sit inside LDRG's
  greedy loop;
* ``"transient"``: full MNA trapezoidal integration; supports wire
  inductance (RLC) and arbitrary source waveforms, at fixed-step accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.circuit.analytic import AnalyticRC
from repro.circuit.measure import threshold_crossing
from repro.circuit.transient import transient
from repro.delay.parameters import Technology
from repro.delay.rc_builder import (
    EdgeWidths,
    build_interconnect_circuit,
    build_reduced_rc,
    node_label,
)
from repro.graph.routing_graph import RoutingGraph

#: How many slowest-time-constants to simulate before extending (transient).
_HORIZON_FACTOR = 8.0
_MAX_EXTENSIONS = 8


@dataclass(frozen=True)
class SpiceOptions:
    """Knobs of the SPICE-level delay evaluation.

    Attributes:
        segments: π-sections per wire (more = finer distributed-line
            approximation; 3 is within a fraction of a percent of the
            converged 50% delay on the paper's nets — see the segmentation
            ablation benchmark).
        threshold: crossing fraction of the final value (0.5 = paper).
        engine: ``"analytic"`` or ``"transient"``.
        include_inductance: add series wire inductance (transient engine
            only — the analytic engine is RC-exact and will refuse).
        num_steps: timesteps per transient window.
        method: transient integration method.
    """

    segments: int = 3
    threshold: float = 0.5
    engine: str = "analytic"
    include_inductance: bool = False
    num_steps: int = 2000
    method: str = "trapezoidal"

    def __post_init__(self) -> None:
        if self.segments < 1:
            raise ValueError("segments must be >= 1")
        if not 0 < self.threshold < 1:
            raise ValueError("threshold must lie strictly between 0 and 1")
        if self.engine not in ("analytic", "transient"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.include_inductance and self.engine == "analytic":
            raise ValueError(
                "the analytic engine is RC-only; use engine='transient' "
                "for inductive interconnect")

    def with_segments(self, segments: int) -> "SpiceOptions":
        return replace(self, segments=segments)


def spice_delays(graph: RoutingGraph, tech: Technology,
                 options: SpiceOptions | None = None,
                 widths: EdgeWidths | None = None) -> dict[int, float]:
    """Per-sink 50% delays (seconds) of the routing graph."""
    opts = options or SpiceOptions()
    if opts.engine == "analytic":
        return _analytic_delays(graph, tech, opts, widths)
    return _transient_delays(graph, tech, opts, widths)


def spice_delay(graph: RoutingGraph, tech: Technology,
                options: SpiceOptions | None = None,
                widths: EdgeWidths | None = None) -> float:
    """Max source→sink 50% delay — ``t(G)`` in the paper's notation."""
    return max(spice_delays(graph, tech, options, widths).values())


def _analytic_delays(graph: RoutingGraph, tech: Technology,
                     opts: SpiceOptions,
                     widths: EdgeWidths | None) -> dict[int, float]:
    system = build_reduced_rc(graph, tech, segments=opts.segments,
                              widths=widths)
    solution = AnalyticRC(system)
    sinks = list(graph.sink_indices())
    thresholds = np.array([
        opts.threshold * float(solution.v_inf[system.row(sink)])
        for sink in sinks])
    times = solution.crossing_times(sinks, thresholds)
    return dict(zip(sinks, (float(t) for t in times)))


def _transient_delays(graph: RoutingGraph, tech: Technology,
                      opts: SpiceOptions,
                      widths: EdgeWidths | None) -> dict[int, float]:
    circuit = build_interconnect_circuit(
        graph, tech, segments=opts.segments, widths=widths,
        include_inductance=opts.include_inductance)
    # Scale the window from the graph's first-moment delays, then extend
    # until every sink has crossed its threshold.
    rc_system = build_reduced_rc(graph, tech, segments=1, widths=widths)
    elmore = rc_system.elmore()
    t_stop = _HORIZON_FACTOR * max(float(max(elmore)), 1e-15)
    for _ in range(_MAX_EXTENSIONS):
        result = transient(circuit, t_stop=t_stop, num_steps=opts.num_steps,
                           method=opts.method)
        delays: dict[int, float] = {}
        complete = True
        for sink in graph.sink_indices():
            wave = result.voltage(node_label(sink))
            final = 1.0  # unit step; RC(L) nets settle to the source level
            crossing = threshold_crossing(result.times, wave,
                                          opts.threshold * final)
            if crossing is None:
                complete = False
                break
            delays[sink] = crossing
        if complete:
            return delays
        t_stop *= 2.0
    raise RuntimeError(
        f"transient window grew to {t_stop:.3g}s without all sinks crossing "
        f"{opts.threshold:.0%} — circuit may be mis-scaled")
